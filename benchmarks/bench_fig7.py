"""Benchmark + shape checks for Figure 7 (privatization vs expansion)."""

import pytest

from repro.experiments import fig7_privatization


@pytest.fixture(scope="module")
def table(quick_mode, write_bench_json, profiled_run):
    t = profiled_run("fig7", fig7_privatization.run, quick=quick_mode)
    write_bench_json("fig7", t)
    return t


def test_fig7_benchmark(benchmark):
    result = benchmark(fig7_privatization.run, quick=True)
    assert len(result.rows) == 2


class TestFig7Shape:
    def test_expansion_roughly_half_speed(self, table):
        """Paper: the globally-expanded variant runs ~50% slower."""
        speed = table.cell("expansion", "measured speed")
        assert 0.3 <= speed <= 0.75

    def test_privatization_wins(self, table):
        assert table.cell("privatization", "measured speed") \
            > table.cell("expansion", "measured speed")
