"""Benchmark + shape checks for Table 2 (Perfect Benchmarks proxies)."""

import pytest

from repro.experiments import table2


@pytest.fixture(scope="module")
def table(quick_mode, write_bench_json, profiled_run):
    t = profiled_run("table2", table2.run, quick=quick_mode)
    write_bench_json("table2", t)
    return t


def _col(table, name):
    return dict(zip(table.column("program"), table.column(name)))


def test_table2_benchmark(benchmark):
    result = benchmark(table2.run, quick=True)
    assert len(result.rows) == 12


class TestTable2Shape:
    def test_all_programs_present(self, table):
        assert len(table.rows) == 12

    def test_manual_beats_auto_everywhere(self, table):
        fa, ca = _col(table, "fx80 auto"), _col(table, "cedar auto")
        fm, cm = _col(table, "fx80 manual"), _col(table, "cedar manual")
        for prog in fa:
            assert fm[prog] >= fa[prog] * 0.95, prog
            assert cm[prog] >= ca[prog] * 0.95, prog

    def test_average_improvement_ratios(self, table):
        """Headline result: manual/auto ≈ 4.5x on FX/80, ≈ 17x on Cedar —
        and crucially the Cedar ratio far exceeds the FX/80 ratio."""
        fa, ca = _col(table, "fx80 auto"), _col(table, "cedar auto")
        fm, cm = _col(table, "fx80 manual"), _col(table, "cedar manual")
        rf = sum(fm[p] / fa[p] for p in fa) / len(fa)
        rc = sum(cm[p] / ca[p] for p in ca) / len(ca)
        assert rc > rf, "Cedar gains must exceed FX/80 gains"
        assert 2.0 < rf < 10.0
        assert 8.0 < rc < 40.0

    def test_cedar_auto_often_below_serial(self, table):
        """The paper's Cedar auto column has several values < 1 (the
        cross-cluster overheads defeat naive parallelization)."""
        ca = _col(table, "cedar auto")
        below = [p for p, v in ca.items() if v < 1.0]
        assert len(below) >= 3

    def test_failing_programs_match_paper(self, table):
        """MDG, TRACK, QCD, OCEAN: near-nothing automatically."""
        fa = _col(table, "fx80 auto")
        for prog in ("MDG", "QCD", "OCEAN"):
            assert fa[prog] < 3.0, prog

    def test_arc2d_best_auto(self, table):
        """ARC2D was the best automatic result in the paper."""
        fa = _col(table, "fx80 auto")
        assert fa["ARC2D"] >= max(fa[p] for p in
                                  ("MDG", "QCD", "OCEAN", "TRACK", "BDNA"))

    def test_qcd_stays_low_even_manually(self, table):
        """The RNG dependence cycle bounds QCD near 2x (paper footnote)."""
        fm, cm = _col(table, "fx80 manual"), _col(table, "cedar manual")
        assert fm["QCD"] < 5.0
        assert cm["QCD"] < 5.0
