"""Benchmark + shape checks for Table 1 (linear-algebra speedups)."""

import pytest

from repro.experiments import table1


@pytest.fixture(scope="module")
def table(quick_mode, write_bench_json, profiled_run):
    t = profiled_run("table1", table1.run, quick=quick_mode)
    write_bench_json("table1", t)
    return t


def test_table1_benchmark(benchmark, quick_mode):
    result = benchmark(table1.run, quick=True)
    assert len(result.rows) == 10


class TestTable1Shape:
    def test_all_routines_present(self, table):
        assert set(table.column("routine")) == set(table1.PAPER)

    def test_mprove_is_the_outlier(self, table):
        """The serial-thrashing routine dwarfs everything (paper: 1079)."""
        speeds = dict(zip(table.column("routine"),
                          table.column("measured speedup")))
        assert speeds["mprove"] == max(speeds.values())
        assert speeds["mprove"] > 5 * speeds["gaussj"]

    def test_cg_among_top(self, table):
        speeds = dict(zip(table.column("routine"),
                          table.column("measured speedup")))
        ranked = sorted(speeds, key=speeds.get, reverse=True)
        assert "cg" in ranked[:4]

    def test_recurrence_bound_routines_near_serial(self, table):
        """toeplz and tridag barely speed up (paper: 1.3 and 2.1)."""
        speeds = dict(zip(table.column("routine"),
                          table.column("measured speedup")))
        assert speeds["toeplz"] < 3.0
        assert speeds["tridag"] < 3.0

    def test_parallel_routines_beat_serial(self, table):
        speeds = dict(zip(table.column("routine"),
                          table.column("measured speedup")))
        for name in ("cg", "ludcmp", "sparse", "gaussj", "svbksb", "mprove"):
            assert speeds[name] > 2.0, name

    def test_grain_ordering(self, table):
        """Dot-product-only routines (lubksb, svdcmp) sit well below the
        fully parallel ones, as in the paper."""
        speeds = dict(zip(table.column("routine"),
                          table.column("measured speedup")))
        assert speeds["lubksb"] < speeds["svbksb"]
        assert speeds["svdcmp"] < speeds["gaussj"]
