"""Benchmark + shape checks for Figure 6 (prefetch effect)."""

import pytest

from repro.experiments import fig6_prefetch


@pytest.fixture(scope="module")
def table(quick_mode, write_bench_json, profiled_run):
    t = profiled_run("fig6", fig6_prefetch.run, quick=quick_mode)
    write_bench_json("fig6", t)
    return t


def test_fig6_benchmark(benchmark):
    result = benchmark(fig6_prefetch.run, quick=True)
    assert len(result.rows) == 2


class TestFig6Shape:
    def test_cg_gains_substantially(self, table):
        """Long vectors: up to 100% improvement (paper ≈ 2x)."""
        gain = table.cell("CG", "measured gain")
        assert 1.5 <= gain <= 3.5

    def test_trfd_gains_little(self, table):
        """Short vectors + privatized references: ~15% in the paper."""
        gain = table.cell("TRFD", "measured gain")
        assert 0.95 <= gain <= 1.3

    def test_cg_gains_more_than_trfd(self, table):
        assert table.cell("CG", "measured gain") \
            > table.cell("TRFD", "measured gain")
