"""Benchmark + shape checks for Figure 8 (data partitioning in CG)."""

import pytest

from repro.experiments import fig8_partitioning


@pytest.fixture(scope="module")
def table(quick_mode, write_bench_json, profiled_run):
    t = profiled_run("fig8", fig8_partitioning.run, quick=quick_mode)
    write_bench_json("fig8", t)
    return t


def test_fig8_benchmark(benchmark):
    result = benchmark(fig8_partitioning.run, quick=True)
    assert len(result.rows) == 4


class TestFig8Shape:
    def test_global_faster_on_one_cluster(self, table):
        """High global transfer rate + prefetch beat cluster memory on a
        single cluster (paper: 1.6 vs 1.35-ish baseline)."""
        assert table.cell(1, "global (measured)") \
            >= table.cell(1, "partitioned (measured)")

    def test_global_saturates(self, table):
        """The global curve's growth collapses past ~2 clusters."""
        g = {c: table.cell(c, "global (measured)") for c in (1, 2, 3, 4)}
        early_growth = g[2] / g[1]
        late_growth = g[4] / g[3]
        assert early_growth > 1.5
        assert late_growth < 1.25

    def test_partitioned_near_linear(self, table):
        p = {c: table.cell(c, "partitioned (measured)") for c in (1, 2, 3, 4)}
        assert p[4] / p[1] > 3.0

    def test_crossover_by_four_clusters(self, table):
        """Partitioned overtakes global at the top of the curve."""
        assert table.cell(4, "partitioned (measured)") \
            >= table.cell(4, "global (measured)") * 0.98

    def test_both_curves_monotonic(self, table):
        for col in ("global (measured)", "partitioned (measured)"):
            vals = [table.cell(c, col) for c in (1, 2, 3, 4)]
            assert all(b >= a * 0.98 for a, b in zip(vals, vals[1:])), col
