"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper through the
full pipeline (parse → restructure → machine-model estimate) under
pytest-benchmark, and asserts the *shape* of the result against the paper
(orderings, rough factors, crossovers) — not absolute numbers.
"""

import pytest


@pytest.fixture(scope="session")
def quick_mode(pytestconfig):
    """Benchmarks default to the paper's full data sizes; set
    ``REPRO_BENCH_QUICK=1`` to shrink them."""
    import os

    return bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


@pytest.fixture(scope="session")
def profile_dir():
    """Directory for profiler artifacts, from ``REPRO_BENCH_PROFILE``;
    ``None`` (the default) disables profiling entirely."""
    import os
    from pathlib import Path

    value = os.environ.get("REPRO_BENCH_PROFILE", "")
    if not value:
        return None
    path = Path(value)
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def profiled_run(profile_dir):
    """Run one experiment driver, optionally under the profiler.

    With ``REPRO_BENCH_PROFILE=<dir>`` set, the run collects hardware
    counters and per-CE timelines and writes ``<name>.trace.json``
    (Perfetto) plus ``<name>.profile.json`` (``repro-profile/1``) into
    the directory; without it, this is a plain call with zero overhead.
    """
    import json

    def run(name, fn, **kwargs):
        if profile_dir is None:
            return fn(**kwargs)
        from repro.experiments.common import profiled
        from repro.prof.export import write_chrome_trace

        with profiled(name) as session:
            table = fn(**kwargs)
        write_chrome_trace(session, profile_dir / f"{name}.trace.json")
        doc = session.to_profile_doc(quick=kwargs.get("quick"))
        (profile_dir / f"{name}.profile.json").write_text(
            json.dumps(doc, indent=2) + "\n")
        return table

    return run


@pytest.fixture(scope="session")
def write_bench_json():
    """Persist a benchmark table as ``BENCH_<name>.json`` in the repo root
    (same payload shape as ``python -m repro.experiments --json``), so runs
    can be diffed and post-processed without rerunning the pipeline."""
    import json
    from pathlib import Path

    from repro.experiments.__main__ import JSON_SCHEMA

    root = Path(__file__).resolve().parent.parent

    def write(name, table):
        path = root / f"BENCH_{name}.json"
        payload = {"schema": JSON_SCHEMA,
                   "experiments": {name: table.to_dict()}}
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    return write
