"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper through the
full pipeline (parse → restructure → machine-model estimate) under
pytest-benchmark, and asserts the *shape* of the result against the paper
(orderings, rough factors, crossovers) — not absolute numbers.
"""

import pytest


@pytest.fixture(scope="session")
def quick_mode(pytestconfig):
    """Benchmarks default to the paper's full data sizes; set
    ``REPRO_BENCH_QUICK=1`` to shrink them."""
    import os

    return bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


@pytest.fixture(scope="session")
def write_bench_json():
    """Persist a benchmark table as ``BENCH_<name>.json`` in the repo root
    (same payload shape as ``python -m repro.experiments --json``), so runs
    can be diffed and post-processed without rerunning the pipeline."""
    import json
    from pathlib import Path

    from repro.experiments.__main__ import JSON_SCHEMA

    root = Path(__file__).resolve().parent.parent

    def write(name, table):
        path = root / f"BENCH_{name}.json"
        payload = {"schema": JSON_SCHEMA,
                   "experiments": {name: table.to_dict()}}
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    return write
