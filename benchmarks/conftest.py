"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper through the
full pipeline (parse → restructure → machine-model estimate) under
pytest-benchmark, and asserts the *shape* of the result against the paper
(orderings, rough factors, crossovers) — not absolute numbers.
"""

import pytest


@pytest.fixture(scope="session")
def quick_mode(pytestconfig):
    """Benchmarks default to the paper's full data sizes; set
    ``REPRO_BENCH_QUICK=1`` to shrink them."""
    import os

    return bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
