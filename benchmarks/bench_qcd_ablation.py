"""Benchmark + shape checks for the QCD footnote ablation."""

import pytest

from repro.experiments import qcd_ablation


@pytest.fixture(scope="module")
def table(quick_mode, write_bench_json, profiled_run):
    t = profiled_run("qcd", qcd_ablation.run, quick=quick_mode)
    write_bench_json("qcd", t)
    return t


def test_qcd_ablation_benchmark(benchmark):
    result = benchmark(qcd_ablation.run, quick=True)
    assert len(result.rows) == 3


class TestAblationShape:
    def test_footnote_ordering(self, table):
        """serialized < critical < parallel-rng, as in the footnote."""
        s = table.cell("serialized", "measured speedup")
        c = table.cell("critical", "measured speedup")
        p = table.cell("parallel-rng", "measured speedup")
        assert s < c < p

    def test_serialized_near_two(self, table):
        s = table.cell("serialized", "measured speedup")
        assert 1.0 <= s <= 4.0

    def test_parallel_rng_near_twenty(self, table):
        p = table.cell("parallel-rng", "measured speedup")
        assert 10.0 <= p <= 40.0

    def test_only_serialized_validates(self, table):
        assert table.cell("serialized", "passes validation") == "yes"
        assert table.cell("critical", "passes validation") == "no"
