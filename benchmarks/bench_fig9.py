"""Benchmark + shape checks for Figure 9 (loop fusion in FLO52)."""

import pytest

from repro.experiments import fig9_fusion


@pytest.fixture(scope="module")
def table(quick_mode, write_bench_json, profiled_run):
    t = profiled_run("fig9", fig9_fusion.run, quick=quick_mode)
    write_bench_json("fig9", t)
    return t


def _series(table, machine):
    return {r[1]: r[3] for r in table.rows if r[0] == machine}


def test_fig9_benchmark(benchmark):
    result = benchmark(fig9_fusion.run, quick=True)
    assert len(result.rows) == 6


class TestFig9Shape:
    def test_outer_parallel_beats_inner(self, table):
        """Variant b (outer loops parallel) beats a on both machines."""
        for m in ("fx80", "cedar"):
            s = _series(table, m)
            assert s["b"] >= s["a"], m

    def test_fusion_helps_or_holds(self, table):
        for m in ("fx80", "cedar"):
            s = _series(table, m)
            assert s["c"] >= s["b"] * 0.9, m

    def test_cedar_gains_exceed_fx80(self, table):
        """The paper's point: SDOALL startup dominates on Cedar, so
        combining loops helps Cedar (~2x) more than the FX/80 (~1.5x)."""
        fx = _series(table, "fx80")
        cedar = _series(table, "cedar")
        assert cedar["c"] / cedar["a"] > fx["c"] / fx["a"]

    def test_fx80_gain_moderate(self, table):
        fx = _series(table, "fx80")
        assert 1.1 <= fx["c"] <= 2.5
