#!/usr/bin/env python3
"""Host wall-clock benchmark for the execution engine (repro.engine).

Unlike the ``bench_*.py`` pytest harnesses — which measure *simulated
Cedar cycles* — this script measures *host seconds*: what the engine
tiers (tree walk, compiled closures, cached source-JIT), the
content-addressed compilation cache, and the ``--jobs`` parallel
executor actually buy on the machine running the sweep.  It drives
``python -m repro.validate`` as a subprocess matrix:

``tree_cold``
    tree-walk engine, cache disabled, serial — the pre-engine baseline
    (every cell re-parses and re-restructures, every statement
    tree-walks);
``cold``
    compiled (closure) engine, cache disabled, serial — closure
    compilation alone;
``source_cold``
    source-JIT engine, cache disabled, serial — module emission +
    ``compile()`` paid on every cell;
``prime``
    compiled engine, serial, ``--cache-dir`` on an empty store — pays
    the misses that populate the disk cache;
``warm``
    same command again — every front-end artifact served from the store
    (``REPRO_CACHE_STATS`` proves the hit rate is nonzero);
``source_prime``
    source-JIT engine over the same store — front-end artifacts are
    already warm, the run pays the ``jit-source`` module misses;
``source_warm``
    same command again — JIT modules byte-served from the store (its
    own ``REPRO_CACHE_STATS`` proves ``jit-source`` disk hits), and the
    sweep payload must be byte-identical to the compiled ``warm``
    payload: the engine-tier bit-identity contract at the artifact
    level;
``warm_jobsN``
    compiled warm store, ``--jobs N`` — the parallel executor, whose
    payload must be byte-identical to the serial ``warm`` payload.

The warm, source_warm and parallel runs additionally run under
``REPRO_TELEMETRY``, so the payload records per-cell latency
percentiles (p50/p95/p99 from the ``repro-metrics/1`` cell-latency
histogram) for each — the per-request latency signal the service-layer
roadmap item tracks.

The result is a ``repro-bench-host/3`` JSON document
(``schemas/bench_host.schema.json``) that ``scripts/bench_diff.py`` can
diff run-over-run: ``host_seconds`` regresses upward, the ``*_speedup``
ratios regress downward.  Absolute thresholds are deliberately not
asserted here — CI runners vary wildly — only structural facts: every
run exits 0, the warm runs hit the cache (including ``jit-source``
artifacts), parallel and cross-engine outputs are byte-identical,
latency percentiles were recorded, and the end-to-end speedups are
positive.

Usage::

    python benchmarks/bench_host.py [--quick | --full] [--jobs N]
                                    [-o bench_host.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCHEMA_TAG = "repro-bench-host/3"

if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

# provenance stamps shared with the bench history (repro.obs)
from repro.obs.history import git_stamp, host_stamp  # noqa: E402


def run_validate(extra: list[str], out_file: Path, *,
                 env_overrides: dict[str, str]) -> dict:
    """Run one ``python -m repro.validate`` subprocess; time it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_CACHE_DISABLE", None)
    env.pop("REPRO_CACHE_STATS", None)
    env.pop("REPRO_TELEMETRY", None)
    env.pop("REPRO_ENGINE", None)
    env.update(env_overrides)
    argv = [sys.executable, "-m", "repro.validate",
            *extra, "-o", str(out_file)]
    t0 = time.perf_counter()
    proc = subprocess.run(argv, cwd=ROOT, env=env,
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    seconds = time.perf_counter() - t0
    return {
        "argv": argv[1:],          # drop the interpreter path (host noise)
        "env": dict(env_overrides),
        "seconds": seconds,
        "returncode": proc.returncode,
        "stderr_tail": proc.stderr.decode(errors="replace")[-2000:],
    }


def cell_latency(telem_dir: Path) -> dict:
    """Pull per-cell latency percentiles from a merged telemetry dir.

    The instrumented subprocess merges its shards into
    ``<dir>/metrics.json`` (a ``repro-metrics/1`` document) on exit;
    the ``repro_cell_seconds`` histogram in there is the per-cell
    latency distribution of the whole sweep.
    """
    empty = {"cells": 0, "p50_s": None, "p95_s": None, "p99_s": None}
    try:
        payload = json.loads((telem_dir / "metrics.json").read_text())
    except (OSError, json.JSONDecodeError):
        return empty
    for h in payload.get("metrics", {}).get("histograms", ()):
        if h.get("name") == "repro_cell_seconds" and not h.get("labels"):
            return {"cells": h.get("count", 0), "p50_s": h.get("p50"),
                    "p95_s": h.get("p95"), "p99_s": h.get("p99")}
    return empty


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="host wall-clock benchmark: engine tiers, "
                    "compilation cache, parallel sweep executor")
    ap.add_argument("--full", action="store_true",
                    help="sweep every workload (--all); default is the "
                         "--quick subset")
    ap.add_argument("--jobs", type=int, default=2, metavar="N",
                    help="worker count for the parallel run (default 2)")
    ap.add_argument("-o", "--output", metavar="FILE",
                    default="bench_host.json",
                    help="write the repro-bench-host/3 payload here "
                         "(default bench_host.json; '-' for stdout only)")
    ns = ap.parse_args(argv)

    subset = ["--all"] if ns.full else ["--quick"]
    jobs = max(2, ns.jobs)
    runs: dict[str, dict] = {}

    with tempfile.TemporaryDirectory(prefix="repro-bench-host-") as tmp:
        tmpdir = Path(tmp)
        cache_dir = tmpdir / "cache"
        stats_file = tmpdir / "cache_stats.json"
        source_stats_file = tmpdir / "source_cache_stats.json"

        matrix = [
            ("tree_cold", subset + ["--engine", "tree", "--jobs", "1"],
             {"REPRO_CACHE_DISABLE": "1"}),
            ("cold", subset + ["--jobs", "1"],
             {"REPRO_CACHE_DISABLE": "1"}),
            ("source_cold", subset + ["--engine", "source",
                                      "--jobs", "1"],
             {"REPRO_CACHE_DISABLE": "1"}),
            ("prime", subset + ["--jobs", "1",
                                "--cache-dir", str(cache_dir)], {}),
            ("warm", subset + ["--jobs", "1",
                               "--cache-dir", str(cache_dir)],
             {"REPRO_CACHE_STATS": str(stats_file),
              "REPRO_TELEMETRY": str(tmpdir / "telem-warm")}),
            ("source_prime", subset + ["--engine", "source", "--jobs", "1",
                                       "--cache-dir", str(cache_dir)], {}),
            ("source_warm", subset + ["--engine", "source", "--jobs", "1",
                                      "--cache-dir", str(cache_dir)],
             {"REPRO_CACHE_STATS": str(source_stats_file),
              "REPRO_TELEMETRY": str(tmpdir / "telem-source")}),
            (f"warm_jobs{jobs}", subset + ["--jobs", str(jobs),
                                           "--cache-dir", str(cache_dir)],
             {"REPRO_TELEMETRY": str(tmpdir / "telem-jobs")}),
        ]
        for name, extra, env_overrides in matrix:
            print(f"[bench_host] {name}: validate {' '.join(extra)} ...",
                  file=sys.stderr)
            rec = run_validate(extra, tmpdir / f"{name}.json",
                               env_overrides=env_overrides)
            print(f"[bench_host] {name}: {rec['seconds']:.2f}s "
                  f"(exit {rec['returncode']})", file=sys.stderr)
            runs[name] = rec

        cache_stats = {}
        if stats_file.exists():
            cache_stats = json.loads(stats_file.read_text())
        source_cache_stats = {}
        if source_stats_file.exists():
            source_cache_stats = json.loads(source_stats_file.read_text())

        def payload_bytes(name: str, missing: bytes) -> bytes:
            f = tmpdir / f"{name}.json"
            return f.read_bytes() if f.exists() else missing

        serial_payload = payload_bytes("warm", b"")
        par_payload = payload_bytes(f"warm_jobs{jobs}", b"!")
        source_payload = payload_bytes("source_warm", b"!")
        latency = {
            "warm": cell_latency(tmpdir / "telem-warm"),
            "source_warm": cell_latency(tmpdir / "telem-source"),
            f"warm_jobs{jobs}": cell_latency(tmpdir / "telem-jobs"),
        }

    def sec(name: str) -> float:
        return runs[name]["seconds"]

    warm_speedup = sec("tree_cold") / max(sec("warm"), 1e-9)
    compile_speedup = sec("tree_cold") / max(sec("cold"), 1e-9)
    parallel_speedup = sec("warm") / max(sec(f"warm_jobs{jobs}"), 1e-9)
    source_warm_speedup = sec("tree_cold") / max(sec("source_warm"), 1e-9)
    source_vs_compiled = sec("warm") / max(sec("source_warm"), 1e-9)

    jit_kind = (source_cache_stats.get("by_kind") or {}) \
        .get("jit-source") or {}

    checks = {
        "all_runs_ok": all(r["returncode"] == 0 for r in runs.values()),
        # the warm run must be served by the store it just populated
        "warm_cache_hit": (cache_stats.get("hits", 0) > 0
                           and cache_stats.get("disk_hits", 0) > 0),
        # the source_warm run must be served its emitted JIT modules
        # from the store source_prime populated (fresh process, so a
        # served module shows up as a jit-source disk hit)
        "source_cache_hit": jit_kind.get("disk_hits", 0) > 0,
        # the parallel executor's contract: merged output is
        # byte-identical to the serial run over the same warm store
        "byte_identical": serial_payload == par_payload,
        # the engine-tier contract: the source-JIT sweep payload is
        # byte-identical to the compiled-engine sweep payload
        "engine_byte_identical": serial_payload == source_payload,
        # generous structural gates — real thresholds live in
        # bench_diff.py / obs check comparisons against baselines.
        # quick-size sweeps are subprocess/front-end dominated, so the
        # source tier's end-to-end ratio hovers near 1.0 on any host;
        # gate only catastrophic slowdowns here and let the obs
        # sentinel's 0.6 ratio threshold do the real comparison.
        "speedup_positive": warm_speedup > 1.0,
        "source_speedup_positive": source_warm_speedup > 0.5,
        # all instrumented runs must have produced per-cell percentiles
        "latency_recorded": all(
            rec["cells"] > 0 and rec["p50_s"] is not None
            for rec in latency.values()),
    }

    payload = {
        "schema": SCHEMA_TAG,
        "quick": not ns.full,
        "jobs": jobs,
        # provenance: which revision ran, on what machine — additive
        # fields, so the /3 schema tag holds (consumers must tolerate
        # unknown keys); the bench history keys its baselines on these
        "git": git_stamp(ROOT),
        "host": host_stamp(),
        "runs": {name: {k: v for k, v in rec.items()
                        if k != "stderr_tail" or rec["returncode"] != 0}
                 for name, rec in runs.items()},
        "cache": {
            "cold_seconds": sec("cold"),
            "prime_seconds": sec("prime"),
            "warm_seconds": sec("warm"),
            "warm_speedup": warm_speedup,
            "compile_speedup": compile_speedup,
            "stats": cache_stats,
        },
        "engines": {
            "tree_cold_seconds": sec("tree_cold"),
            "compiled_cold_seconds": sec("cold"),
            "source_cold_seconds": sec("source_cold"),
            "compiled_warm_seconds": sec("warm"),
            "source_prime_seconds": sec("source_prime"),
            "source_warm_seconds": sec("source_warm"),
            "compiled_warm_speedup": warm_speedup,
            "source_warm_speedup": source_warm_speedup,
            "source_vs_compiled_speedup": source_vs_compiled,
            "byte_identical": checks["engine_byte_identical"],
            "jit_cache": source_cache_stats,
        },
        "parallel": {
            "serial_seconds": sec("warm"),
            "parallel_seconds": sec(f"warm_jobs{jobs}"),
            "parallel_speedup": parallel_speedup,
            "byte_identical": checks["byte_identical"],
        },
        "latency": latency,
        "baseline": {
            "tree_cold_seconds": sec("tree_cold"),
            "end_to_end_speedup": warm_speedup,
        },
        "checks": checks,
        "ok": all(checks.values()),
    }

    text = json.dumps(payload, indent=2) + "\n"
    if ns.output and ns.output != "-":
        Path(ns.output).write_text(text)
    sys.stdout.write(text)

    if not payload["ok"]:
        bad = ", ".join(c for c, v in checks.items() if not v)
        print(f"[bench_host] FAILED checks: {bad}", file=sys.stderr)
        return 1
    print(f"[bench_host] ok: engine+cache {warm_speedup:.2f}x vs "
          f"tree/cold, source-JIT {source_warm_speedup:.2f}x "
          f"({source_vs_compiled:.2f}x vs compiled warm), --jobs {jobs} "
          f"{parallel_speedup:.2f}x vs serial warm, byte-identical "
          f"payloads", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
