#!/usr/bin/env python3
"""Validate a ``python -m repro.experiments --json`` payload.

Usage: ``validate_experiment_json.py payload.json`` (or ``-`` for stdin).

This is a hand-rolled checker for ``schemas/experiment.schema.json`` —
the environment deliberately carries no jsonschema dependency — plus two
semantic invariants the schema language cannot express:

- every cycle breakdown's group totals sum to its grand total (1e-6
  relative): attribution never changes totals;
- every loop the planner accepted as ``serial`` has at least one
  rejection/failure decision with a reason: the trace must explain why a
  loop did not parallelize.
"""

from __future__ import annotations

import json
import sys

SCHEMA_TAG = "repro-experiment/1"
ACTIONS = {"accepted", "rejected", "failed", "applied", "declined", "noted"}
REL_TOL = 1e-6

_errors: list[str] = []


def err(path: str, msg: str) -> None:
    _errors.append(f"{path}: {msg}")


def _expect(cond: bool, path: str, msg: str) -> bool:
    if not cond:
        err(path, msg)
    return cond


def check_breakdown(bd, path: str) -> None:
    if not _expect(isinstance(bd, dict), path, "breakdown must be an object"):
        return
    if not _expect("total" in bd and "groups" in bd, path,
                   "breakdown needs 'total' and 'groups'"):
        return
    total = bd["total"]
    group_sum = 0.0
    for g, cats in bd["groups"].items():
        gpath = f"{path}.groups.{g}"
        if not _expect(isinstance(cats, dict) and "total" in cats, gpath,
                       "group needs a 'total'"):
            continue
        cat_sum = sum(v for k, v in cats.items() if k != "total")
        _expect(abs(cat_sum - cats["total"])
                <= REL_TOL * max(abs(cats["total"]), 1.0),
                gpath, f"category sum {cat_sum} != group total "
                       f"{cats['total']}")
        group_sum += cats["total"]
    _expect(abs(group_sum - total) <= REL_TOL * max(abs(total), 1.0),
            path, f"group sum {group_sum} != total {total}")


def check_decision(d, path: str) -> None:
    if not _expect(isinstance(d, dict), path, "decision must be an object"):
        return
    for key in ("kind", "unit", "technique", "action"):
        _expect(key in d, path, f"decision missing {key!r}")
    if "action" in d:
        _expect(d["action"] in ACTIONS, path,
                f"unknown action {d['action']!r}")
    if "kind" in d:
        _expect(d["kind"] in ("plan", "pass"), path,
                f"unknown kind {d['kind']!r}")


def check_serial_loops_explained(decisions, path: str) -> None:
    """Every planner-accepted 'serial' loop must carry a rejection reason."""
    serial = {(d.get("loop"), d.get("line")) for d in decisions
              if d.get("kind") == "plan" and d.get("action") == "accepted"
              and d.get("technique") == "serial"}
    for loop, line in sorted(serial, key=str):
        explained = any(
            (d.get("loop"), d.get("line")) == (loop, line)
            and d.get("action") in ("rejected", "failed")
            and d.get("reason")
            for d in decisions)
        _expect(explained, path,
                f"serial loop {loop!r} (line {line}) has no rejection "
                f"reason in the trace")


def check_trace_entry(w, path: str) -> None:
    if not _expect(isinstance(w, dict), path, "trace entry must be an object"):
        return
    for key in ("speedup", "serial_cycles", "parallel_cycles"):
        _expect(isinstance(w.get(key), (int, float)), path,
                f"missing numeric {key!r}")
    for key in ("serial_breakdown", "parallel_breakdown"):
        if key in w:
            check_breakdown(w[key], f"{path}.{key}")
    decisions = w.get("decisions", [])
    for i, d in enumerate(decisions):
        check_decision(d, f"{path}.decisions[{i}]")
    check_serial_loops_explained(decisions, path)


def check_table(t, path: str) -> None:
    if not _expect(isinstance(t, dict), path, "table must be an object"):
        return
    for key in ("title", "columns", "rows", "notes", "meta"):
        _expect(key in t, path, f"table missing {key!r}")
    cols = t.get("columns", [])
    _expect(isinstance(cols, list) and all(isinstance(c, str) for c in cols),
            f"{path}.columns", "columns must be a list of strings")
    for i, row in enumerate(t.get("rows", [])):
        rpath = f"{path}.rows[{i}]"
        if _expect(isinstance(row, dict), rpath, "row must be an object"):
            _expect(set(row) == set(cols), rpath,
                    "row keys must match the columns")
    for name, w in t.get("meta", {}).get("trace", {}).items():
        check_trace_entry(w, f"{path}.meta.trace.{name}")


def validate(payload) -> list[str]:
    """Return a list of violations (empty == valid)."""
    _errors.clear()
    if not _expect(isinstance(payload, dict), "$", "payload must be an object"):
        return list(_errors)
    _expect(payload.get("schema") == SCHEMA_TAG, "$.schema",
            f"expected {SCHEMA_TAG!r}, got {payload.get('schema')!r}")
    experiments = payload.get("experiments")
    if _expect(isinstance(experiments, dict) and experiments,
               "$.experiments", "need a non-empty experiments object"):
        for name, t in experiments.items():
            check_table(t, f"$.experiments.{name}")
    return list(_errors)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    raw = sys.stdin.read() if argv[1] == "-" else open(argv[1]).read()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"invalid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"{len(problems)} violation(s)", file=sys.stderr)
        return 1
    n = len(payload["experiments"])
    print(f"OK: {n} experiment(s) conform to {SCHEMA_TAG}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
