#!/usr/bin/env python3
"""Validate a repro JSON payload — experiment tables or profiles.

Usage: ``validate_experiment_json.py payload.json`` (or ``-`` for stdin).
Dispatches on the payload's ``schema`` tag:

- ``repro-experiment/1`` (``python -m repro.experiments --json``,
  ``BENCH_*.json``) against ``schemas/experiment.schema.json``;
- ``repro-profile/1`` (``--profile`` output) against
  ``schemas/profile.schema.json``;
- ``repro-validate/1`` (``python -m repro.validate --json``) against
  ``schemas/validate.schema.json``;
- ``repro-faults/1`` (``python -m repro.faults sweep --json``) against
  ``schemas/faults.schema.json``;
- ``repro-bench-host/1`` and ``/2`` (``benchmarks/bench_host.py``)
  against ``schemas/bench_host.schema.json``;
- ``repro-bench-history/1`` (one ``python -m repro.obs record`` entry,
  i.e. one line of ``benchmarks/history/history.jsonl``) against
  ``schemas/bench_history.schema.json``, by delegating to the canonical
  checker in ``repro.obs.history`` (which also enforces that the stored
  fingerprint matches the host stamp);
- ``repro-metrics/1`` (``--telemetry`` session artifacts) against
  ``schemas/metrics.schema.json``, by delegating to the canonical
  checker in ``repro.telemetry.schema`` (the one place the histogram /
  span / summary invariants live);
- ``repro-lint/1`` (``python -m repro.lint --json``) against
  ``schemas/lint.schema.json``.

This is a hand-rolled checker — the environment deliberately carries no
jsonschema dependency — plus semantic invariants the schema language
cannot express:

- every cycle breakdown's group totals sum to its grand total (1e-6
  relative): attribution never changes totals;
- every loop the planner accepted as ``serial`` has at least one
  rejection/failure decision with a reason: the trace must explain why a
  loop did not parallelize;
- for profiles: the memory-side ledger cycles must equal the cycles
  recomputed from the hardware counters and the embedded machine
  constants (1e-6 relative), and every loop's per-CE busy cycles must
  sum to its ``busy_time``;
- for validation reports: every status label must be consistent with its
  evidence (``divergent`` iff divergences recorded, ``race`` iff
  conflicts but no divergences, ``error`` carries a message, ``ok``
  carries nothing), culprit passes must come from the configuration's
  own stage list (or be ``base-parallelization``), and the summary
  counts must equal recounts over the body;
- for fault sweeps: summary counts must equal recounts over the runs,
  every cell's ``ok`` flag must equal the conjunction of its checks,
  degradation ratios must be consistent with the recorded cycle counts,
  ok cells must degrade monotonically within their bound, and scenario
  dicts must carry exactly the ``FaultPlan`` fields;
- for host benchmarks: the speedup ratios must be consistent with the
  recorded wall-clock seconds and the top-level ``ok`` flag must equal
  the conjunction of the structural checks; ``/2`` payloads must
  additionally carry monotone per-cell latency percentiles for both
  instrumented runs;
- for lint reports: every diagnostic must carry a 1-based line *and*
  column (the front end's no-location-free-diagnostics invariant,
  enforced at the artifact level too), codes must match ``[FW]NNN``
  with severity agreeing with the prefix, per-file and top-level
  ``ok``/counts must equal recounts over the diagnostics.

- for server envelopes (``repro-server/1``): the status must be one of
  the five classified outcomes, it decides which of ``result`` /
  ``fault`` / ``reason`` must be present, ``retries`` must equal
  ``attempts - 1``, and a successful ``/restructure`` result must embed
  a full ``repro-experiment/1`` payload, checked recursively — the
  service serves the same artifact the CLI emits.

Validation/experiment payloads produced under ``--keep-going`` /
``--timeout`` may additionally carry a top-level ``faults`` array of
structured harness-fault reports; it is checked everywhere it appears.
"""

from __future__ import annotations

import json
import sys

SCHEMA_TAG = "repro-experiment/1"
PROFILE_TAG = "repro-profile/1"
VALIDATE_TAG = "repro-validate/1"
FAULTS_TAG = "repro-faults/1"
BENCH_HOST_TAG = "repro-bench-host/1"
BENCH_HOST_TAG_V2 = "repro-bench-host/2"
BENCH_HOST_TAG_V3 = "repro-bench-host/3"
BENCH_HISTORY_TAG = "repro-bench-history/1"
METRICS_TAG = "repro-metrics/1"
LINT_TAG = "repro-lint/1"
SERVER_TAG = "repro-server/1"

#: the classified-outcome contract: every repro.server response carries
#: exactly one of these
SERVER_STATUSES = {"ok", "degraded", "shed", "invalid-input", "error"}
SERVER_ENDPOINTS = {"restructure", "lint"}
ACTIONS = {"accepted", "rejected", "failed", "applied", "declined", "noted"}
REL_TOL = 1e-6

#: machine constants every profile run must embed (besides "name")
PROFILE_MACHINE_KEYS = ("lat_cache", "lat_cluster", "lat_global",
                        "lat_global_prefetched", "prefetch_trigger",
                        "page_fault_cost")
PROFILE_ROLES = {"serial", "parallel"}
MEMORY_KEYS = ("mem_global", "mem_cluster", "mem_cache", "prefetch",
               "page_fault")

_errors: list[str] = []


def err(path: str, msg: str) -> None:
    _errors.append(f"{path}: {msg}")


def _expect(cond: bool, path: str, msg: str) -> bool:
    if not cond:
        err(path, msg)
    return cond


def check_breakdown(bd, path: str) -> None:
    if not _expect(isinstance(bd, dict), path, "breakdown must be an object"):
        return
    if not _expect("total" in bd and "groups" in bd, path,
                   "breakdown needs 'total' and 'groups'"):
        return
    total = bd["total"]
    group_sum = 0.0
    for g, cats in bd["groups"].items():
        gpath = f"{path}.groups.{g}"
        if not _expect(isinstance(cats, dict) and "total" in cats, gpath,
                       "group needs a 'total'"):
            continue
        cat_sum = sum(v for k, v in cats.items() if k != "total")
        _expect(abs(cat_sum - cats["total"])
                <= REL_TOL * max(abs(cats["total"]), 1.0),
                gpath, f"category sum {cat_sum} != group total "
                       f"{cats['total']}")
        group_sum += cats["total"]
    _expect(abs(group_sum - total) <= REL_TOL * max(abs(total), 1.0),
            path, f"group sum {group_sum} != total {total}")


def check_decision(d, path: str) -> None:
    if not _expect(isinstance(d, dict), path, "decision must be an object"):
        return
    for key in ("kind", "unit", "technique", "action"):
        _expect(key in d, path, f"decision missing {key!r}")
    if "action" in d:
        _expect(d["action"] in ACTIONS, path,
                f"unknown action {d['action']!r}")
    if "kind" in d:
        _expect(d["kind"] in ("plan", "pass"), path,
                f"unknown kind {d['kind']!r}")


def check_serial_loops_explained(decisions, path: str) -> None:
    """Every planner-accepted 'serial' loop must carry a rejection reason."""
    serial = {(d.get("loop"), d.get("line")) for d in decisions
              if d.get("kind") == "plan" and d.get("action") == "accepted"
              and d.get("technique") == "serial"}
    for loop, line in sorted(serial, key=str):
        explained = any(
            (d.get("loop"), d.get("line")) == (loop, line)
            and d.get("action") in ("rejected", "failed")
            and d.get("reason")
            for d in decisions)
        _expect(explained, path,
                f"serial loop {loop!r} (line {line}) has no rejection "
                f"reason in the trace")


def check_trace_entry(w, path: str) -> None:
    if not _expect(isinstance(w, dict), path, "trace entry must be an object"):
        return
    for key in ("speedup", "serial_cycles", "parallel_cycles"):
        _expect(isinstance(w.get(key), (int, float)), path,
                f"missing numeric {key!r}")
    for key in ("serial_breakdown", "parallel_breakdown"):
        if key in w:
            check_breakdown(w[key], f"{path}.{key}")
    decisions = w.get("decisions", [])
    for i, d in enumerate(decisions):
        check_decision(d, f"{path}.decisions[{i}]")
    check_serial_loops_explained(decisions, path)


def check_table(t, path: str) -> None:
    if not _expect(isinstance(t, dict), path, "table must be an object"):
        return
    for key in ("title", "columns", "rows", "notes", "meta"):
        _expect(key in t, path, f"table missing {key!r}")
    cols = t.get("columns", [])
    _expect(isinstance(cols, list) and all(isinstance(c, str) for c in cols),
            f"{path}.columns", "columns must be a list of strings")
    for i, row in enumerate(t.get("rows", [])):
        rpath = f"{path}.rows[{i}]"
        if _expect(isinstance(row, dict), rpath, "row must be an object"):
            _expect(set(row) == set(cols), rpath,
                    "row keys must match the columns")
    for name, w in t.get("meta", {}).get("trace", {}).items():
        check_trace_entry(w, f"{path}.meta.trace.{name}")


def _rel_eq(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1.0)


def memory_cycles_from_counters(counters: dict, machine: dict) -> dict:
    """Recompute the memory-side cycle categories from raw counters.

    Must stay in lockstep with
    ``repro.prof.counters.memory_cycles_from_counters`` — the point of
    embedding the machine constants in the document is that this script
    can audit the reconciliation with no repro import.
    """
    c = lambda k: float(counters.get(k, 0.0))  # noqa: E731
    return {
        "mem_cache": c("cache_refs") * machine["lat_cache"],
        "mem_cluster": c("cluster_refs") * machine["lat_cluster"],
        "mem_global": (c("global_refs") * machine["lat_global"]
                       + c("global_stream_elems")
                       * (0.55 * machine["lat_global"])
                       + c("bank_stall_cycles")),
        "prefetch": (c("prefetch_triggers") * machine["prefetch_trigger"]
                     + c("prefetch_elems")
                     * machine["lat_global_prefetched"]),
        "page_fault": c("page_faults") * machine["page_fault_cost"],
    }


def check_profile_loop(lp, path: str) -> None:
    if not _expect(isinstance(lp, dict), path, "loop must be an object"):
        return
    for key in ("label", "level", "order", "workers", "base", "total_time",
                "busy_time", "worker_busy", "utilization", "imbalance",
                "n_spans"):
        _expect(key in lp, path, f"loop missing {key!r}")
    wb = lp.get("worker_busy")
    if isinstance(wb, list):
        _expect(len(wb) == lp.get("workers"), path,
                f"worker_busy has {len(wb)} entries for "
                f"{lp.get('workers')} workers")
        busy = lp.get("busy_time", 0.0)
        _expect(_rel_eq(sum(wb), busy), path,
                f"worker busy sum {sum(wb)} != busy_time {busy}")
    for key in ("utilization", "imbalance"):
        v = lp.get(key)
        if isinstance(v, (int, float)):
            _expect(-REL_TOL <= v <= 1.0 + REL_TOL, path,
                    f"{key} {v} outside [0, 1]")
    _expect(lp.get("level") in ("C", "S", "X"), path,
            f"unknown loop level {lp.get('level')!r}")
    _expect(lp.get("order") in ("doall", "doacross"), path,
            f"unknown loop order {lp.get('order')!r}")


def check_profile_run(run, path: str) -> None:
    if not _expect(isinstance(run, dict), path, "run must be an object"):
        return
    _expect(isinstance(run.get("workload"), str) and run.get("workload"),
            path, "run needs a workload name")
    _expect(run.get("role") in PROFILE_ROLES, path,
            f"role must be one of {sorted(PROFILE_ROLES)}, "
            f"got {run.get('role')!r}")
    machine = run.get("machine")
    machine_ok = _expect(isinstance(machine, dict), path,
                         "run needs a machine object")
    if machine_ok:
        _expect(isinstance(machine.get("name"), str), f"{path}.machine",
                "machine needs a name")
        for k in PROFILE_MACHINE_KEYS:
            machine_ok &= _expect(
                isinstance(machine.get(k), (int, float)),
                f"{path}.machine", f"missing numeric constant {k!r}")
    _expect(isinstance(run.get("total_cycles"), (int, float))
            and run.get("total_cycles", -1) >= 0,
            path, "total_cycles must be a non-negative number")
    counters = run.get("counters")
    counters_ok = _expect(bool(isinstance(counters, dict) and counters),
                          path, "run needs a non-empty counters object")
    if counters_ok:
        for k, v in counters.items():
            counters_ok &= _expect(
                isinstance(v, (int, float)) and v >= 0,
                f"{path}.counters.{k}", f"counter must be >= 0, got {v!r}")
    mc = run.get("memory_cycles")
    if _expect(isinstance(mc, dict) and "ledger" in mc
               and "from_counters" in mc, path,
               "run needs memory_cycles.{ledger,from_counters}"):
        ledger, fc = mc["ledger"], mc["from_counters"]
        for d, name in ((ledger, "ledger"), (fc, "from_counters")):
            _expect(isinstance(d, dict) and set(d) == set(MEMORY_KEYS),
                    f"{path}.memory_cycles.{name}",
                    f"must have exactly the keys {sorted(MEMORY_KEYS)}")
        if (machine_ok and counters_ok and isinstance(ledger, dict)
                and isinstance(fc, dict) and set(ledger) == set(MEMORY_KEYS)
                and set(fc) == set(MEMORY_KEYS)):
            recomputed = memory_cycles_from_counters(counters, machine)
            for k in MEMORY_KEYS:
                _expect(_rel_eq(fc[k], recomputed[k]),
                        f"{path}.memory_cycles.from_counters.{k}",
                        f"stored {fc[k]} != recomputed {recomputed[k]}")
                _expect(_rel_eq(ledger[k], recomputed[k]),
                        f"{path}.memory_cycles.ledger.{k}",
                        f"ledger {ledger[k]} does not reconcile with "
                        f"counters ({recomputed[k]})")
    hr = run.get("prefetch_hit_rate")
    if hr is not None:
        _expect(isinstance(hr, (int, float)) and 0.0 <= hr <= 1.0, path,
                f"prefetch_hit_rate {hr!r} outside [0, 1]")
    loops = run.get("loops")
    if _expect(isinstance(loops, list), path, "run needs a loops array"):
        for i, lp in enumerate(loops):
            check_profile_loop(lp, f"{path}.loops[{i}]")


def validate_profile(payload) -> None:
    _expect(isinstance(payload.get("experiment"), str)
            and payload.get("experiment"),
            "$.experiment", "need a non-empty experiment name")
    runs = payload.get("runs")
    if _expect(isinstance(runs, list) and runs, "$.runs",
               "need a non-empty runs array"):
        for i, run in enumerate(runs):
            check_profile_run(run, f"$.runs[{i}]")
        names = [(r.get("workload"), r.get("role")) for r in runs
                 if isinstance(r, dict)]
        _expect(len(names) == len(set(names)), "$.runs",
                "duplicate (workload, role) pairs")


VALIDATE_STATUSES = {"ok", "divergent", "race", "error"}
VALIDATE_SUITES = {"linalg", "perfect"}
RACE_KINDS = {"write-write", "read-write"}


def check_divergence(d, path: str) -> None:
    if not _expect(isinstance(d, dict), path,
                   "divergence must be an object"):
        return
    for key in ("key", "dtype", "max_abs", "max_rel", "mismatches",
                "processors", "seed"):
        _expect(key in d, path, f"divergence missing {key!r}")
    m = d.get("mismatches")
    if isinstance(m, int):
        _expect(m >= 1, path, f"a divergence needs >= 1 mismatch, got {m}")


def check_race(r, path: str) -> None:
    if not _expect(isinstance(r, dict), path, "race must be an object"):
        return
    for key in ("loop", "var", "kind", "iterations"):
        _expect(key in r, path, f"race missing {key!r}")
    _expect(r.get("kind") in RACE_KINDS, path,
            f"unknown race kind {r.get('kind')!r}")
    its = r.get("iterations")
    if _expect(isinstance(its, list) and len(its) == 2, path,
               "iterations must be a pair"):
        _expect(its[0] != its[1], path,
                "a conflict needs two *different* iterations")


def check_config_result(c, path: str) -> None:
    if not _expect(isinstance(c, dict), path, "config must be an object"):
        return
    status = c.get("status")
    _expect(status in VALIDATE_STATUSES, path,
            f"unknown status {status!r}")
    divs = c.get("divergences", [])
    races = c.get("races", [])
    for i, d in enumerate(divs):
        check_divergence(d, f"{path}.divergences[{i}]")
    for i, r in enumerate(races):
        check_race(r, f"{path}.races[{i}]")
    # the status label must be consistent with the recorded evidence
    if status == "ok":
        _expect(not divs, path, "status 'ok' but divergences recorded")
        _expect(not races, path, "status 'ok' but races recorded")
        _expect(c.get("error") is None, path,
                "status 'ok' but an error message is present")
    elif status == "divergent":
        _expect(bool(divs), path,
                "status 'divergent' without any divergence")
    elif status == "race":
        _expect(bool(races), path, "status 'race' without any conflict")
        _expect(not divs, path,
                "status 'race' but divergences recorded (divergent wins)")
    elif status == "error":
        _expect(isinstance(c.get("error"), str) and c.get("error"), path,
                "status 'error' needs a message")
    culprit = c.get("culprit_pass")
    if culprit is not None:
        _expect(status == "divergent", path,
                "culprit_pass only makes sense on a divergent config")
        stages = c.get("stages", [])
        _expect(culprit == "base-parallelization" or culprit in stages,
                path, f"culprit {culprit!r} is not one of the config's "
                      f"stages")
    _expect(c.get("loops_checked", 0) >= 0, path,
            "loops_checked must be >= 0")


def validate_validation(payload) -> None:
    configs = payload.get("configs")
    _expect(isinstance(configs, list) and configs
            and all(isinstance(x, str) for x in configs),
            "$.configs", "need a non-empty list of config names")
    workloads = payload.get("workloads")
    runs = []
    if _expect(isinstance(workloads, list) and workloads, "$.workloads",
               "need a non-empty workloads array"):
        for i, w in enumerate(workloads):
            wpath = f"$.workloads[{i}]"
            if not _expect(isinstance(w, dict), wpath,
                           "workload must be an object"):
                continue
            _expect(isinstance(w.get("workload"), str) and w.get("workload"),
                    wpath, "workload needs a name")
            _expect(w.get("suite") in VALIDATE_SUITES, wpath,
                    f"unknown suite {w.get('suite')!r}")
            for j, c in enumerate(w.get("configs", [])):
                check_config_result(c, f"{wpath}.configs[{j}]")
                if isinstance(c, dict):
                    runs.append(c)
        names = [w.get("workload") for w in workloads
                 if isinstance(w, dict)]
        _expect(len(names) == len(set(names)), "$.workloads",
                "duplicate workload names")
    summary = payload.get("summary")
    if _expect(isinstance(summary, dict), "$.summary",
               "need a summary object"):
        recount = {
            "workloads": len(workloads) if isinstance(workloads, list)
            else 0,
            "configs_run": len(runs),
            "ok": sum(1 for c in runs if c.get("status") == "ok"),
            "divergent": sum(1 for c in runs
                             if c.get("status") == "divergent"),
            "race": sum(1 for c in runs if c.get("status") == "race"),
            "error": sum(1 for c in runs if c.get("status") == "error"),
            "loops_checked": sum(c.get("loops_checked", 0) for c in runs),
            "conflicts": sum(len(c.get("races", [])) for c in runs),
        }
        for key, want in recount.items():
            _expect(summary.get(key) == want, f"$.summary.{key}",
                    f"stored {summary.get(key)!r} != recount {want}")


FAULT_REPORT_KINDS = {"timeout", "error", "internal"}
FAULT_CHECKS = ("monotone", "attributed", "bounded", "numerics_identical",
                "recovery_ok", "no_deadlock")
FAULT_PLAN_KEYS = frozenset({
    "name", "seed", "dead_ces", "death_cycle", "ce_slowdown",
    "cluster_slowdown", "memory_degradation", "bandwidth_factor",
    "prefetch_disabled", "lost_sync_rate", "helper_delay"})


def check_fault_report(f, path: str) -> None:
    if not _expect(isinstance(f, dict), path,
                   "fault report must be an object"):
        return
    for key in ("label", "kind", "error_type", "message", "elapsed_s"):
        _expect(key in f, path, f"fault report missing {key!r}")
    _expect(f.get("kind") in FAULT_REPORT_KINDS, path,
            f"unknown fault kind {f.get('kind')!r}")
    es = f.get("elapsed_s")
    if isinstance(es, (int, float)):
        _expect(es >= 0, path, f"elapsed_s must be >= 0, got {es}")


def check_harness_faults(payload) -> None:
    """The optional top-level ``faults`` array (keep-going harness)."""
    faults = payload.get("faults")
    if faults is None:
        return
    if _expect(isinstance(faults, list), "$.faults",
               "faults must be an array"):
        for i, f in enumerate(faults):
            check_fault_report(f, f"$.faults[{i}]")


def check_fault_plan(plan, path: str) -> None:
    if not _expect(isinstance(plan, dict), path,
                   "scenario plan must be an object"):
        return
    _expect(set(plan) == FAULT_PLAN_KEYS, path,
            f"plan must carry exactly the FaultPlan fields "
            f"(got {sorted(plan)})")
    if not set(plan) == FAULT_PLAN_KEYS:
        return
    _expect(plan["cluster_slowdown"] >= 1, path, "cluster_slowdown < 1")
    _expect(plan["memory_degradation"] >= 1, path, "memory_degradation < 1")
    _expect(0 < plan["bandwidth_factor"] <= 1, path,
            "bandwidth_factor outside (0, 1]")
    _expect(0 <= plan["lost_sync_rate"] <= 1, path,
            "lost_sync_rate outside [0, 1]")
    _expect(plan["death_cycle"] >= 0 and plan["helper_delay"] >= 0, path,
            "death_cycle/helper_delay must be >= 0")
    _expect(all(isinstance(w, int) and w >= 0 for w in plan["dead_ces"]),
            path, "dead_ces must be worker indices >= 0")
    _expect(all(isinstance(e, list) and len(e) == 2 and e[1] >= 1
                for e in plan["ce_slowdown"]),
            path, "ce_slowdown must be [worker, factor >= 1] pairs")


def check_fault_run(r, path: str, scenarios) -> None:
    if not _expect(isinstance(r, dict), path, "run must be an object"):
        return
    for key in ("workload", "scenario", "healthy_cycles", "faulted_cycles",
                "fault_cycles", "degradation", "bound", "injected_faults",
                "sync_retries", "survivors", "checks", "ok"):
        if not _expect(key in r, path, f"run missing {key!r}"):
            return
    if isinstance(scenarios, dict):
        _expect(r["scenario"] in scenarios, path,
                f"scenario {r['scenario']!r} not in the sweep's matrix")
    checks = r["checks"]
    if not _expect(isinstance(checks, dict)
                   and set(FAULT_CHECKS) <= set(checks), path,
                   f"checks must cover {list(FAULT_CHECKS)}"):
        return
    _expect(r["ok"] == all(checks[c] for c in FAULT_CHECKS), path,
            "ok flag does not equal the conjunction of the checks")
    healthy, faulted = r["healthy_cycles"], r["faulted_cycles"]
    ratio = faulted / max(healthy, 1e-9)
    _expect(_rel_eq(r["degradation"], ratio), path,
            f"degradation {r['degradation']} != faulted/healthy {ratio}")
    _expect(r["survivors"] >= 1, path,
            "survivors must be >= 1 (no-deadlock guarantee)")
    _expect(r["fault_cycles"] >= 0, path, "fault_cycles must be >= 0")
    if r["ok"]:
        _expect(r["degradation"] >= 1.0 - REL_TOL, path,
                f"ok cell degraded below healthy ({r['degradation']})")
        _expect(faulted <= healthy * r["bound"] + 1.0, path,
                f"ok cell exceeds its bound "
                f"({faulted} > {healthy} * {r['bound']})")


def validate_faults(payload) -> None:
    _expect(isinstance(payload.get("machine"), str)
            and payload.get("machine"),
            "$.machine", "need a machine name")
    workloads = payload.get("workloads")
    _expect(isinstance(workloads, list) and workloads
            and all(isinstance(w, str) for w in workloads),
            "$.workloads", "need a non-empty list of workload names")
    scenarios = payload.get("scenarios")
    if _expect(isinstance(scenarios, dict) and scenarios, "$.scenarios",
               "need a non-empty scenarios object"):
        for name, plan in scenarios.items():
            check_fault_plan(plan, f"$.scenarios.{name}")
            if isinstance(plan, dict) and plan.get("name") not in (None,
                                                                   name):
                err(f"$.scenarios.{name}",
                    f"plan name {plan.get('name')!r} != key {name!r}")
    runs = payload.get("runs")
    if not _expect(isinstance(runs, list), "$.runs",
                   "need a runs array"):
        runs = []
    for i, r in enumerate(runs):
        check_fault_run(r, f"$.runs[{i}]", scenarios)
    cells = [(r.get("workload"), r.get("scenario")) for r in runs
             if isinstance(r, dict)]
    _expect(len(cells) == len(set(cells)), "$.runs",
            "duplicate (workload, scenario) cells")
    check_harness_faults(payload)
    summary = payload.get("summary")
    if _expect(isinstance(summary, dict), "$.summary",
               "need a summary object"):
        runs_d = [r for r in runs if isinstance(r, dict)]
        n_ok = sum(1 for r in runs_d if r.get("ok"))
        recount = {
            "cells_run": len(runs_d),
            "ok": n_ok,
            "failed": len(runs_d) - n_ok,
            "harness_faults": len(payload.get("faults") or []),
        }
        for key, want in recount.items():
            _expect(summary.get(key) == want, f"$.summary.{key}",
                    f"stored {summary.get(key)!r} != recount {want}")
        cf = summary.get("checks_failed")
        if _expect(isinstance(cf, dict) and set(FAULT_CHECKS) <= set(cf),
                   "$.summary.checks_failed",
                   f"must cover {list(FAULT_CHECKS)}"):
            for c in FAULT_CHECKS:
                want = sum(1 for r in runs_d
                           if not r.get("checks", {}).get(c, False))
                _expect(cf[c] == want, f"$.summary.checks_failed.{c}",
                        f"stored {cf[c]!r} != recount {want}")


BENCH_HOST_CHECKS = ("all_runs_ok", "warm_cache_hit", "byte_identical",
                     "speedup_positive")

#: the /3 additions: the source-JIT engine lane of the host matrix
BENCH_HOST_V3_CHECKS = ("source_cache_hit", "engine_byte_identical",
                        "source_speedup_positive")
BENCH_HOST_V3_RUNS = ("source_cold", "source_prime", "source_warm")


def validate_bench_host(payload) -> None:
    v3 = payload.get("schema") == BENCH_HOST_TAG_V3
    _expect(isinstance(payload.get("jobs"), int)
            and payload.get("jobs", 0) >= 2,
            "$.jobs", "need an integer worker count >= 2")
    runs = payload.get("runs")
    min_runs = 8 if v3 else 5
    if _expect(isinstance(runs, dict) and len(runs) >= min_runs, "$.runs",
               f"need the {min_runs}-run host matrix"):
        required_runs = ("tree_cold", "cold", "prime", "warm")
        if v3:
            required_runs += BENCH_HOST_V3_RUNS
        for name in required_runs:
            _expect(name in runs, "$.runs", f"missing run {name!r}")
        for name, r in runs.items():
            path = f"$.runs.{name}"
            if not _expect(isinstance(r, dict), path,
                           "run must be an object"):
                continue
            _expect(isinstance(r.get("argv"), list) and r.get("argv"),
                    path, "need the subprocess argv")
            _expect(isinstance(r.get("seconds"), (int, float))
                    and r.get("seconds", -1) >= 0,
                    path, "need nonnegative seconds")
            _expect(isinstance(r.get("returncode"), int), path,
                    "need an integer returncode")
    cache = payload.get("cache") or {}
    par = payload.get("parallel") or {}
    base = payload.get("baseline") or {}
    for sect, keys in (("cache", ("cold_seconds", "prime_seconds",
                                  "warm_seconds", "warm_speedup",
                                  "compile_speedup")),
                       ("parallel", ("serial_seconds", "parallel_seconds",
                                     "parallel_speedup")),
                       ("baseline", ("tree_cold_seconds",
                                     "end_to_end_speedup"))):
        d = payload.get(sect)
        if not _expect(isinstance(d, dict), f"$.{sect}",
                       "need an object"):
            continue
        for k in keys:
            _expect(isinstance(d.get(k), (int, float))
                    and d.get(k, -1) >= 0,
                    f"$.{sect}.{k}", "need a nonnegative number")
    # derived ratios must be consistent with the recorded seconds
    def ratio_ok(num, den, got) -> bool:
        if not all(isinstance(v, (int, float)) for v in (num, den, got)):
            return True   # shape errors already reported above
        want = num / max(den, 1e-9)
        return abs(got - want) <= REL_TOL * max(abs(want), 1.0)

    _expect(ratio_ok(base.get("tree_cold_seconds"),
                     cache.get("warm_seconds"),
                     cache.get("warm_speedup")),
            "$.cache.warm_speedup",
            "inconsistent with tree_cold/warm seconds")
    _expect(ratio_ok(par.get("serial_seconds"),
                     par.get("parallel_seconds"),
                     par.get("parallel_speedup")),
            "$.parallel.parallel_speedup",
            "inconsistent with serial/parallel seconds")
    if v3:
        check_bench_host_engines(payload, ratio_ok)
    check_bench_host_provenance(payload)
    if payload.get("schema") in (BENCH_HOST_TAG_V2, BENCH_HOST_TAG_V3):
        check_bench_host_latency(payload)
    required_checks = list(BENCH_HOST_CHECKS)
    if payload.get("schema") in (BENCH_HOST_TAG_V2, BENCH_HOST_TAG_V3):
        required_checks.append("latency_recorded")
    if v3:
        required_checks.extend(BENCH_HOST_V3_CHECKS)
    checks = payload.get("checks")
    if _expect(isinstance(checks, dict)
               and set(required_checks) <= set(checks),
               "$.checks", f"must cover {required_checks}"):
        _expect(all(isinstance(v, bool) for v in checks.values()),
                "$.checks", "check values must be booleans")
        _expect(payload.get("ok") == all(checks.values()), "$.ok",
                "ok flag must equal the conjunction of the checks")


def check_bench_host_engines(payload, ratio_ok) -> None:
    """The /3 engines section: per-tier seconds and derived speedups."""
    eng = payload.get("engines")
    if not _expect(isinstance(eng, dict), "$.engines",
                   "a /3 payload needs the per-engine section"):
        return
    for k in ("tree_cold_seconds", "compiled_cold_seconds",
              "source_cold_seconds", "compiled_warm_seconds",
              "source_prime_seconds", "source_warm_seconds",
              "compiled_warm_speedup", "source_warm_speedup",
              "source_vs_compiled_speedup"):
        _expect(isinstance(eng.get(k), (int, float))
                and eng.get(k, -1) >= 0,
                f"$.engines.{k}", "need a nonnegative number")
    _expect(isinstance(eng.get("byte_identical"), bool),
            "$.engines.byte_identical", "need a boolean")
    _expect(ratio_ok(eng.get("tree_cold_seconds"),
                     eng.get("source_warm_seconds"),
                     eng.get("source_warm_speedup")),
            "$.engines.source_warm_speedup",
            "inconsistent with tree_cold/source_warm seconds")
    _expect(ratio_ok(eng.get("compiled_warm_seconds"),
                     eng.get("source_warm_seconds"),
                     eng.get("source_vs_compiled_speedup")),
            "$.engines.source_vs_compiled_speedup",
            "inconsistent with compiled_warm/source_warm seconds")


def check_bench_host_provenance(payload) -> None:
    """The optional git/host stamps (additive to the /2 shape)."""
    git = payload.get("git")
    if git is not None:
        if _expect(isinstance(git, dict), "$.git", "must be an object"):
            _expect(git.get("sha") is None or isinstance(git["sha"], str),
                    "$.git.sha", "must be a string or null")
            _expect(git.get("dirty") is None
                    or isinstance(git["dirty"], bool),
                    "$.git.dirty", "must be a boolean or null")
    host = payload.get("host")
    if host is not None:
        if _expect(isinstance(host, dict), "$.host", "must be an object"):
            for key in ("python", "platform", "cpu_count"):
                _expect(key in host, "$.host", f"missing {key!r}")
            cc = host.get("cpu_count")
            _expect(cc is None or (isinstance(cc, int) and cc >= 1),
                    "$.host.cpu_count", "must be an integer >= 1")


def validate_bench_history_entry(payload) -> list[str]:
    """Delegate to the canonical repro-bench-history/1 checker."""
    try:
        from repro.obs.history import validate_entry
    except ImportError:
        import os
        sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"))
        from repro.obs.history import validate_entry
    return validate_entry(payload)


def check_bench_host_latency(payload) -> None:
    """The /2 latency section: percentiles for both instrumented runs."""
    latency = payload.get("latency")
    if not _expect(isinstance(latency, dict) and len(latency) >= 2,
                   "$.latency",
                   "need latency entries for both instrumented runs"):
        return
    for name, rec in latency.items():
        path = f"$.latency.{name}"
        if not _expect(isinstance(rec, dict), path, "must be an object"):
            continue
        for k in ("cells", "p50_s", "p95_s", "p99_s"):
            _expect(k in rec, path, f"missing {k!r}")
        cells = rec.get("cells")
        _expect(isinstance(cells, int) and cells >= 0, path,
                "cells must be a nonnegative integer")
        ps = [rec.get(k) for k in ("p50_s", "p95_s", "p99_s")]
        if cells:
            ok = all(isinstance(p, (int, float)) and p >= 0 for p in ps)
            _expect(ok, path,
                    "a populated run needs nonnegative percentiles")
            if ok:
                _expect(ps[0] <= ps[1] + REL_TOL
                        and ps[1] <= ps[2] + REL_TOL, path,
                        f"percentiles not monotone: p50={ps[0]} "
                        f"p95={ps[1]} p99={ps[2]}")
        else:
            _expect(all(p is None for p in ps), path,
                    "an empty run must have null percentiles")


def validate_metrics_payload(payload) -> list[str]:
    """Delegate to the canonical repro-metrics/1 checker.

    The invariants live in ``repro.telemetry.schema`` (one code path);
    this script only needs ``src`` importable, falling back to its own
    repo-relative location when ``PYTHONPATH`` is not set.
    """
    try:
        from repro.telemetry.schema import validate_metrics
    except ImportError:
        import os
        sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"))
        from repro.telemetry.schema import validate_metrics
    return validate_metrics(payload)


LINT_SEVERITIES = {"error", "warning"}


def check_lint_diag(d, path: str) -> None:
    if not _expect(isinstance(d, dict), path,
                   "diagnostic must be an object"):
        return
    code = d.get("code")
    code_ok = _expect(
        isinstance(code, str) and len(code) == 4 and code[0] in "FW"
        and code[1:].isdigit(), path, f"malformed code {code!r}")
    _expect(isinstance(d.get("slug"), str) and d.get("slug"), path,
            "diagnostic needs a slug")
    sev = d.get("severity")
    _expect(sev in LINT_SEVERITIES, path, f"unknown severity {sev!r}")
    if code_ok and sev in LINT_SEVERITIES:
        want = "error" if code[0] == "F" else "warning"
        _expect(sev == want, path,
                f"severity {sev!r} disagrees with code prefix {code[0]!r}")
    _expect(isinstance(d.get("message"), str) and d.get("message"), path,
            "diagnostic needs a message")
    # the front end's core invariant: no diagnostic without a location
    for key in ("line", "col"):
        v = d.get(key)
        _expect(isinstance(v, int) and v >= 1, path,
                f"{key} must be a 1-based integer, got {v!r}")


def check_lint_file(f, path: str) -> None:
    if not _expect(isinstance(f, dict), path, "file must be an object"):
        return
    for key in ("path", "ok", "error_count", "warning_count",
                "suppressed_errors", "diagnostics"):
        if not _expect(key in f, path, f"file missing {key!r}"):
            return
    _expect(isinstance(f["path"], str) and f["path"], path,
            "file needs a path")
    diags = f["diagnostics"]
    if not _expect(isinstance(diags, list), f"{path}.diagnostics",
                   "must be an array"):
        return
    for i, d in enumerate(diags):
        check_lint_diag(d, f"{path}.diagnostics[{i}]")
    n_err = sum(1 for d in diags if isinstance(d, dict)
                and d.get("severity") == "error")
    n_warn = sum(1 for d in diags if isinstance(d, dict)
                 and d.get("severity") == "warning")
    _expect(f["error_count"] == n_err, path,
            f"error_count {f['error_count']!r} != recount {n_err}")
    _expect(f["warning_count"] == n_warn, path,
            f"warning_count {f['warning_count']!r} != recount {n_warn}")
    _expect(isinstance(f["suppressed_errors"], int)
            and f["suppressed_errors"] >= 0, path,
            "suppressed_errors must be an integer >= 0")
    want_ok = n_err == 0 and f.get("suppressed_errors") == 0
    _expect(f["ok"] == want_ok, path,
            f"ok flag {f['ok']!r} disagrees with the diagnostics")


def validate_lint(payload) -> None:
    files = payload.get("files")
    if not _expect(isinstance(files, list) and files, "$.files",
                   "need a non-empty files array"):
        return
    for i, f in enumerate(files):
        check_lint_file(f, f"$.files[{i}]")
    files_d = [f for f in files if isinstance(f, dict)]
    _expect(payload.get("ok") == all(f.get("ok") is True for f in files_d),
            "$.ok", "ok flag must equal the conjunction of the files")
    for key in ("error_count", "warning_count"):
        want = sum(f.get(key, 0) for f in files_d
                   if isinstance(f.get(key), int))
        _expect(payload.get(key) == want, f"$.{key}",
                f"stored {payload.get(key)!r} != recount {want}")
    names = [f.get("path") for f in files_d]
    _expect(len(names) == len(set(names)), "$.files",
            "duplicate file paths")
    meta = payload.get("meta")
    if _expect(isinstance(meta, dict), "$.meta", "need a meta object"):
        _expect(meta.get("tool") == "repro.lint", "$.meta.tool",
                f"expected 'repro.lint', got {meta.get('tool')!r}")


def validate_server(payload) -> None:
    """The ``repro-server/1`` response envelope.

    Cross-field invariants: the status decides which of ``result`` /
    ``fault`` / ``reason`` must be present, ``retries`` must equal
    ``attempts - 1``, and a successful ``/restructure`` result must
    embed a full ``repro-experiment/1`` payload (checked recursively —
    the service serves the same artifact the CLI emits).
    """
    for key in ("schema", "request_id", "endpoint", "status", "attempts",
                "retries", "degraded", "reason", "elapsed_s", "result",
                "fault"):
        _expect(key in payload, f"$.{key}", "required envelope key")
    status = payload.get("status")
    if not _expect(status in SERVER_STATUSES, "$.status",
                   f"expected one of {sorted(SERVER_STATUSES)}, "
                   f"got {status!r}"):
        return
    _expect(isinstance(payload.get("request_id"), str)
            and payload.get("request_id"), "$.request_id",
            "need a non-empty request id")
    endpoint = payload.get("endpoint")
    _expect(endpoint in SERVER_ENDPOINTS, "$.endpoint",
            f"expected one of {sorted(SERVER_ENDPOINTS)}, "
            f"got {endpoint!r}")
    attempts = payload.get("attempts")
    if _expect(isinstance(attempts, int) and attempts >= 1, "$.attempts",
               f"need a positive attempt count, got {attempts!r}"):
        _expect(payload.get("retries") == attempts - 1, "$.retries",
                f"retries {payload.get('retries')!r} != attempts - 1 "
                f"({attempts - 1})")
    degraded = payload.get("degraded")
    _expect(isinstance(degraded, list)
            and all(isinstance(d, str) and d for d in degraded),
            "$.degraded", "must be a list of non-empty strings")
    elapsed = payload.get("elapsed_s")
    _expect(isinstance(elapsed, (int, float)) and elapsed >= 0,
            "$.elapsed_s", f"need a non-negative number, got {elapsed!r}")

    result, fault = payload.get("result"), payload.get("fault")
    if status in ("ok", "degraded"):
        _expect(fault is None, "$.fault",
                f"a {status} response must not carry a fault")
        _expect(result is not None, "$.result",
                f"a {status} response must carry a result")
        if status == "ok":
            _expect(not degraded, "$.degraded",
                    "an ok response must have an empty degraded list")
        else:
            _expect(bool(degraded), "$.degraded",
                    "a degraded response must say how it degraded")
    elif status == "error":
        _expect(result is None, "$.result",
                "an error response must not carry a result")
        if _expect(isinstance(fault, dict), "$.fault",
                   "an error response must carry a fault object"):
            for key in ("label", "kind", "error_type", "message"):
                _expect(key in fault, f"$.fault.{key}",
                        "required fault key")
    else:                        # shed / invalid-input
        _expect(result is None, "$.result",
                f"a {status} response must not carry a result")
        _expect(isinstance(payload.get("reason"), str)
                and payload.get("reason"), "$.reason",
                f"a {status} response must carry a reason")

    if result is None or not isinstance(result, dict):
        return
    if endpoint == "restructure":
        exp = result.get("experiment")
        if _expect(isinstance(exp, dict), "$.result.experiment",
                   "restructure results embed the experiment payload"):
            _expect(exp.get("schema") == SCHEMA_TAG,
                    "$.result.experiment.schema",
                    f"expected {SCHEMA_TAG!r}, got {exp.get('schema')!r}")
            experiments = exp.get("experiments")
            if _expect(isinstance(experiments, dict) and experiments,
                       "$.result.experiment.experiments",
                       "need a non-empty experiments object"):
                for name, t in experiments.items():
                    check_table(t, f"$.result.experiment"
                                   f".experiments.{name}")
    elif endpoint == "lint":
        _expect(result.get("schema") == LINT_TAG, "$.result.schema",
                f"expected {LINT_TAG!r}, got {result.get('schema')!r}")
        validate_lint(result)


def validate(payload) -> list[str]:
    """Return a list of violations (empty == valid)."""
    _errors.clear()
    if not _expect(isinstance(payload, dict), "$", "payload must be an object"):
        return list(_errors)
    tag = payload.get("schema")
    if tag == PROFILE_TAG:
        validate_profile(payload)
        return list(_errors)
    if tag == VALIDATE_TAG:
        validate_validation(payload)
        check_harness_faults(payload)
        return list(_errors)
    if tag == FAULTS_TAG:
        validate_faults(payload)
        return list(_errors)
    if tag in (BENCH_HOST_TAG, BENCH_HOST_TAG_V2, BENCH_HOST_TAG_V3):
        validate_bench_host(payload)
        return list(_errors)
    if tag == BENCH_HISTORY_TAG:
        _errors.extend(validate_bench_history_entry(payload))
        return list(_errors)
    if tag == METRICS_TAG:
        _errors.extend(validate_metrics_payload(payload))
        return list(_errors)
    if tag == LINT_TAG:
        validate_lint(payload)
        return list(_errors)
    if tag == SERVER_TAG:
        validate_server(payload)
        return list(_errors)
    _expect(tag == SCHEMA_TAG, "$.schema",
            f"expected {SCHEMA_TAG!r}, {PROFILE_TAG!r}, "
            f"{VALIDATE_TAG!r}, {FAULTS_TAG!r}, {BENCH_HOST_TAG!r}, "
            f"{BENCH_HOST_TAG_V2!r}, {BENCH_HOST_TAG_V3!r}, "
            f"{BENCH_HISTORY_TAG!r}, "
            f"{METRICS_TAG!r}, {LINT_TAG!r} or {SERVER_TAG!r}, "
            f"got {tag!r}")
    experiments = payload.get("experiments")
    if _expect(isinstance(experiments, dict) and experiments,
               "$.experiments", "need a non-empty experiments object"):
        for name, t in experiments.items():
            check_table(t, f"$.experiments.{name}")
    check_harness_faults(payload)
    return list(_errors)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    raw = sys.stdin.read() if argv[1] == "-" else open(argv[1]).read()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"invalid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"{len(problems)} violation(s)", file=sys.stderr)
        return 1
    if payload.get("schema") == PROFILE_TAG:
        print(f"OK: {len(payload['runs'])} profiled run(s) conform to "
              f"{PROFILE_TAG}")
    elif payload.get("schema") == VALIDATE_TAG:
        s = payload["summary"]
        print(f"OK: {s['configs_run']} validation run(s) over "
              f"{s['workloads']} workload(s) conform to {VALIDATE_TAG}")
    elif payload.get("schema") == FAULTS_TAG:
        s = payload["summary"]
        print(f"OK: {s['cells_run']} oracle cell(s) "
              f"({s['ok']} ok, {s['harness_faults']} harness fault(s)) "
              f"conform to {FAULTS_TAG}")
    elif payload.get("schema") in (BENCH_HOST_TAG, BENCH_HOST_TAG_V2,
                                   BENCH_HOST_TAG_V3):
        print(f"OK: {len(payload['runs'])} host benchmark run(s) "
              f"conform to {payload['schema']}")
    elif payload.get("schema") == BENCH_HISTORY_TAG:
        print(f"OK: history entry with {len(payload['metrics'])} "
              f"metric(s) conforms to {BENCH_HISTORY_TAG}")
    elif payload.get("schema") == METRICS_TAG:
        s = payload["summary"]
        print(f"OK: {len(payload['spans'])} span(s) over "
              f"{s['cells']} cell(s) and {len(payload['pids'])} "
              f"process(es) conform to {METRICS_TAG}")
    elif payload.get("schema") == LINT_TAG:
        print(f"OK: lint report over {len(payload['files'])} file(s) "
              f"({payload['error_count']} error(s), "
              f"{payload['warning_count']} warning(s)) conforms to "
              f"{LINT_TAG}")
    else:
        n = len(payload["experiments"])
        print(f"OK: {n} experiment(s) conform to {SCHEMA_TAG}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
