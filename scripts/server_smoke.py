#!/usr/bin/env python3
"""End-to-end smoke test of ``python -m repro.server`` (CI job).

Starts a real server subprocess with chaos hooks enabled, drives it
with concurrent requests covering every classified outcome —

- a clean ``/restructure`` (``ok``, and byte-identical to the
  ``repro.experiments --source --json`` CLI path),
- a malformed ``.f`` (terminal ``invalid-input``, exactly one attempt),
- an injected fault scenario (``degraded`` but correct),
- a worker SIGKILL mid-request (retried to ``ok``),

— validates every envelope with ``scripts/validate_experiment_json.py``
and ``/metrics`` for the expected series, then sends SIGTERM and
asserts the graceful drain (exit 0, "drained" on stderr).

Usage: ``python scripts/server_smoke.py`` from the repo root
(``src/`` is put on ``sys.path`` for the child automatically).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SAMPLE = REPO / "examples" / "sample.f"

sys.path.insert(0, str(REPO / "scripts"))
import validate_experiment_json as vej  # noqa: E402

_failures: list[str] = []


def check(cond: bool, label: str, detail: str = "") -> None:
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {label}" + (f" — {detail}" if detail else ""))
    if not cond:
        _failures.append(label)


def post(base: str, path: str, body: dict) -> tuple[int, dict]:
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(base: str, path: str) -> tuple[int, str]:
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return resp.status, resp.read().decode()


def main() -> int:
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--jobs", "2", "--chaos", "--max-attempts", "3",
         "--timeout", "60", "--retry-seed", "42"],
        stderr=subprocess.PIPE, text=True, env=env, cwd=str(REPO))

    # the listening line is printed before serving starts
    line = proc.stderr.readline().strip()
    print(f"server: {line}")
    assert line.startswith("listening on "), line
    base = line.split()[-1]

    # drain the rest of stderr in the background so the pipe never
    # fills up and blocks the server
    stderr_tail: list[str] = []
    drainer = threading.Thread(
        target=lambda: stderr_tail.extend(proc.stderr),
        daemon=True)
    drainer.start()

    source = SAMPLE.read_text()

    print("concurrent request burst:")
    requests = {
        "clean": ("/restructure", {"source": source,
                                   "path": str(SAMPLE),
                                   "quick": True}),
        "malformed": ("/restructure", {"source": "n o t fortran"}),
        "fault-plan": ("/restructure", {"source": source,
                                        "path": str(SAMPLE),
                                        "quick": True,
                                        "fault_scenario": "chaos"}),
        "worker-kill": ("/restructure", {"source": source,
                                         "path": str(SAMPLE),
                                         "quick": True,
                                         "chaos": {"kill_worker": 1}}),
        "lint": ("/lint", {"source": source, "path": str(SAMPLE)}),
    }
    results: dict[str, tuple[int, dict]] = {}

    def drive(name: str) -> None:
        path, body = requests[name]
        results[name] = post(base, path, body)

    threads = [threading.Thread(target=drive, args=(n,))
               for n in requests]
    for t in threads:
        t.start()
    for t in threads:
        t.join(600.0)
    check(len(results) == len(requests), "all requests returned",
          f"{len(results)}/{len(requests)}")

    for name, (code, envl) in sorted(results.items()):
        problems = vej.validate(envl)
        check(problems == [], f"{name}: envelope validates",
              "; ".join(problems[:3]))
        print(f"    {name}: http={code} status={envl['status']} "
              f"attempts={envl['attempts']}")

    code, envl = results["clean"]
    check(code == 200 and envl["status"] == "ok", "clean: ok/200")
    code, envl = results["malformed"]
    check(code == 422 and envl["status"] == "invalid-input",
          "malformed: invalid-input/422")
    check(envl["attempts"] == 1, "malformed: terminal, no retry",
          f"attempts={envl['attempts']}")
    code, envl = results["fault-plan"]
    check(code == 200 and envl["status"] == "degraded",
          "fault-plan: degraded/200")
    check("fault-scenario:chaos" in envl["degraded"],
          "fault-plan: degradation attributed")
    code, envl = results["worker-kill"]
    check(code == 200 and envl["status"] == "ok",
          "worker-kill: retried to ok/200")
    check(envl["retries"] >= 1, "worker-kill: at least one retry",
          f"retries={envl['retries']}")
    code, envl = results["lint"]
    check(code == 200 and envl["result"]["schema"] == "repro-lint/1",
          "lint: repro-lint/1 payload")

    print("byte-identity vs the CLI path:")
    served = json.dumps(results["clean"][1]["result"]["experiment"],
                        indent=2) + "\n"
    cli = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--source",
         str(SAMPLE), "--quick", "--json"],
        capture_output=True, text=True, timeout=600, env=env,
        cwd=str(REPO))
    check(cli.returncode == 0, "CLI run succeeds", cli.stderr[-200:])
    check(served == cli.stdout, "served == CLI output",
          f"{len(served)} vs {len(cli.stdout)} bytes")

    print("operational endpoints:")
    code, body = get(base, "/healthz")
    health = json.loads(body)
    check(code == 200 and health["status"] == "ok", "/healthz ok")
    code, body = get(base, "/readyz")
    check(code == 200 and json.loads(body) == {"ready": True},
          "/readyz ready")
    code, metrics = get(base, "/metrics")
    check(code == 200, "/metrics serves")
    for series in ("repro_server_requests_total",
                   "repro_server_breaker_state",
                   "repro_server_queue_depth",
                   "repro_server_retries_total",
                   "repro_server_worker_respawns_total"):
        check(series in metrics, f"/metrics exposes {series}")
    check('status="ok"' in metrics and 'status="invalid-input"'
          in metrics, "/metrics labels outcomes")

    print("graceful shutdown:")
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        rc = -9
    drainer.join(10.0)
    check(rc == 0, "exit code 0 on SIGTERM", f"rc={rc}")
    check(any("drained" in ln for ln in stderr_tail),
          "drain confirmed on stderr")

    if _failures:
        print(f"\nserver smoke: {len(_failures)} FAILURE(S): "
              + ", ".join(_failures))
        return 1
    print("\nserver smoke: all checks passed")
    return 0


def _watchdog() -> None:
    time.sleep(900)
    print("server smoke: global watchdog fired — aborting",
          file=sys.stderr)
    os._exit(3)


if __name__ == "__main__":
    threading.Thread(target=_watchdog, daemon=True).start()
    sys.exit(main())
