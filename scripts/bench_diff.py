#!/usr/bin/env python3
"""Benchmark regression gate — thin wrapper over ``repro.prof diff``.

Usage:
    python scripts/bench_diff.py OLD.json NEW.json [--threshold 0.02]

Compares two benchmark payloads (``BENCH_*.json`` artifacts from the
pytest-benchmark harness, ``python -m repro.experiments --json`` output,
``repro-profile/1`` documents, or ``repro-bench-host/*`` host wall-clock
documents from ``benchmarks/bench_host.py``) and exits nonzero when any
workload's cycle count — or host ``host_seconds`` / ``*_speedup``
metric — regressed beyond the threshold.  CI runs this against the
committed baselines in ``benchmarks/baselines/``.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.prof.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["diff"] + sys.argv[1:]))
