"""repro.engine — the performance layer: compiled execution, caching,
parallel sweeps.

Three pieces, composable and individually optional:

- :mod:`repro.engine.cache` — a content-addressed compilation cache.
  Parsing and restructuring are pure functions of (source text,
  restructurer options, repro version); the cache keys on the SHA-256 of
  exactly that triple and memoizes parse trees and restructured Cedar
  programs in memory, with an optional on-disk store shared across
  processes (``--cache-dir`` / ``REPRO_CACHE_DIR``).  The validate
  harness's pass bisection and the experiments/faults matrices re-run
  the same front-end work per cell; with the cache they pay it once.

- :mod:`repro.execmodel.compiled` — the closure compiler behind
  ``Interpreter(engine="compiled")``: statement lists are lowered once
  to Python closures (flattened dispatch, hoisted intrinsic and symbol
  lookups, precompiled index arithmetic, and a vectorized numpy fast
  path for eligible innermost DOALL bodies), guaranteed
  numerics-identical to the tree-walking interpreter.

- :mod:`repro.engine.parallel` — an order-preserving multiprocessing
  fan-out (``--jobs N``) used by ``repro.experiments``,
  ``repro.validate --all``, and ``repro.faults sweep``.  Results are
  merged in submission order, so parallel runs emit byte-identical JSON
  payloads to serial runs.
"""

from repro.engine.cache import (
    CompilationCache,
    cache_stats,
    cached_parse,
    cached_restructure,
    configure,
    get_cache,
)
from repro.engine.parallel import WorkerCrash, parallel_map

__all__ = [
    "CompilationCache",
    "WorkerCrash",
    "cache_stats",
    "cached_parse",
    "cached_restructure",
    "configure",
    "get_cache",
    "parallel_map",
]
