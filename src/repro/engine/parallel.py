"""The parallel sweep executor: order-preserving multiprocessing fan-out.

Every repro harness iterates a matrix of independent cells (workload ×
configuration × processors; experiment names; workload × fault
scenario).  :func:`parallel_map` fans those cells out over ``--jobs N``
worker processes while keeping the *result order equal to the
submission order*, so a sweep that merges worker results emits JSON
payloads byte-identical to its serial run — determinism is the
contract, parallelism is just scheduling.

Workers compose with the existing hardening in
:mod:`repro.faults.harness`: each cell function is expected to do its
own ``run_isolated``/watchdog internally and return a plain payload
(dicts, lists — JSON-shaped data).  A worker process that *dies* anyway
(segfault, OOM kill) surfaces as a :class:`WorkerCrash` result entry
rather than an exception, so one lost worker degrades the sweep instead
of killing it — the same graceful-degradation contract the fault layer
gives the simulated machine.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class WorkerCrash:
    """A cell whose worker process died before returning a result."""

    label: str
    message: str
    kind: str = "internal"

    def to_fault_dict(self) -> dict:
        """Shape-compatible with ``FaultReport.to_dict()``."""
        return {
            "label": self.label,
            "kind": self.kind,
            "error_type": "WorkerCrash",
            "message": self.message,
            "elapsed_s": 0.0,
            "traceback": "",
            "detail": {},
        }


def _mp_context():
    # fork keeps workers cheap and lets them inherit warm in-memory
    # state; fall back to the platform default where fork is unavailable
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def parallel_map(fn: Callable[[T], R], items: Sequence[T], jobs: int, *,
                 labels: Sequence[str] | None = None,
                 on_result: Callable[[int, "R | WorkerCrash"], None]
                 | None = None,
                 ) -> list["R | WorkerCrash"]:
    """Apply ``fn`` to every item, ``jobs`` processes wide, in order.

    ``jobs <= 1`` (or a single item) degrades to a plain in-process map
    — the serial and parallel paths share one code path, which is what
    keeps their outputs identical.  ``fn`` and the items must be
    picklable (module-level functions and plain data).  ``labels`` names
    cells in :class:`WorkerCrash` entries; defaults to ``str(item)``.

    ``on_result(index, result)`` fires in the parent process, in
    submission order, as each result becomes available — the hook for
    incremental journaling and progress lines.
    """
    items = list(items)
    if labels is None:
        labels = [str(it) for it in items]
    out: list[R | WorkerCrash] = []
    if jobs <= 1 or len(items) <= 1:
        for i, it in enumerate(items):
            r = fn(it)
            if on_result is not None:
                on_result(i, r)
            out.append(r)
        return out

    import concurrent.futures as cf

    with cf.ProcessPoolExecutor(max_workers=min(jobs, len(items)),
                                mp_context=_mp_context()) as ex:
        futures = [ex.submit(fn, it) for it in items]
        for i, (label, fut) in enumerate(zip(labels, futures)):
            try:
                r: R | WorkerCrash = fut.result()
            except cf.process.BrokenProcessPool:
                # the pool is gone: every not-yet-finished future fails;
                # record each as a crash, preserving positions
                r = WorkerCrash(
                    label=label,
                    message="worker process died before returning "
                            "(broken process pool)")
            except BaseException as exc:  # noqa: BLE001 — cell isolation
                r = WorkerCrash(
                    label=label,
                    message=f"{type(exc).__name__}: {exc}")
            if on_result is not None:
                on_result(i, r)
            out.append(r)
    return out
