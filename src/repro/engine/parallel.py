"""The parallel sweep executor: order-preserving multiprocessing fan-out.

Every repro harness iterates a matrix of independent cells (workload ×
configuration × processors; experiment names; workload × fault
scenario).  :func:`parallel_map` fans those cells out over ``--jobs N``
worker processes while keeping the *result order equal to the
submission order*, so a sweep that merges worker results emits JSON
payloads byte-identical to its serial run — determinism is the
contract, parallelism is just scheduling.

Workers compose with the existing hardening in
:mod:`repro.faults.harness`: each cell function is expected to do its
own ``run_isolated``/watchdog internally and return a plain payload
(dicts, lists — JSON-shaped data).  A worker process that *dies* anyway
(segfault, OOM kill) surfaces as a :class:`WorkerCrash` result entry
rather than an exception, so one lost worker degrades the sweep instead
of killing it — the same graceful-degradation contract the fault layer
gives the simulated machine.

Observability: every cell — serial or fanned out — runs inside a
:func:`repro.telemetry.cell_span` keyed by its submission index, so a
``--telemetry DIR`` sweep attributes wall-clock (and any crash) to a
specific cell; workers flush their own telemetry shard as each cell
completes.  :class:`WorkerCrash` entries are stamped with the cell
index, the measured wall-clock duration, and the tail of the worker's
traceback, so crashed cells are attributable in the telemetry report
and in fault payloads.  With telemetry off none of this allocates, and
result payloads are untouched either way.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro import telemetry
from repro.obs.log import get_logger

T = TypeVar("T")
R = TypeVar("R")

#: how many trailing traceback lines a crashed cell carries
_TB_TAIL_LINES = 6

_LOG = get_logger("engine.parallel")


@dataclass(frozen=True)
class WorkerCrash:
    """A cell whose worker process died before returning a result.

    ``index`` is the cell's submission index (``-1`` when unknown) and
    ``duration_s`` the wall-clock the cell ran before dying (``0.0``
    when the worker vanished without reporting), so crashes remain
    attributable in telemetry reports and fault payloads.  ``flight``
    is the worker's flight-recorder tail (recent log/span events) when
    logging was enabled — the crash's last-moments context.
    """

    label: str
    message: str
    kind: str = "internal"
    index: int = -1
    duration_s: float = 0.0
    flight: tuple = ()

    def to_fault_dict(self) -> dict:
        """Shape-compatible with ``FaultReport.to_dict()``."""
        detail: dict = {}
        if self.index >= 0:
            detail["cell_index"] = self.index
        if self.flight:
            detail["flight_recorder"] = list(self.flight)
        return {
            "label": self.label,
            "kind": self.kind,
            "error_type": "WorkerCrash",
            "message": self.message,
            "elapsed_s": self.duration_s,
            "traceback": "",
            "detail": detail,
        }


@dataclass(frozen=True)
class _CellFailure:
    """Worker-side record of a cell that raised (picklable, with the
    traceback tail and flight-recorder context the parent folds into
    :class:`WorkerCrash`)."""

    index: int
    label: str
    message: str
    duration_s: float
    flight: tuple = ()


def _tb_tail(exc: BaseException) -> str:
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail = "".join(lines[-_TB_TAIL_LINES:]).rstrip()
    return tail


def _run_cell(fn: Callable, item, index: int, label: str,
              submit_t0: float | None = None):
    """Execute one cell inside its telemetry span (runs in the worker).

    Exceptions become a :class:`_CellFailure` carrying the traceback
    tail — raising across the process boundary would lose it — plus the
    worker's flight-recorder tail when logging is enabled.
    """
    from repro.obs import flight

    t0 = time.perf_counter()
    try:
        with telemetry.cell_span(index, label, submit_t0=submit_t0):
            r = fn(item)
        _LOG.debug("cell_done", index=index, label=label,
                   duration_s=time.perf_counter() - t0)
        return r
    except BaseException as exc:  # noqa: BLE001 — cell isolation
        _LOG.error("cell_failed", index=index, label=label,
                   error_type=type(exc).__name__, message=str(exc))
        return _CellFailure(
            index=index, label=label,
            message=f"{type(exc).__name__}: {exc}\n{_tb_tail(exc)}",
            duration_s=time.perf_counter() - t0,
            flight=tuple(flight.tail()))


def _mp_context():
    # fork keeps workers cheap and lets them inherit warm in-memory
    # state; fall back to the platform default where fork is unavailable
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def parallel_map(fn: Callable[[T], R], items: Sequence[T], jobs: int, *,
                 labels: Sequence[str] | None = None,
                 on_result: Callable[[int, "R | WorkerCrash"], None]
                 | None = None,
                 ) -> list["R | WorkerCrash"]:
    """Apply ``fn`` to every item, ``jobs`` processes wide, in order.

    ``jobs <= 1`` (or a single item) degrades to a plain in-process map
    — the serial and parallel paths share one code path, which is what
    keeps their outputs identical.  ``fn`` and the items must be
    picklable (module-level functions and plain data).  ``labels`` names
    cells in :class:`WorkerCrash` entries; defaults to ``str(item)``.

    ``on_result(index, result)`` fires in the parent process, in
    submission order, as each result becomes available — the hook for
    incremental journaling and progress lines.
    """
    items = list(items)
    if labels is None:
        labels = [str(it) for it in items]
    out: list[R | WorkerCrash] = []
    if jobs <= 1 or len(items) <= 1:
        for i, it in enumerate(items):
            # exceptions propagate on the serial path (isolation is the
            # cell's own job); the cell span still flushes on the way out
            with telemetry.cell_span(i, labels[i],
                                     submit_t0=time.perf_counter()):
                r = fn(it)
            if on_result is not None:
                on_result(i, r)
            out.append(r)
        return out

    import concurrent.futures as cf

    _LOG.info("fan_out", jobs=min(jobs, len(items)), cells=len(items))
    with cf.ProcessPoolExecutor(max_workers=min(jobs, len(items)),
                                mp_context=_mp_context()) as ex:
        # the submit stamp rides into the worker: the cell span records
        # the submit->start gap as its queue delay
        futures = [ex.submit(_run_cell, fn, it, i, labels[i],
                             time.perf_counter())
                   for i, it in enumerate(items)]
        for i, (label, fut) in enumerate(zip(labels, futures)):
            try:
                r: R | WorkerCrash = fut.result()
            except cf.process.BrokenProcessPool:
                # the pool is gone: every not-yet-finished future fails;
                # record each as a crash, preserving positions
                r = WorkerCrash(
                    label=label,
                    message="worker process died before returning "
                            "(broken process pool)",
                    index=i)
            except BaseException as exc:  # noqa: BLE001 — cell isolation
                r = WorkerCrash(
                    label=label,
                    message=f"{type(exc).__name__}: {exc}",
                    index=i)
            if isinstance(r, _CellFailure):
                r = WorkerCrash(label=r.label, message=r.message,
                                index=r.index, duration_s=r.duration_s,
                                flight=r.flight)
            if isinstance(r, WorkerCrash):
                _LOG.warning("worker_crash", index=i, label=label,
                             message=r.message.splitlines()[0]
                             if r.message else "")
            if on_result is not None:
                on_result(i, r)
            out.append(r)
    return out
