"""Content-addressed compilation cache.

Parsing and restructuring are deterministic functions of three inputs:
the Fortran source text, the :class:`RestructurerOptions` in force, and
the repro version.  The cache therefore keys every artifact on

    SHA-256(repro version || artifact kind || options fingerprint || source)

and stores two artifact kinds:

``parse``
    the pristine parse tree.  Consumers that go on to *mutate* the tree
    (the restructurer transforms in place) receive a fresh clone per
    call; read-only consumers (the interpreter, the estimator) may share
    the cached instance.

``restructure``
    the restructured Cedar program plus its :class:`RestructureReport`.
    Both are treated as immutable after construction — every downstream
    consumer (interpreter, estimator, report renderers) only reads them,
    so one cached instance serves all cells of a sweep.

The in-memory store is per-process; pass ``cache_dir`` (CLI
``--cache-dir``, env ``REPRO_CACHE_DIR``) for an on-disk pickle store
shared across processes — that is what makes ``--jobs N`` workers and
repeated harness invocations warm-start.  ``REPRO_CACHE_DISABLE=1``
turns the whole layer into a transparent pass-through (every call
recomputes), which is how host benchmarks measure the uncached baseline.
``REPRO_CACHE_STATS=FILE`` writes a hit/miss stats JSON at process exit.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro._version import __version__

if TYPE_CHECKING:  # pragma: no cover
    from repro.fortran import ast_nodes as F
    from repro.restructurer.options import RestructurerOptions

#: bump to invalidate every cached artifact regardless of repro version
_CACHE_FORMAT = 1


def options_fingerprint(options: "RestructurerOptions | None") -> str:
    """A stable, canonical text form of a restructurer configuration.

    ``RestructurerOptions`` is a flat dataclass of primitives, so a
    key-sorted JSON dump is canonical; ``None`` (library default options)
    fingerprints as the default instance, which keeps
    ``restructure(sf)`` and ``restructure(sf, RestructurerOptions())``
    on the same cache line.
    """
    from repro.restructurer.options import RestructurerOptions

    opts = options if options is not None else RestructurerOptions()
    return json.dumps(asdict(opts), sort_keys=True)


def content_key(kind: str, source: str, fingerprint: str = "") -> str:
    """SHA-256 content address of one cacheable artifact."""
    h = hashlib.sha256()
    for part in (f"repro/{__version__}/format{_CACHE_FORMAT}", kind,
                 fingerprint, source):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class CompilationCache:
    """In-memory + optional on-disk store of front-end artifacts."""

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 enabled: bool = True):
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.enabled = enabled
        self._mem: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0

    # -- the two artifact kinds ----------------------------------------

    def parse(self, source: str, *, mutable: bool = False) -> "F.SourceFile":
        """Parse ``source``, memoized by content.

        ``mutable=True`` returns a fresh clone of the cached tree (the
        restructurer mutates its input); ``mutable=False`` returns the
        shared pristine instance and the caller must not modify it.
        """
        from repro.fortran import ast_nodes as F
        from repro.fortran.parser import parse_program

        if not self.enabled:
            return parse_program(source)
        key = content_key("parse", source)
        sf = self._load(key)
        if sf is None:
            sf = parse_program(source)
            self._store(key, sf)
        if mutable:
            return F.SourceFile([u.clone() for u in sf.units])
        return sf

    def restructure(self, source: str,
                    options: "RestructurerOptions | None" = None,
                    ) -> tuple["F.SourceFile", object]:
        """Parse + restructure ``source``, memoized by content.

        Returns the shared ``(cedar program, RestructureReport)`` pair;
        both are immutable by contract — interpret or estimate them, do
        not transform them again.
        """
        from repro.restructurer.pipeline import Restructurer

        if not self.enabled:
            sf = self.parse(source, mutable=True)
            return Restructurer(options).run(sf)
        key = content_key("restructure", source, options_fingerprint(options))
        pair = self._load(key)
        if pair is None:
            sf = self.parse(source, mutable=True)
            pair = Restructurer(options).run(sf)
            self._store(key, pair)
        return pair

    # -- stats ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "entries": len(self._mem),
        }

    def clear(self) -> None:
        """Drop the in-memory store (the disk store is left alone)."""
        self._mem.clear()

    # -- storage -------------------------------------------------------

    def _load(self, key: str):
        hit = self._mem.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        if self.cache_dir is not None:
            path = self._disk_path(key)
            try:
                with open(path, "rb") as fh:
                    value = pickle.load(fh)
            except (OSError, pickle.PickleError, EOFError,
                    AttributeError, ImportError):
                pass  # missing or torn entry: recompute below
            else:
                self._mem[key] = value
                self.hits += 1
                self.disk_hits += 1
                return value
        self.misses += 1
        return None

    def _store(self, key: str, value: object) -> None:
        self._mem[key] = value
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # atomic publish: concurrent --jobs workers may race on the
            # same key; each writes a private temp file and renames
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.disk_writes += 1
        except (OSError, pickle.PickleError):
            pass  # a read-only or full cache dir degrades to memory-only

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.pkl"


# ---------------------------------------------------------------------------
# the process-wide default cache


_DEFAULT: Optional[CompilationCache] = None
_STATS_PID: Optional[int] = None


def _env_disabled() -> bool:
    return os.environ.get("REPRO_CACHE_DISABLE", "") not in ("", "0")


def get_cache() -> CompilationCache:
    """The process-wide cache (created on first use from the env)."""
    global _DEFAULT
    if _DEFAULT is None:
        configure(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)
    return _DEFAULT


def configure(cache_dir: str | None = None,
              enabled: bool | None = None) -> CompilationCache:
    """(Re)configure the process-wide cache.

    ``cache_dir=None`` keeps the store memory-only; ``enabled`` defaults
    to the ``REPRO_CACHE_DISABLE`` environment setting.  Harness CLIs
    call this once from ``--cache-dir`` before fanning out work.
    """
    global _DEFAULT, _STATS_PID
    if enabled is None:
        enabled = not _env_disabled()
    _DEFAULT = CompilationCache(cache_dir=cache_dir, enabled=enabled)
    stats_file = os.environ.get("REPRO_CACHE_STATS")
    if stats_file and _STATS_PID is None:
        _STATS_PID = os.getpid()
        atexit.register(_write_stats, stats_file)
    return _DEFAULT


def _write_stats(path: str) -> None:
    # only the process that registered writes — forked --jobs workers
    # inherit the registration but must not clobber the parent's file
    if os.getpid() != _STATS_PID or _DEFAULT is None:
        return
    try:
        doc = dict(_DEFAULT.stats(), pid=os.getpid(), t=time.time())
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    except OSError:
        pass


def cache_stats() -> dict:
    """Hit/miss statistics of the process-wide cache."""
    return get_cache().stats()


def cached_parse(source: str, *, mutable: bool = False) -> "F.SourceFile":
    """Parse through the process-wide cache."""
    return get_cache().parse(source, mutable=mutable)


def cached_restructure(source: str,
                       options: "RestructurerOptions | None" = None,
                       ) -> tuple["F.SourceFile", object]:
    """Parse + restructure through the process-wide cache."""
    return get_cache().restructure(source, options)
