"""Content-addressed compilation cache.

Parsing and restructuring are deterministic functions of three inputs:
the Fortran source text, the :class:`RestructurerOptions` in force, and
the repro version.  The cache therefore keys every artifact on

    SHA-256(repro version || artifact kind || options fingerprint || source)

and stores two artifact kinds:

``parse``
    the pristine parse tree.  Consumers that go on to *mutate* the tree
    (the restructurer transforms in place) receive a fresh clone per
    call; read-only consumers (the interpreter, the estimator) may share
    the cached instance.

``restructure``
    the restructured Cedar program plus its :class:`RestructureReport`.
    Both are treated as immutable after construction — every downstream
    consumer (interpreter, estimator, report renderers) only reads them,
    so one cached instance serves all cells of a sweep.

The in-memory store is per-process; pass ``cache_dir`` (CLI
``--cache-dir``, env ``REPRO_CACHE_DIR``) for an on-disk pickle store
shared across processes — that is what makes ``--jobs N`` workers and
repeated harness invocations warm-start.  ``REPRO_CACHE_DISABLE=1``
turns the whole layer into a transparent pass-through (every call
recomputes), which is how host benchmarks measure the uncached baseline.

Accounting routes through a :class:`repro.telemetry.MetricsRegistry` —
one code path feeds the ``stats()`` dict, the ``REPRO_CACHE_STATS=FILE``
atexit JSON (hit/miss/bytes per artifact kind), and, when ``--telemetry``
is on, the ``repro-metrics/1`` artifact's cache hit rates.  Cache misses
additionally open ``parse``/``restructure`` telemetry spans around the
recomputation, so per-stage breakdowns attribute front-end wall-clock.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro._version import __version__
from repro.obs.log import get_logger
from repro.telemetry import span
from repro.telemetry.registry import MetricsRegistry

_LOG = get_logger("engine.cache")

if TYPE_CHECKING:  # pragma: no cover
    from repro.fortran import ast_nodes as F
    from repro.restructurer.options import RestructurerOptions

#: bump to invalidate every cached artifact regardless of repro version
#: (2: disk entries carry a SHA-256 payload digest, verified on read)
_CACHE_FORMAT = 2

#: the artifact kinds the cache accounts for, in stats order
ARTIFACT_KINDS = ("parse", "restructure", "jit-source")

#: length of the hex digest line heading every on-disk entry
_DIGEST_LEN = 64


def options_fingerprint(options: "RestructurerOptions | None") -> str:
    """A stable, canonical text form of a restructurer configuration.

    ``RestructurerOptions`` is a flat dataclass of primitives, so a
    key-sorted JSON dump is canonical; ``None`` (library default options)
    fingerprints as the default instance, which keeps
    ``restructure(sf)`` and ``restructure(sf, RestructurerOptions())``
    on the same cache line.
    """
    from repro.restructurer.options import RestructurerOptions

    opts = options if options is not None else RestructurerOptions()
    return json.dumps(asdict(opts), sort_keys=True)


def content_key(kind: str, source: str, fingerprint: str = "") -> str:
    """SHA-256 content address of one cacheable artifact."""
    h = hashlib.sha256()
    for part in (f"repro/{__version__}/format{_CACHE_FORMAT}", kind,
                 fingerprint, source):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class CompilationCache:
    """In-memory + optional on-disk store of front-end artifacts."""

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 enabled: bool = True,
                 registry: MetricsRegistry | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.enabled = enabled
        self._mem: dict[str, object] = {}
        #: optional observer of disk-store failures (not plain misses):
        #: the server's store circuit breaker hooks in here so repeated
        #: I/O errors trip it into in-memory mode
        self.disk_error_hook = None
        # one accounting path: every counter lives in a MetricsRegistry
        # (the process-wide telemetry registry for the default cache, a
        # private one for directly constructed instances) — stats(),
        # REPRO_CACHE_STATS and --telemetry all read the same numbers
        self.metrics = registry if registry is not None \
            else MetricsRegistry()
        self._ctr: dict[tuple[str, str], object] = {}
        for kind in ARTIFACT_KINDS:
            for result in ("hit", "miss"):
                self._ctr[kind, result] = self.metrics.counter(
                    "repro_cache_requests_total", kind=kind,
                    result=result)
            for what in ("disk_reads", "disk_writes",
                         "disk_bytes_read", "disk_bytes_written",
                         "corrupt"):
                self._ctr[kind, what] = self.metrics.counter(
                    f"repro_cache_{what}_total", kind=kind)

    # -- the two artifact kinds ----------------------------------------

    def parse(self, source: str, *, mutable: bool = False) -> "F.SourceFile":
        """Parse ``source``, memoized by content.

        ``mutable=True`` returns a fresh clone of the cached tree (the
        restructurer mutates its input); ``mutable=False`` returns the
        shared pristine instance and the caller must not modify it.
        """
        from repro.fortran import ast_nodes as F
        from repro.fortran.parser import parse_program

        if not self.enabled:
            with span("parse", cached=False):
                return parse_program(source)
        key = content_key("parse", source)
        sf = self._load(key, "parse")
        if sf is None:
            with span("parse"):
                sf = parse_program(source)
            self._store(key, sf, "parse")
        if mutable:
            return F.SourceFile([u.clone() for u in sf.units])
        return sf

    def restructure(self, source: str,
                    options: "RestructurerOptions | None" = None,
                    ) -> tuple["F.SourceFile", object]:
        """Parse + restructure ``source``, memoized by content.

        Returns the shared ``(cedar program, RestructureReport)`` pair;
        both are immutable by contract — interpret or estimate them, do
        not transform them again.
        """
        from repro.restructurer.pipeline import Restructurer

        if not self.enabled:
            sf = self.parse(source, mutable=True)
            with span("restructure", cached=False):
                return Restructurer(options).run(sf)
        key = content_key("restructure", source, options_fingerprint(options))
        pair = self._load(key, "restructure")
        if pair is None:
            sf = self.parse(source, mutable=True)
            with span("restructure"):
                pair = Restructurer(options).run(sf)
            self._store(key, pair, "restructure")
        return pair

    def jit_source(self, source: str, *, fingerprint: str, emit) -> str:
        """Module text for one source-JIT statement list, memoized.

        ``source`` is the deterministic statement dump, ``fingerprint``
        the codegen-relevant symbol facts plus emitter version, ``emit``
        the zero-argument emitter invoked on a miss.  The stored artifact
        is the emitted module *text* (never code objects), so a corrupt
        or stale on-disk entry quarantines and re-emits like any other
        kind — and the text is re-``compile()``d per process, keeping the
        cache process-portable.
        """
        if not self.enabled:
            with span("jit-emit", cached=False):
                return emit()
        key = content_key("jit-source", source, fingerprint)
        text = self._load(key, "jit-source")
        if not isinstance(text, str):
            if text is not None:
                # a non-text payload is a corrupt artifact that slipped
                # past the digest (e.g. a stale pickle of another type)
                self._quarantine_value(key, "jit-source")
            with span("jit-emit"):
                text = emit()
            self._store(key, text, "jit-source")
        return text

    def _quarantine_value(self, key: str, kind: str) -> None:
        """Drop a decoded-but-wrong-typed entry from both stores."""
        self._mem.pop(key, None)
        self._ctr[kind, "corrupt"].inc()
        _LOG.warning("entry_wrong_type", kind=kind, key=key[:12])
        if self.cache_dir is not None:
            path = self._disk_path(key)
            try:
                os.replace(path, path.with_suffix(".quarantine"))
            except OSError:
                pass

    # -- stats ---------------------------------------------------------

    def _sum(self, what: str) -> int:
        return sum(self._ctr[kind, what].value for kind in ARTIFACT_KINDS)

    @property
    def hits(self) -> int:
        return self._sum("hit")

    @property
    def misses(self) -> int:
        return self._sum("miss")

    @property
    def disk_hits(self) -> int:
        return self._sum("disk_reads")

    @property
    def disk_writes(self) -> int:
        return self._sum("disk_writes")

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "entries": len(self._mem),
            "by_kind": {
                kind: {
                    "hits": self._ctr[kind, "hit"].value,
                    "misses": self._ctr[kind, "miss"].value,
                    "disk_hits": self._ctr[kind, "disk_reads"].value,
                    "disk_writes": self._ctr[kind, "disk_writes"].value,
                    "disk_bytes_read":
                        self._ctr[kind, "disk_bytes_read"].value,
                    "disk_bytes_written":
                        self._ctr[kind, "disk_bytes_written"].value,
                    "corrupt": self._ctr[kind, "corrupt"].value,
                } for kind in ARTIFACT_KINDS
            },
        }

    def clear(self) -> None:
        """Drop the in-memory store (the disk store is left alone)."""
        self._mem.clear()

    def _zero_metrics(self) -> None:
        """Start a fresh accounting epoch (counter objects stay valid)."""
        for ctr in self._ctr.values():
            ctr.value = 0

    # -- storage -------------------------------------------------------

    def _load(self, key: str, kind: str):
        hit = self._mem.get(key)
        if hit is not None:
            self._ctr[kind, "hit"].inc()
            return hit
        if self.cache_dir is not None:
            path = self._disk_path(key)
            data = None
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except FileNotFoundError:
                pass                     # a plain miss, not a failure
            except OSError as exc:
                self._disk_error(exc, kind, key)
            if data is not None:
                value = self._verify(data, kind, key, path)
                if value is not None:
                    self._mem[key] = value
                    self._ctr[kind, "hit"].inc()
                    self._ctr[kind, "disk_reads"].inc()
                    self._ctr[kind, "disk_bytes_read"].inc(len(data))
                    _LOG.debug("disk_hit", kind=kind, key=key[:12],
                               bytes=len(data))
                    return value
        self._ctr[kind, "miss"].inc()
        _LOG.debug("miss", kind=kind, key=key[:12])
        return None

    def _verify(self, data: bytes, kind: str, key: str, path: Path):
        """Digest-check and unpickle one disk entry.

        A torn or bit-rotted entry is *quarantined* — renamed aside so
        it is never trusted again — and reported as a miss with a
        warning and a ``repro_cache_corrupt_total`` count, instead of
        either raising or silently serving garbage forever.
        """
        reason = None
        payload = data[_DIGEST_LEN + 1:]
        if len(data) < _DIGEST_LEN + 1 or data[_DIGEST_LEN:_DIGEST_LEN
                                               + 1] != b"\n":
            reason = "missing digest header"
        elif hashlib.sha256(payload).hexdigest().encode() \
                != data[:_DIGEST_LEN]:
            reason = "payload digest mismatch"
        else:
            try:
                return pickle.loads(payload)
            except (pickle.PickleError, EOFError, AttributeError,
                    ImportError, IndexError, ValueError) as exc:
                reason = f"unpicklable payload ({type(exc).__name__})"
        self._ctr[kind, "corrupt"].inc()
        _LOG.warning("disk_entry_corrupt", kind=kind, key=key[:12],
                     reason=reason)
        try:
            os.replace(path, path.with_suffix(".quarantine"))
        except OSError:
            pass                 # unlinkable entry: the digest check
            # above still keeps it from ever being served
        return None

    def _disk_error(self, exc: BaseException, kind: str, key: str) -> None:
        _LOG.warning("disk_store_failed", kind=kind, key=key[:12],
                     error_type=type(exc).__name__)
        hook = self.disk_error_hook
        if hook is not None:
            try:
                hook(exc)
            except Exception:    # an observer must never kill a request
                pass

    def _store(self, key: str, value: object, kind: str) -> None:
        self._mem[key] = value
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            # content-integrity header: SHA-256 of the payload, verified
            # on every read so a torn or corrupted entry is detectable
            data = hashlib.sha256(payload).hexdigest().encode() \
                + b"\n" + payload
            path.parent.mkdir(parents=True, exist_ok=True)
            # atomic publish: concurrent --jobs workers may race on the
            # same key; each writes a private temp file and renames
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._ctr[kind, "disk_writes"].inc()
            self._ctr[kind, "disk_bytes_written"].inc(len(data))
            _LOG.debug("disk_write", kind=kind, key=key[:12],
                       bytes=len(data))
        except (OSError, pickle.PickleError) as exc:
            # a read-only or full cache dir degrades to memory-only
            self._disk_error(exc, kind, key)

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.pkl"


# ---------------------------------------------------------------------------
# the process-wide default cache


_DEFAULT: Optional[CompilationCache] = None
_STATS_PID: Optional[int] = None
_COLLECTOR_REGISTERED = False


def _entries_collector(registry) -> None:
    """Snapshot-time gauge refresh for the process-wide cache."""
    if _DEFAULT is not None:
        registry.gauge("repro_cache_entries").set(len(_DEFAULT._mem))


def _env_disabled() -> bool:
    return os.environ.get("REPRO_CACHE_DISABLE", "") not in ("", "0")


def get_cache() -> CompilationCache:
    """The process-wide cache (created on first use from the env)."""
    global _DEFAULT
    if _DEFAULT is None:
        configure(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)
    return _DEFAULT


def configure(cache_dir: str | None = None,
              enabled: bool | None = None) -> CompilationCache:
    """(Re)configure the process-wide cache.

    ``cache_dir=None`` keeps the store memory-only; ``enabled`` defaults
    to the ``REPRO_CACHE_DISABLE`` environment setting.  Harness CLIs
    call this once from ``--cache-dir`` before fanning out work.  The
    cache accounts into the process-wide telemetry registry; each
    ``configure`` starts a fresh accounting epoch.
    """
    global _DEFAULT, _STATS_PID
    from repro.telemetry import get_registry

    if enabled is None:
        enabled = not _env_disabled()
    _DEFAULT = CompilationCache(cache_dir=cache_dir, enabled=enabled,
                                registry=get_registry())
    _DEFAULT._zero_metrics()
    global _COLLECTOR_REGISTERED
    if not _COLLECTOR_REGISTERED:
        _COLLECTOR_REGISTERED = True
        get_registry().add_collector(_entries_collector)
    stats_file = os.environ.get("REPRO_CACHE_STATS")
    if stats_file and _STATS_PID is None:
        _STATS_PID = os.getpid()
        atexit.register(_write_stats, stats_file)
    return _DEFAULT


def _write_stats(path: str) -> None:
    # only the process that registered writes — forked --jobs workers
    # inherit the registration but must not clobber the parent's file
    if os.getpid() != _STATS_PID or _DEFAULT is None:
        return
    try:
        doc = dict(_DEFAULT.stats(), pid=os.getpid(), t=time.time())
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    except OSError:
        pass


def cache_stats() -> dict:
    """Hit/miss statistics of the process-wide cache."""
    return get_cache().stats()


def cached_parse(source: str, *, mutable: bool = False) -> "F.SourceFile":
    """Parse through the process-wide cache."""
    return get_cache().parse(source, mutable=mutable)


def cached_restructure(source: str,
                       options: "RestructurerOptions | None" = None,
                       ) -> tuple["F.SourceFile", object]:
    """Parse + restructure through the process-wide cache."""
    return get_cache().restructure(source, options)
