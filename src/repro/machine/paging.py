"""Virtual-memory paging and thrashing model.

Table 1's mprove result (speedup 1079 at size 1000) comes from the serial
version thrashing: all its data sits in one cluster's memory, and past
size ~800 the working set exceeds physical memory, while the parallel
version's data fits in the larger global memory.  The model charges page
faults once the working set exceeds the available physical memory, with a
sharply super-linear penalty (thrash regime) beyond a small overcommit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import MachineConfig
from repro.trace.ledger import NULL_LEDGER, CycleLedger


@dataclass
class PagingModel:
    cfg: MachineConfig
    #: fraction of physical memory available to user data (OS, buffers,
    #: code and stacks take the rest) — this is why the paper's serial
    #: mprove starts thrashing past size ~800, before its two matrices
    #: nominally fill the 16 MB cluster memory
    usable_fraction: float = 0.75

    def capacity_bytes(self, placement: str) -> float:
        if placement == "global" and self.cfg.has_global_memory:
            return self.cfg.global_memory_mb * 1024.0 * 1024.0 \
                * self.usable_fraction
        return self.cfg.cluster_memory_mb * 1024.0 * 1024.0 \
            * self.usable_fraction

    def fault_overhead(self, working_set_bytes: float, placement: str,
                       touches: float,
                       ledger: CycleLedger = NULL_LEDGER) -> float:
        """Extra cycles due to paging for a region touching its working
        set ``touches`` times (e.g. passes over the data).

        Below capacity: zero.  Slight overcommit: faults proportional to
        the excess (pages stream in once per pass).  Heavy overcommit
        (> 25%): thrashing — every pass faults most of the excess back in.
        """
        cap = self.capacity_bytes(placement)
        if working_set_bytes <= cap or cap <= 0:
            return 0.0
        excess = working_set_bytes - cap
        overcommit = working_set_bytes / cap
        if overcommit <= 1.1:
            # mild overcommit: the excess streams in once per pass
            per_pass = excess / (self.cfg.page_kb * 1024.0) * 0.5
        else:
            # thrash regime: numerical passes scan the data sequentially,
            # the worst case for LRU — essentially every page of every
            # pass faults
            per_pass = working_set_bytes / (self.cfg.page_kb * 1024.0)
        overhead = per_pass * max(touches, 1.0) * self.cfg.page_fault_cost
        ledger.charge("page_fault", overhead)
        ledger.count("page_faults", per_pass * max(touches, 1.0))
        return overhead
