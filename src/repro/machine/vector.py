"""Vector pipeline timing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import MachineConfig
from repro.trace.ledger import NULL_LEDGER, CycleLedger


@dataclass
class VectorUnit:
    cfg: MachineConfig

    def op_cost(self, length: float, heavy: bool = False,
                ledger: CycleLedger = NULL_LEDGER) -> float:
        """One vector arithmetic operation over ``length`` elements.

        ``heavy`` marks divide/sqrt-class operations (longer pipelines).
        """
        if length <= 0:
            return 0.0
        per = self.cfg.vector_per_element * (4.0 if heavy else 1.0)
        cost = self.cfg.vector_startup + length * per
        ledger.charge("vector", cost)
        ledger.count("vector_ops")
        ledger.count("vector_elems", length)
        return cost

    def reduction_cost(self, length: float,
                       ledger: CycleLedger = NULL_LEDGER) -> float:
        """Vector reduction to scalar (sum/dot within one processor)."""
        cost = (self.cfg.vector_startup * 2
                + length * self.cfg.vector_per_element)
        ledger.charge("vector", cost)
        ledger.count("vector_ops")
        ledger.count("vector_elems", length)
        return cost
