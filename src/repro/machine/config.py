"""Machine configurations: Cedar (Configurations 1 and 2) and Alliant FX/80.

Latency/startup magnitudes follow the published Cedar characterization:
cluster memory behind a shared 4-way interleaved cache, global memory
roughly 4-5× slower than cached cluster access without prefetch, prefetch
bringing vector global accesses close to cache speed, CDOALL startup via
the concurrency bus being tens of cycles while SDOALL/XDOALL startup
through global memory costs on the order of a thousand cycles (§4.2.4:
"the overhead for it is large").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import MachineModelError


@dataclass(frozen=True)
class MachineConfig:
    """All timing and capacity parameters of one machine."""

    name: str = "cedar"

    # topology
    clusters: int = 4
    processors_per_cluster: int = 8
    has_global_memory: bool = True

    # scalar core (cycles)
    cost_alu: float = 1.0
    cost_mul: float = 1.0
    cost_div: float = 17.0
    cost_func: float = 30.0       # libm-class intrinsic
    cost_branch: float = 2.0

    # vector unit
    vector_startup: float = 12.0
    vector_per_element: float = 1.0

    # memory hierarchy (per 64-bit element, cycles)
    lat_cache: float = 2.0
    lat_cluster: float = 5.0
    lat_global: float = 22.0
    lat_global_prefetched: float = 3.0
    prefetch_block: int = 32
    prefetch_trigger: float = 8.0   # issuing one prefetch instruction

    # capacities
    cache_kb_per_cluster: int = 512
    cluster_memory_mb: int = 16
    global_memory_mb: int = 64

    # global bandwidth: aggregate elements/cycle the network+GM sustain —
    # about two clusters' worth of prefetched streaming (Figure 8's curve
    # flattens past two clusters)
    global_bandwidth: float = 5.0

    # parallel loop machinery (cycles)
    start_cdoall: float = 50.0      # concurrency control bus
    start_cdoacross: float = 60.0
    start_sdoall: float = 1400.0    # helper-task wakeup via global memory
    start_xdoall: float = 1700.0
    start_xdoacross: float = 2000.0
    dispatch_c: float = 4.0         # per-chunk self-scheduling cost
    dispatch_s: float = 120.0
    dispatch_x: float = 30.0

    # synchronization
    cost_await: float = 18.0
    cost_advance: float = 10.0
    cost_lock: float = 40.0
    cost_unlock: float = 12.0
    cross_cluster_signal: float = 80.0

    # tasking (§2.2.2)
    cost_ctskstart: float = 40000.0  # OS-built cluster task
    cost_mtskstart: float = 900.0    # helper-task handoff

    # paging
    page_kb: int = 4
    page_fault_cost: float = 150000.0

    @property
    def total_processors(self) -> int:
        return self.clusters * self.processors_per_cluster

    def processors_at(self, level: str) -> int:
        """Processors joining a parallel loop at level C, S, or X."""
        if level == "C":
            return self.processors_per_cluster
        if level == "S":
            return self.clusters
        if level == "X":
            return self.total_processors
        raise MachineModelError(f"unknown loop level {level!r}")

    def startup(self, level: str, order: str) -> float:
        key = {
            ("C", "doall"): self.start_cdoall,
            ("C", "doacross"): self.start_cdoacross,
            ("S", "doall"): self.start_sdoall,
            ("S", "doacross"): self.start_sdoall,
            ("X", "doall"): self.start_xdoall,
            ("X", "doacross"): self.start_xdoacross,
        }.get((level, order))
        if key is None:
            raise MachineModelError(f"unknown loop form {level}{order}")
        return key

    def dispatch(self, level: str) -> float:
        return {"C": self.dispatch_c, "S": self.dispatch_s,
                "X": self.dispatch_x}[level]

    def with_clusters(self, n: int) -> "MachineConfig":
        if n < 1:
            raise MachineModelError("need at least one cluster")
        return replace(self, clusters=n)


def cedar_config1() -> MachineConfig:
    """Cedar Configuration 1: 64 MB global, 4 × 16 MB cluster memory."""
    return MachineConfig(name="cedar-config1",
                         cluster_memory_mb=16, global_memory_mb=64)


def cedar_config2() -> MachineConfig:
    """Cedar Configuration 2: 64 MB global, 4 × 64 MB cluster memory."""
    return MachineConfig(name="cedar-config2",
                         cluster_memory_mb=64, global_memory_mb=64)


def alliant_fx80() -> MachineConfig:
    """Alliant FX/80: one 8-CE cluster, no global memory.

    S/X loops degrade to cluster loops; "global" data lives in the single
    cluster memory.
    """
    return MachineConfig(
        name="alliant-fx80",
        clusters=1,
        processors_per_cluster=8,
        has_global_memory=False,
        cluster_memory_mb=96,
        global_memory_mb=0,
        lat_global=5.0,             # no global tier: same as cluster
        lat_global_prefetched=5.0,
        global_bandwidth=3.0,
        start_sdoall=220.0,         # spread loops collapse onto the cluster
        start_xdoall=220.0,
        start_xdoacross=260.0,
        dispatch_s=8.0,
        dispatch_x=4.0,
    )
