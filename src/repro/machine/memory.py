"""Memory hierarchy timing: cache, cluster memory, global memory.

The model answers "what does one element access cost" given the data's
placement and access pattern, and models the Figure 8 effect: aggregate
global-memory traffic across clusters is capped by the network/GM
bandwidth, so adding clusters stops helping once the program runs at the
global transfer rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.machine.config import MachineConfig
from repro.trace.ledger import NULL_LEDGER, CycleLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector


@dataclass
class AccessProfile:
    """Accumulated traffic of one program region (element counts)."""

    cache_elems: float = 0.0
    cluster_elems: float = 0.0
    global_elems: float = 0.0
    prefetched_elems: float = 0.0

    def add(self, other: "AccessProfile") -> None:
        self.cache_elems += other.cache_elems
        self.cluster_elems += other.cluster_elems
        self.global_elems += other.global_elems
        self.prefetched_elems += other.prefetched_elems

    def scaled(self, k: float) -> "AccessProfile":
        return AccessProfile(self.cache_elems * k, self.cluster_elems * k,
                             self.global_elems * k, self.prefetched_elems * k)


class MemorySystem:
    """Per-access costs plus the global-bandwidth saturation correction."""

    def __init__(self, config: MachineConfig,
                 faults: Optional["FaultInjector"] = None):
        self.cfg = config
        self.faults = faults

    # -- fault injection ------------------------------------------------------

    def _degraded(self, placement: str, healthy_cost: float,
                  ledger: CycleLedger) -> float:
        """Extra cycles a degraded memory bank adds on one access.

        The *healthy* cost stays in its normal memory category — keeping
        the counter×latency reconciliation exact — and only the inflation
        lands in the ledger's ``fault`` category.
        """
        if self.faults is None:
            return 0.0
        extra = self.faults.memory_extra(placement, healthy_cost)
        if extra > 0.0:
            ledger.charge("fault", extra)
            ledger.count("fault_events", 1.0)
        return extra

    # -- single-access costs -------------------------------------------------

    def scalar_access(self, placement: str, cached: bool = False,
                      ledger: CycleLedger = NULL_LEDGER) -> float:
        """Cost of one scalar element access (charged into ``ledger``)."""
        if placement == "private" or cached:
            ledger.charge("mem_cache", self.cfg.lat_cache)
            ledger.count("cache_refs")
            return self.cfg.lat_cache
        if placement == "cluster":
            ledger.charge("mem_cluster", self.cfg.lat_cluster)
            ledger.count("cluster_refs")
            return (self.cfg.lat_cluster
                    + self._degraded("cluster", self.cfg.lat_cluster, ledger))
        if placement == "global":
            if self.cfg.has_global_memory:
                ledger.charge("mem_global", self.cfg.lat_global)
                ledger.count("global_refs")
                return (self.cfg.lat_global
                        + self._degraded("global", self.cfg.lat_global,
                                         ledger))
            ledger.charge("mem_cluster", self.cfg.lat_cluster)
            ledger.count("cluster_refs")
            return (self.cfg.lat_cluster
                    + self._degraded("cluster", self.cfg.lat_cluster, ledger))
        raise ValueError(placement)

    def vector_access(self, placement: str, length: float,
                      prefetch: bool = True,
                      ledger: CycleLedger = NULL_LEDGER
                      ) -> tuple[float, AccessProfile]:
        """Cost and traffic of streaming ``length`` elements.

        Global vector streams use the prefetch unit when enabled: one
        trigger per 32-element block, then cache-speed delivery (§2.2.3).
        """
        prof = AccessProfile()
        if length <= 0:
            return 0.0, prof
        if self.faults is not None and self.faults.prefetch_disabled:
            # prefetch unit offline: global streams fall back to the
            # un-prefetched pipelined path (counters follow the fallback,
            # so counter×latency reconciliation still holds)
            prefetch = False
        if placement in ("private",):
            prof.cache_elems = length
            ledger.charge("mem_cache", self.cfg.lat_cache * length)
            ledger.count("cache_refs", length)
            return self.cfg.lat_cache * length, prof
        if placement == "cluster" or not self.cfg.has_global_memory:
            prof.cluster_elems = length
            # cluster streams run through the shared cache
            cost = self.cfg.lat_cluster * length
            ledger.charge("mem_cluster", cost)
            ledger.count("cluster_refs", length)
            return cost + self._degraded("cluster", cost, ledger), prof
        if placement == "global":
            if prefetch:
                blocks = -(-length // self.cfg.prefetch_block)
                prof.prefetched_elems = length
                prof.global_elems = length
                cost = (blocks * self.cfg.prefetch_trigger
                        + length * self.cfg.lat_global_prefetched)
                ledger.charge("prefetch", cost)
                ledger.count("prefetch_triggers", blocks)
                ledger.count("prefetch_elems", length)
                return cost + self._degraded("global", cost, ledger), prof
            prof.global_elems = length
            # un-prefetched global vector access still pipelines somewhat
            cost = length * (0.55 * self.cfg.lat_global)
            ledger.charge("mem_global", cost)
            ledger.count("global_stream_elems", length)
            return cost + self._degraded("global", cost, ledger), prof
        raise ValueError(placement)

    # -- saturation ----------------------------------------------------------

    def saturation_factor(self, global_elems: float, busy_time: float,
                          active_clusters: int) -> float:
        """Slowdown multiplier when aggregate global traffic exceeds the
        sustainable bandwidth.

        ``global_elems`` is the total global-memory traffic the region
        generates across all clusters; ``busy_time`` is the region's
        uncorrected parallel run time.
        """
        if busy_time <= 0 or global_elems <= 0 or not self.cfg.has_global_memory:
            return 1.0
        demanded_rate = global_elems / busy_time
        capacity = self.cfg.global_bandwidth
        if self.faults is not None:
            # a partial bank outage lowers the Figure 8 ceiling
            capacity = self.faults.bandwidth_capacity(capacity)
        if demanded_rate <= capacity:
            return 1.0
        return demanded_rate / capacity
