"""Parametric performance model of the Cedar machine (and Alliant FX/80).

The model captures the architectural features the paper's experiments
exercise:

- the three-level memory hierarchy (cache / cluster memory / global
  memory) with per-level access latencies (:mod:`repro.machine.memory`);
- the 32-element vector prefetch unit for global data
  (:mod:`repro.machine.prefetch`, paper §2.2.3);
- global-memory bandwidth saturation across clusters (Figure 8);
- virtual-memory paging and thrashing (Table 1's mprove anomaly);
- self-scheduled (microtasked) parallel loops with per-level startup and
  dispatch costs (:mod:`repro.machine.scheduler`, §2.2.1, §4.2.4);
- await/advance cascade synchronization and lock contention
  (:mod:`repro.machine.sync`);
- subroutine-level tasking via ``ctskstart``/``mtskstart``
  (:mod:`repro.machine.tasking`, §2.2.2).

All times are in processor clock cycles.
"""

from repro.machine.config import (
    MachineConfig,
    alliant_fx80,
    cedar_config1,
    cedar_config2,
)
from repro.machine.memory import MemorySystem
from repro.machine.prefetch import PrefetchUnit
from repro.machine.paging import PagingModel
from repro.machine.scheduler import LoopScheduler
from repro.machine.sync import SyncModel
from repro.machine.vector import VectorUnit

__all__ = [
    "MachineConfig",
    "cedar_config1",
    "cedar_config2",
    "alliant_fx80",
    "MemorySystem",
    "PrefetchUnit",
    "PagingModel",
    "LoopScheduler",
    "SyncModel",
    "VectorUnit",
]
