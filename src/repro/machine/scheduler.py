"""Self-scheduled (microtasked) parallel loop timing (paper §2.2.1).

``LoopScheduler.run`` computes the completion time of a parallel loop
given per-iteration costs, using a discrete simulation of self-scheduling:
each of the P workers repeatedly grabs the next chunk and executes it, so
load imbalance, small trip counts, and dispatch contention all show up —
exactly the effects that make small loops not worth spreading across
clusters (§4.2.4).

For the common homogeneous case an O(1) closed form is used; the event
simulation handles heterogeneous iteration costs (e.g. triangular loops).
The closed form models the same round-robin chunk deal the simulation
produces — including a final partial chunk when the trip count does not
divide the chunk size — so the two agree to floating-point rounding on
homogeneous costs (property-tested).

Every timing carries a critical-path breakdown (startup / dispatch /
synchronization / iteration-body / preamble+postamble cycles) whose sum
equals ``total_time`` exactly, and can charge its overhead components
into a :class:`repro.trace.CycleLedger`.

With a :class:`repro.prof.timeline.TimelineRecorder` attached, every
priced loop additionally emits per-worker spans (preamble, dispatch,
chunk-execute, sync, idle) whose busy durations sum to ``busy_time``
exactly — the profiler's per-CE Gantt view.  Without one (the default),
no span is built and results are bit-identical to the unprofiled path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.machine.config import MachineConfig
from repro.prof.timeline import CONTROL_TRACK, Span, TimelineRecorder
from repro.trace.ledger import NULL_LEDGER, CycleLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector


@dataclass
class LoopTiming:
    """Completion time and bookkeeping of one parallel loop execution.

    The ``*_cycles`` fields decompose the critical path:
    ``total_time == startup_cycles + dispatch_cycles + sync_cycles
    + body_cycles + pre_post_cycles + fault_cycles``.
    ``fault_cycles`` is the injected-fault degradation (zero on a healthy
    machine): the self-scheduled recovery — surviving CEs draining the
    chunk queue, DOACROSS re-signalling lost syncs — costs extra cycles
    but never changes what is computed.
    """

    total_time: float
    busy_time: float           # sum of worker busy cycles
    workers: int
    chunks: int
    startup_cycles: float = 0.0
    dispatch_cycles: float = 0.0
    sync_cycles: float = 0.0
    body_cycles: float = 0.0       # iteration-body time on the critical path
    pre_post_cycles: float = 0.0   # one preamble+postamble on the path
    fault_cycles: float = 0.0      # degradation added by injected faults

    @property
    def efficiency(self) -> float:
        denom = self.total_time * self.workers
        return self.busy_time / denom if denom > 0 else 0.0

    @property
    def overhead_cycles(self) -> float:
        """Non-body critical-path cycles (startup + dispatch + sync)."""
        return self.startup_cycles + self.dispatch_cycles + self.sync_cycles

    def charge_overhead(self, ledger: CycleLedger) -> None:
        """Charge the scheduler-added overhead into ``ledger``.

        Body and preamble/postamble cycles are the *caller's* to
        attribute — only the caller knows their compute/memory mix.
        """
        ledger.charge("startup", self.startup_cycles)
        ledger.charge("dispatch", self.dispatch_cycles)
        ledger.charge("sync", self.sync_cycles)
        ledger.count("loop_startups", 1.0)
        ledger.count("chunks_dispatched", float(self.chunks))
        if self.fault_cycles > 0.0:
            ledger.charge("fault", self.fault_cycles)
            ledger.count("fault_events", 1.0)


def _round_robin_counts(chunks: int, p: int) -> list[int]:
    """Chunks per worker under the deterministic round-robin deal."""
    k, extra = divmod(chunks, p)
    return [k + (1 if w < extra else 0) for w in range(p)]


class LoopScheduler:
    def __init__(self, config: MachineConfig,
                 faults: Optional["FaultInjector"] = None):
        self.cfg = config
        self.faults = faults

    # ------------------------------------------------------------------

    def run(self, level: str, order: str, trips: int,
            iter_cost: float | Sequence[float],
            preamble: float = 0.0, postamble: float = 0.0,
            chunk: int = 1, ledger: CycleLedger = NULL_LEDGER,
            timeline: Optional[TimelineRecorder] = None,
            label: str = "") -> LoopTiming:
        """Completion time of a self-scheduled loop.

        ``iter_cost`` is one number (homogeneous) or a per-iteration
        sequence.  ``preamble``/``postamble`` run once per worker.
        ``chunk`` iterations are grabbed per dispatch.  Scheduler-added
        overhead (startup/dispatch/sync) is charged into ``ledger``;
        per-worker spans land in ``timeline`` when one is given.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, order)
        dispatch = self.cfg.dispatch(level)

        if trips <= 0:
            timing = LoopTiming(startup, 0.0, p, 0, startup_cycles=startup)
            timing.charge_overhead(ledger)
            if timeline is not None:
                timeline.record(
                    label, level, order, p, timing.total_time, 0.0,
                    [Span(CONTROL_TRACK, "startup", 0.0, startup,
                          busy=False)])
            return timing

        if not isinstance(iter_cost, (int, float)):
            timing = self._simulate(level, order, list(iter_cost), p, startup,
                                    dispatch, preamble, postamble, chunk,
                                    timeline=timeline, label=label)
            timing.charge_overhead(ledger)
            return timing

        per = float(iter_cost)
        chunks = -(-trips // chunk)
        if order == "doacross":
            # without an explicit synchronized-region cost, assume the
            # whole iteration is synchronized (callers with a region use
            # :meth:`doacross` directly)
            return self.doacross(level, trips, per, per,
                                 preamble, postamble, ledger=ledger,
                                 timeline=timeline, label=label)
        # homogeneous DOALL: workers grab chunks round-robin until
        # exhausted; the last chunk holds the leftover trips (may be
        # partial), and the critical path belongs to a worker with
        # ceil(chunks/p) chunks — all full ones, unless the only such
        # worker is the one holding the partial tail chunk
        per_worker_chunks = -(-chunks // p)
        full_tail = chunks - (per_worker_chunks - 1) * p
        last_chunk = trips - (chunks - 1) * chunk
        if last_chunk == chunk or full_tail >= 2:
            crit_body = per_worker_chunks * chunk * per
        else:
            crit_body = ((per_worker_chunks - 1) * chunk + last_chunk) * per
        busy = trips * per + chunks * dispatch + p * (preamble + postamble)
        total = (startup + preamble + postamble
                 + per_worker_chunks * dispatch + crit_body)
        timing = LoopTiming(
            total, busy, p, chunks,
            startup_cycles=startup,
            dispatch_cycles=per_worker_chunks * dispatch,
            body_cycles=crit_body,
            pre_post_cycles=preamble + postamble)
        delta = 0.0
        if self.faults is not None:
            if self.faults.plan.degrades_workers:
                chunk_costs = [chunk * per] * (chunks - 1) \
                    + [last_chunk * per]
                delta = self._fault_delta_selfsched(
                    chunk_costs, p, dispatch, preamble, postamble,
                    startup, total)
            delta += self._helper_startup_delay(level)
            self._apply_fault_delta(timing, delta)
        timing.charge_overhead(ledger)
        if timeline is not None:
            spans = self._spans_homogeneous(
                p, chunks, chunk, last_chunk, per, dispatch, startup,
                preamble, postamble, total,
                max_chunk_spans=timeline.max_chunk_spans)
            if delta > 0.0:
                spans.append(Span(CONTROL_TRACK, "fault", total,
                                  total + delta, busy=False))
            timeline.record(label, level, "doall", p, timing.total_time,
                            busy, spans)
        return timing

    # ------------------------------------------------------------------

    def doacross(self, level: str, trips: int, iter_cost: float,
                 region_cost: float, preamble: float = 0.0,
                 postamble: float = 0.0,
                 ledger: CycleLedger = NULL_LEDGER,
                 timeline: Optional[TimelineRecorder] = None,
                 label: str = "") -> LoopTiming:
        """DOACROSS with an explicit synchronized-region cost.

        The critical path is ``trips * (region + signalling)`` when the
        serialized region dominates, else the self-scheduled parallel
        time inflated by the wait for the incoming signal.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, "doacross")
        dispatch = self.cfg.dispatch(level)
        signal = self.cfg.cost_await + self.cfg.cost_advance
        if level == "X":
            signal += self.cfg.cross_cluster_signal
        serial_chain = trips * (region_cost + signal)
        k = -(-trips // p)
        parallel_part = k * (iter_cost + dispatch + signal)
        total = startup + preamble + postamble + max(parallel_part,
                                                     serial_chain)
        busy = trips * (iter_cost + signal)
        if serial_chain >= parallel_part:
            # the synchronized-region cascade is the critical path
            body, disp, sync = trips * region_cost, 0.0, trips * signal
        else:
            body, disp, sync = k * iter_cost, k * dispatch, k * signal
        timing = LoopTiming(
            total, busy, p, trips,
            startup_cycles=startup, dispatch_cycles=disp, sync_cycles=sync,
            body_cycles=body, pre_post_cycles=preamble + postamble)
        delta, lost = 0.0, 0
        if self.faults is not None:
            if self.faults.degrades_scheduling:
                delta, lost = self._fault_delta_doacross(
                    trips, iter_cost, region_cost, signal, dispatch, startup,
                    preamble, postamble, p, total)
            delta += self._helper_startup_delay(level)
            self._apply_fault_delta(timing, delta)
            if lost:
                ledger.count("sync_retries", float(lost))
        timing.charge_overhead(ledger)
        if timeline is not None:
            spans = self._spans_doacross(
                p, trips, iter_cost, dispatch, signal, startup,
                preamble, postamble, total,
                max_chunk_spans=timeline.max_chunk_spans)
            if delta > 0.0:
                spans.append(Span(CONTROL_TRACK, "fault", total,
                                  total + delta, busy=False))
            timeline.record(label, level, "doacross", p, timing.total_time,
                            busy, spans)
        return timing

    # ------------------------------------------------------------------

    def _simulate(self, level: str, order: str, costs: list[float], p: int,
                  startup: float, dispatch: float, preamble: float,
                  postamble: float, chunk: int,
                  timeline: Optional[TimelineRecorder] = None,
                  label: str = "") -> LoopTiming:
        """Event-driven self-scheduling over heterogeneous iterations."""
        heap = [(preamble, w) for w in range(p)]
        heapq.heapify(heap)
        next_iter = 0
        busy = p * (preamble + postamble)
        n = len(costs)
        n_chunks = -(-n // chunk)
        finish = preamble
        # per-worker critical-path decomposition
        w_dispatch = [0.0] * p
        w_body = [0.0] * p
        w_chunks = [0] * p
        chunk_spans: list[tuple[int, float, float]] = []  # (worker, t0, t1)
        keep_spans = (timeline is not None
                      and n_chunks <= timeline.max_chunk_spans)
        faulted = (self.faults is not None
                   and self.faults.plan.degrades_workers)
        chunk_costs: list[float] = []
        while next_iter < n:
            t, w = heapq.heappop(heap)
            take = costs[next_iter:next_iter + chunk]
            next_iter += len(take)
            body = sum(take)
            dt = dispatch + body
            w_dispatch[w] += dispatch
            w_body[w] += body
            w_chunks[w] += 1
            if keep_spans:
                chunk_spans.append((w, t, t + dt))
            if faulted:
                chunk_costs.append(body)
            busy += dt
            t += dt
            finish = max(finish, t)
            heapq.heappush(heap, (t, w))
        # all workers then run their postamble; the finishing worker's
        # split defines the critical-path breakdown
        last_t, last_w = max(heap)
        finish = max(finish, last_t) + postamble
        total = startup + finish
        timing = LoopTiming(
            total, busy, p, n_chunks,
            startup_cycles=startup,
            dispatch_cycles=w_dispatch[last_w],
            body_cycles=w_body[last_w],
            pre_post_cycles=preamble + postamble)
        delta = 0.0
        if self.faults is not None:
            if faulted:
                delta = self._fault_delta_selfsched(
                    chunk_costs, p, dispatch, preamble, postamble,
                    startup, total)
            delta += self._helper_startup_delay(level)
            self._apply_fault_delta(timing, delta)
        if timeline is not None:
            worker_end = {w: t for t, w in heap}
            spans = self._spans_simulated(
                p, startup, preamble, postamble, total, dispatch,
                chunk_spans if keep_spans else None,
                w_dispatch, w_body, w_chunks, worker_end)
            if delta > 0.0:
                spans.append(Span(CONTROL_TRACK, "fault", total,
                                  total + delta, busy=False))
            timeline.record(label, level, order, p, timing.total_time,
                            busy, spans)
        return timing

    # ------------------------------------------------------------------
    # fault injection (repro.faults) — timing-only graceful degradation

    def _apply_fault_delta(self, timing: LoopTiming, delta: float) -> None:
        if delta > 0.0:
            timing.fault_cycles += delta
            timing.total_time += delta
            self.faults.note(delta)

    def _helper_startup_delay(self, level: str) -> float:
        """Late helper tasks stall spread/cross loop startup.

        SDOALL/XDOALL loops are started by waking helper tasks through
        global memory (``start_sdoall``/``start_xdoall``); a delayed
        ``mtskstart`` adds the plan's ``helper_delay`` on top of that
        startup.  CDOALL loops start over the concurrency bus and are
        unaffected.
        """
        if level in ("S", "X"):
            return self.faults.plan.helper_delay
        return 0.0

    def _fault_delta_selfsched(self, chunk_costs: list[float], p: int,
                               dispatch: float, preamble: float,
                               postamble: float, startup: float,
                               healthy_total: float) -> float:
        """Extra completion cycles of the self-scheduled deal under faults.

        Re-runs the chunk-queue drain with the plan applied: a dying CE
        finishes its in-flight chunk, then retires at ``death_cycle`` and
        never grabs another; survivors keep draining the queue; slow CEs
        stretch whatever they execute by their clock factor.  Deadlock is
        impossible by construction — :meth:`FaultPlan.survivors` always
        leaves at least one live worker (the OS restarts the cluster's
        master CE), so every chunk is eventually dispatched and results
        stay bit-identical to the healthy run; only time degrades.
        """
        plan = self.faults.plan
        alive = set(plan.survivors(p))
        death = plan.death_cycle
        f = [plan.speed_factor(w) for w in range(p)]
        heap = [(preamble * f[w], w) for w in range(p)]
        heapq.heapify(heap)
        i = 0
        while i < len(chunk_costs):
            t, w = heapq.heappop(heap)
            if w not in alive and t >= death:
                continue  # retired: in-flight chunk done, takes no more work
            t += (dispatch + chunk_costs[i]) * f[w]
            i += 1
            heapq.heappush(heap, (t, w))
        # survivors run the postamble; a dead CE's last chunk still has
        # to land (its stores complete) before the loop can exit
        finish = 0.0
        for t, w in heap:
            finish = max(finish,
                         t + (postamble * f[w] if w in alive else 0.0))
        return max(0.0, startup + finish - healthy_total)

    def _fault_delta_doacross(self, trips: int, iter_cost: float,
                              region_cost: float, signal: float,
                              dispatch: float, startup: float,
                              preamble: float, postamble: float, p: int,
                              healthy_total: float) -> tuple[float, int]:
        """Extra DOACROSS cycles under faults, plus lost-signal count.

        The cascade re-forms over the surviving CEs: iterations redeal
        round-robin across ``len(survivors)`` workers, every cycle may be
        stretched by the worst surviving clock factor, and each lost
        await/advance signal (deterministic per-index draw) is re-sent
        exactly once, stalling the cascade by one extra signal cost.
        """
        plan, inj = self.faults.plan, self.faults
        p_live = len(plan.survivors(p))
        f = plan.max_speed_factor(p)
        lost = 0
        for _ in range(trips):
            if plan.sync_lost(inj.sync_index):
                lost += 1
            inj.sync_index += 1
        inj.sync_retries += lost
        resend = lost * signal
        serial_chain = trips * (region_cost * f + signal) + resend
        k = -(-trips // p_live)
        parallel_part = k * ((iter_cost + dispatch) * f + signal) + resend
        degraded = (startup + (preamble + postamble) * f
                    + max(parallel_part, serial_chain))
        return max(0.0, degraded - healthy_total), lost

    # ------------------------------------------------------------------
    # span construction (profiling only — never touches the timing math)

    @staticmethod
    def _span(spans: list[Span], worker: int, category: str, start: float,
              duration: float, busy: bool, count: int = 1) -> float:
        """Append a span if it has extent; returns the new cursor."""
        if duration > 0.0:
            spans.append(Span(worker, category, start, start + duration,
                              busy=busy, count=count))
        return start + duration

    def _spans_homogeneous(self, p: int, chunks: int, chunk: int,
                           last_chunk: int, per: float, dispatch: float,
                           startup: float, preamble: float, postamble: float,
                           total: float, max_chunk_spans: int) -> list[Span]:
        spans: list[Span] = []
        self._span(spans, CONTROL_TRACK, "startup", 0.0, startup, busy=False)
        counts = _round_robin_counts(chunks, p)
        coalesce = chunks > max_chunk_spans
        for w in range(p):
            k_w = counts[w]
            t = self._span(spans, w, "preamble", startup, preamble, busy=True)
            # the globally last (possibly partial) chunk belongs to the
            # last worker holding ceil(chunks/p) chunks
            owns_tail = (w == (chunks - 1) % p)
            body_w = (k_w * chunk - (chunk - last_chunk if owns_tail else 0)) \
                * per if k_w else 0.0
            if coalesce:
                t = self._span(spans, w, "dispatch", t, k_w * dispatch,
                               busy=True, count=k_w)
                t = self._span(spans, w, "chunk", t, body_w, busy=True,
                               count=k_w)
            else:
                for j in range(k_w):
                    size = (last_chunk if owns_tail and j == k_w - 1
                            else chunk)
                    t = self._span(spans, w, "dispatch", t, dispatch,
                                   busy=True)
                    t = self._span(spans, w, "chunk", t, size * per,
                                   busy=True)
            t = self._span(spans, w, "postamble", t, postamble, busy=True)
            self._span(spans, w, "idle", t, total - t, busy=False)
        return spans

    def _spans_doacross(self, p: int, trips: int, iter_cost: float,
                        dispatch: float, signal: float, startup: float,
                        preamble: float, postamble: float, total: float,
                        max_chunk_spans: int) -> list[Span]:
        # iterations round-robin across workers, spread evenly over the
        # window the timing model allots; the slack per iteration is the
        # wait on the incoming cascade signal.  The timing model's
        # busy_time counts iteration bodies and signalling only, so
        # preamble/postamble/dispatch spans are marked not-busy here.
        spans: list[Span] = []
        self._span(spans, CONTROL_TRACK, "startup", 0.0, startup, busy=False)
        counts = _round_robin_counts(trips, p)
        window = max(total - startup - preamble - postamble, 0.0)
        coalesce = trips > max_chunk_spans
        for w in range(p):
            k_w = counts[w]
            t = self._span(spans, w, "preamble", startup, preamble,
                           busy=False)
            if k_w:
                slot = window / k_w
                wait = max(slot - (dispatch + iter_cost + signal), 0.0)
                if coalesce:
                    t = self._span(spans, w, "wait", t, k_w * wait,
                                   busy=False, count=k_w)
                    t = self._span(spans, w, "dispatch", t, k_w * dispatch,
                                   busy=False, count=k_w)
                    t = self._span(spans, w, "chunk", t, k_w * iter_cost,
                                   busy=True, count=k_w)
                    t = self._span(spans, w, "sync", t, k_w * signal,
                                   busy=True, count=k_w)
                else:
                    for _ in range(k_w):
                        t = self._span(spans, w, "wait", t, wait, busy=False)
                        t = self._span(spans, w, "dispatch", t, dispatch,
                                       busy=False)
                        t = self._span(spans, w, "chunk", t, iter_cost,
                                       busy=True)
                        t = self._span(spans, w, "sync", t, signal,
                                       busy=True)
            t = self._span(spans, w, "postamble", t, postamble, busy=False)
            self._span(spans, w, "idle", t, total - t, busy=False)
        return spans

    def _spans_simulated(self, p: int, startup: float, preamble: float,
                         postamble: float, total: float, dispatch: float,
                         chunk_spans, w_dispatch: list[float],
                         w_body: list[float], w_chunks: list[int],
                         worker_end: dict[int, float]) -> list[Span]:
        spans: list[Span] = []
        self._span(spans, CONTROL_TRACK, "startup", 0.0, startup, busy=False)
        for w in range(p):
            self._span(spans, w, "preamble", startup, preamble, busy=True)
        if chunk_spans is not None:
            for w, t0, t1 in chunk_spans:
                self._span(spans, w, "dispatch", startup + t0, dispatch,
                           busy=True)
                self._span(spans, w, "chunk", startup + t0 + dispatch,
                           t1 - t0 - dispatch, busy=True)
        else:
            # coalesced: each worker works continuously from its preamble
            for w in range(p):
                t = startup + preamble
                t = self._span(spans, w, "dispatch", t, w_dispatch[w],
                               busy=True, count=w_chunks[w])
                self._span(spans, w, "chunk", t, w_body[w], busy=True,
                           count=w_chunks[w])
        for w in range(p):
            t = startup + worker_end.get(w, preamble)
            t = self._span(spans, w, "postamble", t, postamble, busy=True)
            self._span(spans, w, "idle", t, total - t, busy=False)
        return spans
