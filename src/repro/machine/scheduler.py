"""Self-scheduled (microtasked) parallel loop timing (paper §2.2.1).

``LoopScheduler.run`` computes the completion time of a parallel loop
given per-iteration costs, using a discrete simulation of self-scheduling:
each of the P workers repeatedly grabs the next chunk and executes it, so
load imbalance, small trip counts, and dispatch contention all show up —
exactly the effects that make small loops not worth spreading across
clusters (§4.2.4).

For the common homogeneous case an O(1) closed form is used; the event
simulation handles heterogeneous iteration costs (e.g. triangular loops).
The closed form models the same round-robin chunk deal the simulation
produces — including a final partial chunk when the trip count does not
divide the chunk size — so the two agree to floating-point rounding on
homogeneous costs (property-tested).

Every timing carries a critical-path breakdown (startup / dispatch /
synchronization / iteration-body / preamble+postamble cycles) whose sum
equals ``total_time`` exactly, and can charge its overhead components
into a :class:`repro.trace.CycleLedger`.

With a :class:`repro.prof.timeline.TimelineRecorder` attached, every
priced loop additionally emits per-worker spans (preamble, dispatch,
chunk-execute, sync, idle) whose busy durations sum to ``busy_time``
exactly — the profiler's per-CE Gantt view.  Without one (the default),
no span is built and results are bit-identical to the unprofiled path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.machine.config import MachineConfig
from repro.prof.timeline import CONTROL_TRACK, Span, TimelineRecorder
from repro.trace.ledger import NULL_LEDGER, CycleLedger


@dataclass
class LoopTiming:
    """Completion time and bookkeeping of one parallel loop execution.

    The ``*_cycles`` fields decompose the critical path:
    ``total_time == startup_cycles + dispatch_cycles + sync_cycles
    + body_cycles + pre_post_cycles``.
    """

    total_time: float
    busy_time: float           # sum of worker busy cycles
    workers: int
    chunks: int
    startup_cycles: float = 0.0
    dispatch_cycles: float = 0.0
    sync_cycles: float = 0.0
    body_cycles: float = 0.0       # iteration-body time on the critical path
    pre_post_cycles: float = 0.0   # one preamble+postamble on the path

    @property
    def efficiency(self) -> float:
        denom = self.total_time * self.workers
        return self.busy_time / denom if denom > 0 else 0.0

    @property
    def overhead_cycles(self) -> float:
        """Non-body critical-path cycles (startup + dispatch + sync)."""
        return self.startup_cycles + self.dispatch_cycles + self.sync_cycles

    def charge_overhead(self, ledger: CycleLedger) -> None:
        """Charge the scheduler-added overhead into ``ledger``.

        Body and preamble/postamble cycles are the *caller's* to
        attribute — only the caller knows their compute/memory mix.
        """
        ledger.charge("startup", self.startup_cycles)
        ledger.charge("dispatch", self.dispatch_cycles)
        ledger.charge("sync", self.sync_cycles)
        ledger.count("loop_startups", 1.0)
        ledger.count("chunks_dispatched", float(self.chunks))


def _round_robin_counts(chunks: int, p: int) -> list[int]:
    """Chunks per worker under the deterministic round-robin deal."""
    k, extra = divmod(chunks, p)
    return [k + (1 if w < extra else 0) for w in range(p)]


class LoopScheduler:
    def __init__(self, config: MachineConfig):
        self.cfg = config

    # ------------------------------------------------------------------

    def run(self, level: str, order: str, trips: int,
            iter_cost: float | Sequence[float],
            preamble: float = 0.0, postamble: float = 0.0,
            chunk: int = 1, ledger: CycleLedger = NULL_LEDGER,
            timeline: Optional[TimelineRecorder] = None,
            label: str = "") -> LoopTiming:
        """Completion time of a self-scheduled loop.

        ``iter_cost`` is one number (homogeneous) or a per-iteration
        sequence.  ``preamble``/``postamble`` run once per worker.
        ``chunk`` iterations are grabbed per dispatch.  Scheduler-added
        overhead (startup/dispatch/sync) is charged into ``ledger``;
        per-worker spans land in ``timeline`` when one is given.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, order)
        dispatch = self.cfg.dispatch(level)

        if trips <= 0:
            timing = LoopTiming(startup, 0.0, p, 0, startup_cycles=startup)
            timing.charge_overhead(ledger)
            if timeline is not None:
                timeline.record(
                    label, level, order, p, timing.total_time, 0.0,
                    [Span(CONTROL_TRACK, "startup", 0.0, startup,
                          busy=False)])
            return timing

        if not isinstance(iter_cost, (int, float)):
            timing = self._simulate(level, order, list(iter_cost), p, startup,
                                    dispatch, preamble, postamble, chunk,
                                    timeline=timeline, label=label)
            timing.charge_overhead(ledger)
            return timing

        per = float(iter_cost)
        chunks = -(-trips // chunk)
        if order == "doacross":
            # without an explicit synchronized-region cost, assume the
            # whole iteration is synchronized (callers with a region use
            # :meth:`doacross` directly)
            return self.doacross(level, trips, per, per,
                                 preamble, postamble, ledger=ledger,
                                 timeline=timeline, label=label)
        # homogeneous DOALL: workers grab chunks round-robin until
        # exhausted; the last chunk holds the leftover trips (may be
        # partial), and the critical path belongs to a worker with
        # ceil(chunks/p) chunks — all full ones, unless the only such
        # worker is the one holding the partial tail chunk
        per_worker_chunks = -(-chunks // p)
        full_tail = chunks - (per_worker_chunks - 1) * p
        last_chunk = trips - (chunks - 1) * chunk
        if last_chunk == chunk or full_tail >= 2:
            crit_body = per_worker_chunks * chunk * per
        else:
            crit_body = ((per_worker_chunks - 1) * chunk + last_chunk) * per
        busy = trips * per + chunks * dispatch + p * (preamble + postamble)
        total = (startup + preamble + postamble
                 + per_worker_chunks * dispatch + crit_body)
        timing = LoopTiming(
            total, busy, p, chunks,
            startup_cycles=startup,
            dispatch_cycles=per_worker_chunks * dispatch,
            body_cycles=crit_body,
            pre_post_cycles=preamble + postamble)
        timing.charge_overhead(ledger)
        if timeline is not None:
            spans = self._spans_homogeneous(
                p, chunks, chunk, last_chunk, per, dispatch, startup,
                preamble, postamble, total,
                max_chunk_spans=timeline.max_chunk_spans)
            timeline.record(label, level, "doall", p, total, busy, spans)
        return timing

    # ------------------------------------------------------------------

    def doacross(self, level: str, trips: int, iter_cost: float,
                 region_cost: float, preamble: float = 0.0,
                 postamble: float = 0.0,
                 ledger: CycleLedger = NULL_LEDGER,
                 timeline: Optional[TimelineRecorder] = None,
                 label: str = "") -> LoopTiming:
        """DOACROSS with an explicit synchronized-region cost.

        The critical path is ``trips * (region + signalling)`` when the
        serialized region dominates, else the self-scheduled parallel
        time inflated by the wait for the incoming signal.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, "doacross")
        dispatch = self.cfg.dispatch(level)
        signal = self.cfg.cost_await + self.cfg.cost_advance
        if level == "X":
            signal += self.cfg.cross_cluster_signal
        serial_chain = trips * (region_cost + signal)
        k = -(-trips // p)
        parallel_part = k * (iter_cost + dispatch + signal)
        total = startup + preamble + postamble + max(parallel_part,
                                                     serial_chain)
        busy = trips * (iter_cost + signal)
        if serial_chain >= parallel_part:
            # the synchronized-region cascade is the critical path
            body, disp, sync = trips * region_cost, 0.0, trips * signal
        else:
            body, disp, sync = k * iter_cost, k * dispatch, k * signal
        timing = LoopTiming(
            total, busy, p, trips,
            startup_cycles=startup, dispatch_cycles=disp, sync_cycles=sync,
            body_cycles=body, pre_post_cycles=preamble + postamble)
        timing.charge_overhead(ledger)
        if timeline is not None:
            spans = self._spans_doacross(
                p, trips, iter_cost, dispatch, signal, startup,
                preamble, postamble, total,
                max_chunk_spans=timeline.max_chunk_spans)
            timeline.record(label, level, "doacross", p, total, busy, spans)
        return timing

    # ------------------------------------------------------------------

    def _simulate(self, level: str, order: str, costs: list[float], p: int,
                  startup: float, dispatch: float, preamble: float,
                  postamble: float, chunk: int,
                  timeline: Optional[TimelineRecorder] = None,
                  label: str = "") -> LoopTiming:
        """Event-driven self-scheduling over heterogeneous iterations."""
        heap = [(preamble, w) for w in range(p)]
        heapq.heapify(heap)
        next_iter = 0
        busy = p * (preamble + postamble)
        n = len(costs)
        n_chunks = -(-n // chunk)
        finish = preamble
        # per-worker critical-path decomposition
        w_dispatch = [0.0] * p
        w_body = [0.0] * p
        w_chunks = [0] * p
        chunk_spans: list[tuple[int, float, float]] = []  # (worker, t0, t1)
        keep_spans = (timeline is not None
                      and n_chunks <= timeline.max_chunk_spans)
        while next_iter < n:
            t, w = heapq.heappop(heap)
            take = costs[next_iter:next_iter + chunk]
            next_iter += len(take)
            dt = dispatch + sum(take)
            w_dispatch[w] += dispatch
            w_body[w] += sum(take)
            w_chunks[w] += 1
            if keep_spans:
                chunk_spans.append((w, t, t + dt))
            busy += dt
            t += dt
            finish = max(finish, t)
            heapq.heappush(heap, (t, w))
        # all workers then run their postamble; the finishing worker's
        # split defines the critical-path breakdown
        last_t, last_w = max(heap)
        finish = max(finish, last_t) + postamble
        total = startup + finish
        timing = LoopTiming(
            total, busy, p, n_chunks,
            startup_cycles=startup,
            dispatch_cycles=w_dispatch[last_w],
            body_cycles=w_body[last_w],
            pre_post_cycles=preamble + postamble)
        if timeline is not None:
            worker_end = {w: t for t, w in heap}
            spans = self._spans_simulated(
                p, startup, preamble, postamble, total, dispatch,
                chunk_spans if keep_spans else None,
                w_dispatch, w_body, w_chunks, worker_end)
            timeline.record(label, level, order, p, total, busy, spans)
        return timing

    # ------------------------------------------------------------------
    # span construction (profiling only — never touches the timing math)

    @staticmethod
    def _span(spans: list[Span], worker: int, category: str, start: float,
              duration: float, busy: bool, count: int = 1) -> float:
        """Append a span if it has extent; returns the new cursor."""
        if duration > 0.0:
            spans.append(Span(worker, category, start, start + duration,
                              busy=busy, count=count))
        return start + duration

    def _spans_homogeneous(self, p: int, chunks: int, chunk: int,
                           last_chunk: int, per: float, dispatch: float,
                           startup: float, preamble: float, postamble: float,
                           total: float, max_chunk_spans: int) -> list[Span]:
        spans: list[Span] = []
        self._span(spans, CONTROL_TRACK, "startup", 0.0, startup, busy=False)
        counts = _round_robin_counts(chunks, p)
        coalesce = chunks > max_chunk_spans
        for w in range(p):
            k_w = counts[w]
            t = self._span(spans, w, "preamble", startup, preamble, busy=True)
            # the globally last (possibly partial) chunk belongs to the
            # last worker holding ceil(chunks/p) chunks
            owns_tail = (w == (chunks - 1) % p)
            body_w = (k_w * chunk - (chunk - last_chunk if owns_tail else 0)) \
                * per if k_w else 0.0
            if coalesce:
                t = self._span(spans, w, "dispatch", t, k_w * dispatch,
                               busy=True, count=k_w)
                t = self._span(spans, w, "chunk", t, body_w, busy=True,
                               count=k_w)
            else:
                for j in range(k_w):
                    size = (last_chunk if owns_tail and j == k_w - 1
                            else chunk)
                    t = self._span(spans, w, "dispatch", t, dispatch,
                                   busy=True)
                    t = self._span(spans, w, "chunk", t, size * per,
                                   busy=True)
            t = self._span(spans, w, "postamble", t, postamble, busy=True)
            self._span(spans, w, "idle", t, total - t, busy=False)
        return spans

    def _spans_doacross(self, p: int, trips: int, iter_cost: float,
                        dispatch: float, signal: float, startup: float,
                        preamble: float, postamble: float, total: float,
                        max_chunk_spans: int) -> list[Span]:
        # iterations round-robin across workers, spread evenly over the
        # window the timing model allots; the slack per iteration is the
        # wait on the incoming cascade signal.  The timing model's
        # busy_time counts iteration bodies and signalling only, so
        # preamble/postamble/dispatch spans are marked not-busy here.
        spans: list[Span] = []
        self._span(spans, CONTROL_TRACK, "startup", 0.0, startup, busy=False)
        counts = _round_robin_counts(trips, p)
        window = max(total - startup - preamble - postamble, 0.0)
        coalesce = trips > max_chunk_spans
        for w in range(p):
            k_w = counts[w]
            t = self._span(spans, w, "preamble", startup, preamble,
                           busy=False)
            if k_w:
                slot = window / k_w
                wait = max(slot - (dispatch + iter_cost + signal), 0.0)
                if coalesce:
                    t = self._span(spans, w, "wait", t, k_w * wait,
                                   busy=False, count=k_w)
                    t = self._span(spans, w, "dispatch", t, k_w * dispatch,
                                   busy=False, count=k_w)
                    t = self._span(spans, w, "chunk", t, k_w * iter_cost,
                                   busy=True, count=k_w)
                    t = self._span(spans, w, "sync", t, k_w * signal,
                                   busy=True, count=k_w)
                else:
                    for _ in range(k_w):
                        t = self._span(spans, w, "wait", t, wait, busy=False)
                        t = self._span(spans, w, "dispatch", t, dispatch,
                                       busy=False)
                        t = self._span(spans, w, "chunk", t, iter_cost,
                                       busy=True)
                        t = self._span(spans, w, "sync", t, signal,
                                       busy=True)
            t = self._span(spans, w, "postamble", t, postamble, busy=False)
            self._span(spans, w, "idle", t, total - t, busy=False)
        return spans

    def _spans_simulated(self, p: int, startup: float, preamble: float,
                         postamble: float, total: float, dispatch: float,
                         chunk_spans, w_dispatch: list[float],
                         w_body: list[float], w_chunks: list[int],
                         worker_end: dict[int, float]) -> list[Span]:
        spans: list[Span] = []
        self._span(spans, CONTROL_TRACK, "startup", 0.0, startup, busy=False)
        for w in range(p):
            self._span(spans, w, "preamble", startup, preamble, busy=True)
        if chunk_spans is not None:
            for w, t0, t1 in chunk_spans:
                self._span(spans, w, "dispatch", startup + t0, dispatch,
                           busy=True)
                self._span(spans, w, "chunk", startup + t0 + dispatch,
                           t1 - t0 - dispatch, busy=True)
        else:
            # coalesced: each worker works continuously from its preamble
            for w in range(p):
                t = startup + preamble
                t = self._span(spans, w, "dispatch", t, w_dispatch[w],
                               busy=True, count=w_chunks[w])
                self._span(spans, w, "chunk", t, w_body[w], busy=True,
                           count=w_chunks[w])
        for w in range(p):
            t = startup + worker_end.get(w, preamble)
            t = self._span(spans, w, "postamble", t, postamble, busy=True)
            self._span(spans, w, "idle", t, total - t, busy=False)
        return spans
