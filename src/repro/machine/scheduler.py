"""Self-scheduled (microtasked) parallel loop timing (paper §2.2.1).

``LoopScheduler.run`` computes the completion time of a parallel loop
given per-iteration costs, using a discrete simulation of self-scheduling:
each of the P workers repeatedly grabs the next chunk and executes it, so
load imbalance, small trip counts, and dispatch contention all show up —
exactly the effects that make small loops not worth spreading across
clusters (§4.2.4).

For the common homogeneous case an O(1) closed form is used; the event
simulation handles heterogeneous iteration costs (e.g. triangular loops).

Every timing carries a critical-path breakdown (startup / dispatch /
synchronization / iteration-body / preamble+postamble cycles) whose sum
equals ``total_time`` exactly, and can charge its overhead components
into a :class:`repro.trace.CycleLedger`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.machine.config import MachineConfig
from repro.trace.ledger import NULL_LEDGER, CycleLedger


@dataclass
class LoopTiming:
    """Completion time and bookkeeping of one parallel loop execution.

    The ``*_cycles`` fields decompose the critical path:
    ``total_time == startup_cycles + dispatch_cycles + sync_cycles
    + body_cycles + pre_post_cycles``.
    """

    total_time: float
    busy_time: float           # sum of worker busy cycles
    workers: int
    chunks: int
    startup_cycles: float = 0.0
    dispatch_cycles: float = 0.0
    sync_cycles: float = 0.0
    body_cycles: float = 0.0       # iteration-body time on the critical path
    pre_post_cycles: float = 0.0   # one preamble+postamble on the path

    @property
    def efficiency(self) -> float:
        denom = self.total_time * self.workers
        return self.busy_time / denom if denom > 0 else 0.0

    @property
    def overhead_cycles(self) -> float:
        """Non-body critical-path cycles (startup + dispatch + sync)."""
        return self.startup_cycles + self.dispatch_cycles + self.sync_cycles

    def charge_overhead(self, ledger: CycleLedger) -> None:
        """Charge the scheduler-added overhead into ``ledger``.

        Body and preamble/postamble cycles are the *caller's* to
        attribute — only the caller knows their compute/memory mix.
        """
        ledger.charge("startup", self.startup_cycles)
        ledger.charge("dispatch", self.dispatch_cycles)
        ledger.charge("sync", self.sync_cycles)


class LoopScheduler:
    def __init__(self, config: MachineConfig):
        self.cfg = config

    # ------------------------------------------------------------------

    def run(self, level: str, order: str, trips: int,
            iter_cost: float | Sequence[float],
            preamble: float = 0.0, postamble: float = 0.0,
            chunk: int = 1, ledger: CycleLedger = NULL_LEDGER) -> LoopTiming:
        """Completion time of a self-scheduled loop.

        ``iter_cost`` is one number (homogeneous) or a per-iteration
        sequence.  ``preamble``/``postamble`` run once per worker.
        ``chunk`` iterations are grabbed per dispatch.  Scheduler-added
        overhead (startup/dispatch/sync) is charged into ``ledger``.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, order)
        dispatch = self.cfg.dispatch(level)

        if trips <= 0:
            timing = LoopTiming(startup, 0.0, p, 0, startup_cycles=startup)
            timing.charge_overhead(ledger)
            return timing

        if not isinstance(iter_cost, (int, float)):
            timing = self._simulate(level, order, list(iter_cost), p, startup,
                                    dispatch, preamble, postamble, chunk)
            timing.charge_overhead(ledger)
            return timing

        per = float(iter_cost)
        chunks = -(-trips // chunk)
        if order == "doacross":
            # without an explicit synchronized-region cost, assume the
            # whole iteration is synchronized (callers with a region use
            # :meth:`doacross` directly)
            return self.doacross(level, trips, per, per,
                                 preamble, postamble, ledger=ledger)
        # homogeneous DOALL: workers grab chunks until exhausted
        per_worker_chunks = -(-chunks // p)
        busy = trips * per + chunks * dispatch + p * (preamble + postamble)
        total = (startup + preamble + postamble
                 + per_worker_chunks * (chunk * per + dispatch))
        timing = LoopTiming(
            total, busy, p, chunks,
            startup_cycles=startup,
            dispatch_cycles=per_worker_chunks * dispatch,
            body_cycles=per_worker_chunks * chunk * per,
            pre_post_cycles=preamble + postamble)
        timing.charge_overhead(ledger)
        return timing

    # ------------------------------------------------------------------

    def doacross(self, level: str, trips: int, iter_cost: float,
                 region_cost: float, preamble: float = 0.0,
                 postamble: float = 0.0,
                 ledger: CycleLedger = NULL_LEDGER) -> LoopTiming:
        """DOACROSS with an explicit synchronized-region cost.

        The critical path is ``trips * (region + signalling)`` when the
        serialized region dominates, else the self-scheduled parallel
        time inflated by the wait for the incoming signal.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, "doacross")
        dispatch = self.cfg.dispatch(level)
        signal = self.cfg.cost_await + self.cfg.cost_advance
        if level == "X":
            signal += self.cfg.cross_cluster_signal
        serial_chain = trips * (region_cost + signal)
        k = -(-trips // p)
        parallel_part = k * (iter_cost + dispatch + signal)
        total = startup + preamble + postamble + max(parallel_part,
                                                     serial_chain)
        busy = trips * (iter_cost + signal)
        if serial_chain >= parallel_part:
            # the synchronized-region cascade is the critical path
            body, disp, sync = trips * region_cost, 0.0, trips * signal
        else:
            body, disp, sync = k * iter_cost, k * dispatch, k * signal
        timing = LoopTiming(
            total, busy, p, trips,
            startup_cycles=startup, dispatch_cycles=disp, sync_cycles=sync,
            body_cycles=body, pre_post_cycles=preamble + postamble)
        timing.charge_overhead(ledger)
        return timing

    # ------------------------------------------------------------------

    def _simulate(self, level: str, order: str, costs: list[float], p: int,
                  startup: float, dispatch: float, preamble: float,
                  postamble: float, chunk: int) -> LoopTiming:
        """Event-driven self-scheduling over heterogeneous iterations."""
        heap = [(preamble, w) for w in range(p)]
        heapq.heapify(heap)
        next_iter = 0
        busy = p * (preamble + postamble)
        n = len(costs)
        finish = preamble
        # per-worker critical-path decomposition
        w_dispatch = [0.0] * p
        w_body = [0.0] * p
        while next_iter < n:
            t, w = heapq.heappop(heap)
            take = costs[next_iter:next_iter + chunk]
            next_iter += len(take)
            dt = dispatch + sum(take)
            w_dispatch[w] += dispatch
            w_body[w] += sum(take)
            busy += dt
            t += dt
            finish = max(finish, t)
            heapq.heappush(heap, (t, w))
        # all workers then run their postamble; the finishing worker's
        # split defines the critical-path breakdown
        last_t, last_w = max(heap)
        finish = max(finish, last_t) + postamble
        return LoopTiming(
            startup + finish, busy, p, -(-n // chunk),
            startup_cycles=startup,
            dispatch_cycles=w_dispatch[last_w],
            body_cycles=w_body[last_w],
            pre_post_cycles=preamble + postamble)
