"""Self-scheduled (microtasked) parallel loop timing (paper §2.2.1).

``LoopScheduler.run`` computes the completion time of a parallel loop
given per-iteration costs, using a discrete simulation of self-scheduling:
each of the P workers repeatedly grabs the next chunk and executes it, so
load imbalance, small trip counts, and dispatch contention all show up —
exactly the effects that make small loops not worth spreading across
clusters (§4.2.4).

For the common homogeneous case an O(1) closed form is used; the event
simulation handles heterogeneous iteration costs (e.g. triangular loops).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.machine.config import MachineConfig


@dataclass
class LoopTiming:
    """Completion time and bookkeeping of one parallel loop execution."""

    total_time: float
    busy_time: float           # sum of worker busy cycles
    workers: int
    chunks: int

    @property
    def efficiency(self) -> float:
        denom = self.total_time * self.workers
        return self.busy_time / denom if denom > 0 else 0.0


class LoopScheduler:
    def __init__(self, config: MachineConfig):
        self.cfg = config

    # ------------------------------------------------------------------

    def run(self, level: str, order: str, trips: int,
            iter_cost: float | Sequence[float],
            preamble: float = 0.0, postamble: float = 0.0,
            chunk: int = 1) -> LoopTiming:
        """Completion time of a self-scheduled loop.

        ``iter_cost`` is one number (homogeneous) or a per-iteration
        sequence.  ``preamble``/``postamble`` run once per worker.
        ``chunk`` iterations are grabbed per dispatch.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, order)
        dispatch = self.cfg.dispatch(level)

        if trips <= 0:
            return LoopTiming(startup, 0.0, p, 0)

        if not isinstance(iter_cost, (int, float)):
            return self._simulate(level, order, list(iter_cost), p, startup,
                                  dispatch, preamble, postamble, chunk)

        per = float(iter_cost)
        chunks = -(-trips // chunk)
        if order == "doacross":
            # without an explicit synchronized-region cost, assume the
            # whole iteration is synchronized (callers with a region use
            # :meth:`doacross` directly)
            return self.doacross(level, trips, per, per,
                                 preamble, postamble)
        # homogeneous DOALL: workers grab chunks until exhausted
        per_worker_chunks = -(-chunks // p)
        busy = trips * per + chunks * dispatch + p * (preamble + postamble)
        total = (startup + preamble + postamble
                 + per_worker_chunks * (chunk * per + dispatch))
        return LoopTiming(total, busy, p, chunks)

    # ------------------------------------------------------------------

    def doacross(self, level: str, trips: int, iter_cost: float,
                 region_cost: float, preamble: float = 0.0,
                 postamble: float = 0.0) -> LoopTiming:
        """DOACROSS with an explicit synchronized-region cost.

        The critical path is ``trips * (region + signalling)`` when the
        serialized region dominates, else the self-scheduled parallel
        time inflated by the wait for the incoming signal.
        """
        p = min(self.cfg.processors_at(level), max(trips, 1))
        startup = self.cfg.startup(level, "doacross")
        dispatch = self.cfg.dispatch(level)
        signal = self.cfg.cost_await + self.cfg.cost_advance
        if level == "X":
            signal += self.cfg.cross_cluster_signal
        serial_chain = trips * (region_cost + signal)
        parallel_part = (-(-trips // p)) * (iter_cost + dispatch + signal)
        total = startup + preamble + postamble + max(parallel_part,
                                                     serial_chain)
        busy = trips * (iter_cost + signal)
        return LoopTiming(total, busy, p, trips)

    # ------------------------------------------------------------------

    def _simulate(self, level: str, order: str, costs: list[float], p: int,
                  startup: float, dispatch: float, preamble: float,
                  postamble: float, chunk: int) -> LoopTiming:
        """Event-driven self-scheduling over heterogeneous iterations."""
        heap = [(preamble, w) for w in range(p)]
        heapq.heapify(heap)
        next_iter = 0
        busy = p * (preamble + postamble)
        n = len(costs)
        finish = preamble
        while next_iter < n:
            t, w = heapq.heappop(heap)
            take = costs[next_iter:next_iter + chunk]
            next_iter += len(take)
            dt = dispatch + sum(take)
            busy += dt
            t += dt
            finish = max(finish, t)
            heapq.heappush(heap, (t, w))
        # all workers then run their postamble
        finish = max(finish, max(t for t, _ in heap)) + postamble
        return LoopTiming(startup + finish, busy, p,
                          -(-n // chunk))
