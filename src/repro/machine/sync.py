"""Synchronization costs: await/advance cascades and unordered locks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.machine.config import MachineConfig
from repro.trace.ledger import NULL_LEDGER, CycleLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector


@dataclass
class SyncModel:
    cfg: MachineConfig
    faults: Optional["FaultInjector"] = None

    def cascade_cost(self, cross_cluster: bool,
                     ledger: CycleLedger = NULL_LEDGER) -> float:
        """One await+advance pair along a DOACROSS cascade.

        Under an injected lost-synchronization fault the signal may be
        dropped and re-sent once (deterministic per-index draw); the
        retry cost lands in the ledger's ``fault`` category, never in
        ``sync``, so healthy attribution is untouched.
        """
        c = self.cfg.cost_await + self.cfg.cost_advance
        if cross_cluster:
            c += self.cfg.cross_cluster_signal
        ledger.charge("sync", c)
        ledger.count("sync_ops")
        if self.faults is not None and self.faults.plan.lost_sync_rate > 0.0:
            retry = self.faults.sync_retry(c)
            if retry > 0.0:
                ledger.charge("fault", retry)
                ledger.count("sync_retries", 1.0)
                ledger.count("fault_events", 1.0)
                c += retry
        return c

    def critical_section(self, body_cost: float, contenders: int,
                         ledger: CycleLedger = NULL_LEDGER) -> float:
        """Expected cost of one pass through an unordered critical section
        under ``contenders`` simultaneous contenders: lock acquisition plus
        expected serialization wait of half the other holders.

        Only the lock machinery and the serialization wait are charged to
        the ledger's ``sync`` — the body cost is the caller's to attribute.
        """
        lock = self.cfg.cost_lock + self.cfg.cost_unlock
        wait = 0.5 * max(contenders - 1, 0) * (body_cost + lock)
        ledger.charge("sync", lock + wait)
        ledger.count("sync_ops")
        return lock + body_cost + wait

    def reduction_combine(self, level: str, elems: float = 1.0,
                          ledger: CycleLedger = NULL_LEDGER) -> float:
        """Cost of combining per-processor partials at loop exit.

        Two steps (§3.3): within each cluster over the concurrency bus,
        then across clusters through global memory.
        """
        within = self.cfg.processors_per_cluster.bit_length() * (
            self.cfg.lat_cache + self.cfg.cost_alu) * elems
        ledger.count("sync_ops")
        if level == "C" or not self.cfg.has_global_memory:
            ledger.charge("sync", within)
            return within
        across = self.cfg.clusters.bit_length() * (
            self.cfg.lat_global + self.cfg.cross_cluster_signal) * elems
        if level == "S":
            ledger.charge("sync", across)
            return across
        ledger.charge("sync", within + across)
        return within + across
