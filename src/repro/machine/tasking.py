"""Subroutine-level tasking model (paper §2.2.2).

Two thread-creation mechanisms:

- ``ctskstart`` — the OS builds a new cluster task: very expensive, but
  the thread may use unrestricted synchronization;
- ``mtskstart`` — an existing helper task picks up the thread: cheap,
  enabling fine-grain subroutine parallelism, but synchronization inside
  is forbidden (deadlock risk: helpers never context-switch, so a thread
  waiting on an unscheduled thread can wait forever).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import MachineModelError
from repro.machine.config import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector


@dataclass
class TaskSpawn:
    """One subroutine-level thread request."""

    mechanism: str          # 'ctskstart' | 'mtskstart'
    uses_synchronization: bool = False


class TaskingModel:
    def __init__(self, config: MachineConfig, helper_tasks: int | None = None,
                 faults: Optional["FaultInjector"] = None):
        self.cfg = config
        self.helpers = (helper_tasks if helper_tasks is not None
                        else config.total_processors - 1)
        self.faults = faults
        if faults is not None and faults.plan.dead_ces:
            # dead CEs take their helper tasks with them; the master CE's
            # helper pool shrinks but never empties (graceful degradation)
            self.helpers = max(1, self.helpers
                               - len(set(faults.plan.dead_ces)))

    def spawn_cost(self, spawn: TaskSpawn) -> float:
        if spawn.mechanism == "ctskstart":
            return self.cfg.cost_ctskstart
        if spawn.mechanism == "mtskstart":
            if spawn.uses_synchronization:
                raise MachineModelError(
                    "synchronization is not allowed in mtskstart threads "
                    "(deadlock risk: helper tasks never context-switch)")
            cost = self.cfg.cost_mtskstart
            if self.faults is not None:
                # late helpers: the picked-up thread starts helper_delay
                # cycles after the request (injected-fault degradation)
                cost += self.faults.helper_delay()
            return cost
        raise MachineModelError(f"unknown mechanism {spawn.mechanism!r}")

    def can_run_concurrently(self, threads: int, mechanism: str) -> bool:
        """mtskstart threads beyond the helper count queue up; waiting on a
        queued thread from a running one deadlocks, so the model only
        admits fan-outs that fit."""
        if mechanism == "ctskstart":
            return True
        return threads <= self.helpers
