"""Vector prefetch unit model (paper §2.2.3).

The back end issues a prefetch trigger for 32 elements before each vector
register load whose source is global memory; prefetched data arrives at
cache speed.  The unit only helps *vector* accesses — scalar global loads
pay full latency — which is why prefetch gains scale with vector length
(Figure 6: CG with long vectors gains ~2×, TRFD with short vectors ~15%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import MachineConfig
from repro.trace.ledger import NULL_LEDGER, CycleLedger


@dataclass
class PrefetchUnit:
    """Computes effective per-element cost for global vector streams."""

    cfg: MachineConfig
    enabled: bool = True

    def stream_cost(self, length: float,
                    ledger: CycleLedger = NULL_LEDGER) -> float:
        """Cycles to stream ``length`` contiguous global elements."""
        if length <= 0:
            return 0.0
        if not self.enabled or not self.cfg.has_global_memory:
            cost = length * (0.55 * self.cfg.lat_global)
            ledger.charge("mem_global", cost)
            ledger.count("global_stream_elems", length)
            return cost
        blocks = -(-length // self.cfg.prefetch_block)
        cost = (blocks * self.cfg.prefetch_trigger
                + length * self.cfg.lat_global_prefetched)
        ledger.charge("prefetch", cost)
        ledger.count("prefetch_triggers", blocks)
        ledger.count("prefetch_elems", length)
        return cost

    def speedup_for(self, length: float) -> float:
        """Prefetch-on / prefetch-off time ratio for one stream."""
        off = length * (0.55 * self.cfg.lat_global)
        on = PrefetchUnit(self.cfg, True).stream_cost(length)
        return off / on if on > 0 else 1.0
