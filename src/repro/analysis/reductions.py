"""Reduction recognition (paper §3.3 and §4.1.3).

Recognized forms, for a candidate loop:

- scalar accumulation ``s = s + e`` / ``s = s - e`` / ``s = s * e`` with
  ``e`` free of ``s``;
- min/max via intrinsic, ``s = min(s, e)`` / ``s = max(s, e)``;
- min/max via IF, ``if (e .lt. s) s = e`` (and the ``.gt.`` dual);
- **array-element accumulation** ``a(idx) = a(idx) + e`` with identical
  (affine-equal) index expressions on both sides — the §4.1.3 pattern the
  1991 KAP missed;
- **multiple accumulation statements** updating the same variable with the
  same operator class are merged into one reduction.

A variable qualifies only if *all* its references in the loop body belong
to its accumulation statements (otherwise intermediate values are
observable and reordering would change semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.expr import exprs_equal
from repro.analysis.refs import Ref, collect_refs
from repro.fortran import ast_nodes as F

#: operator → neutral element (used by the transformation pass)
NEUTRAL = {"+": 0.0, "*": 1.0, "min": float("inf"), "max": float("-inf")}


@dataclass
class Reduction:
    """One recognized reduction in a loop."""

    var: str
    op: str                         # '+', '*', 'min', 'max'
    kind: str                       # 'scalar' | 'array'
    stmts: list[F.Stmt] = field(default_factory=list)
    index: Optional[F.Expr] = None  # accumulator subscript for array kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Reduction {self.var} {self.op} {self.kind} x{len(self.stmts)}>"


def _subscripts_of(t: F.Expr) -> Optional[list[F.Expr]]:
    if isinstance(t, F.ArrayRef):
        return t.subscripts
    if isinstance(t, F.Apply):
        return t.args
    return None


def _expr_mentions(e: F.Expr, name: str) -> bool:
    for n in e.walk():
        if isinstance(n, (F.Var,)) and n.name == name:
            return True
        if isinstance(n, (F.ArrayRef, F.Apply, F.FuncCall)) and n.name == name:
            return True
    return False


def _additive_terms(e: F.Expr, sign: int = 1) -> list[tuple[F.Expr, int]]:
    """Flatten an additive chain into (term, ±1) pairs."""
    if isinstance(e, F.BinOp) and e.op == "+":
        return _additive_terms(e.left, sign) + _additive_terms(e.right, sign)
    if isinstance(e, F.BinOp) and e.op == "-":
        return _additive_terms(e.left, sign) + _additive_terms(e.right, -sign)
    if isinstance(e, F.UnOp) and e.op == "-":
        return _additive_terms(e.operand, -sign)
    return [(e, sign)]


def _match_accumulation(stmt: F.Stmt) -> Optional[tuple[str, str, Optional[list[F.Expr]], F.Expr]]:
    """Match one accumulation statement.

    Returns (var, op, subscripts-or-None, contributed expr) or None.
    """
    # IF-guarded min/max:  if (e .lt. s) s = e
    if isinstance(stmt, F.LogicalIf):
        inner = stmt.stmt
        if isinstance(inner, F.Assign) and isinstance(inner.target, F.Var) \
                and isinstance(stmt.cond, F.BinOp) \
                and stmt.cond.op in (".lt.", ".le.", ".gt.", ".ge."):
            v = inner.target.name
            e = inner.value
            c = stmt.cond
            # forms: if (e REL s) s = e
            def matches(lhs, rhs):
                return exprs_equal(lhs, e) and isinstance(rhs, F.Var) \
                    and rhs.name == v
            if matches(c.left, c.right):
                op = "min" if c.op in (".lt.", ".le.") else "max"
                if not _expr_mentions(e, v):
                    return (v, op, None, e)
            if matches(c.right, c.left):
                op = "max" if c.op in (".lt.", ".le.") else "min"
                if not _expr_mentions(e, v):
                    return (v, op, None, e)
        return None

    if not isinstance(stmt, F.Assign):
        return None
    t = stmt.target
    e = stmt.value

    if isinstance(t, F.Var):
        v = t.name
        subs = None
    else:
        subs = _subscripts_of(t)
        if subs is None:
            return None
        v = t.name

    def self_ref(x: F.Expr) -> bool:
        if subs is None:
            return isinstance(x, F.Var) and x.name == v
        got = _subscripts_of(x)
        if got is None or not isinstance(x, (F.ArrayRef, F.Apply)) or x.name != v:
            return False
        return len(got) == len(subs) and all(
            exprs_equal(a, b) for a, b in zip(got, subs))

    # s = s + e1 + e2 ... (any additive chain containing s exactly once)
    if isinstance(e, F.BinOp) and e.op in ("+", "-"):
        terms = _additive_terms(e)
        selfs = [(i, t) for i, (t, sign) in enumerate(terms) if self_ref(t)]
        if len(selfs) == 1 and terms[selfs[0][0]][1] == 1:
            others = [(t, sign) for i, (t, sign) in enumerate(terms)
                      if i != selfs[0][0]]
            if others and not any(_expr_mentions(t, v) for t, _ in others):
                contrib: F.Expr | None = None
                for t, sign in others:
                    t = t if sign == 1 else F.UnOp("-", t)
                    contrib = t if contrib is None else F.BinOp("+", contrib, t)
                return (v, "+", subs, contrib)
    # s = s * e | s = e * s
    if isinstance(e, F.BinOp) and e.op == "*":
        if self_ref(e.left) and not _expr_mentions(e.right, v):
            return (v, e.op, subs, e.right)
        if self_ref(e.right) and not _expr_mentions(e.left, v):
            return (v, e.op, subs, e.left)
    # s = min(s, e) / max(s, e)
    if isinstance(e, (F.FuncCall, F.Apply)) and e.name in (
            "min", "max", "amin1", "amax1", "min0", "max0", "dmin1", "dmax1"):
        if len(e.args) == 2:
            a, b = e.args
            op = "min" if e.name.startswith(("min", "amin", "dmin")) else "max"
            if self_ref(a) and not _expr_mentions(b, v):
                return (v, op, subs, b)
            if self_ref(b) and not _expr_mentions(a, v):
                return (v, op, subs, a)
    return None


def find_reductions(loop: F.DoLoop) -> list[Reduction]:
    """Recognize reductions in ``loop`` (accumulations anywhere in the nest)."""
    candidates: dict[str, list[tuple[F.Stmt, str, Optional[list[F.Expr]], F.Expr]]] = {}
    disqualified: set[str] = set()

    for s in F.stmts_walk(loop.body):
        if not isinstance(s, (F.Assign, F.LogicalIf)):
            continue
        m = _match_accumulation(s)
        if m is not None:
            v, op, subs, contrib = m
            candidates.setdefault(v, []).append((s, op, subs, contrib))

    out: list[Reduction] = []
    refs = collect_refs(loop.body)
    by_name: dict[str, list[Ref]] = {}
    for r in refs:
        by_name.setdefault(r.name, []).append(r)

    for v, accs in candidates.items():
        if v in disqualified:
            continue
        ops = {op for _, op, _, _ in accs}
        if len(ops) != 1:
            continue  # mixed operators: cannot reorder safely
        op = ops.pop()
        stmts = [s for s, _, _, _ in accs]
        stmt_ids = {id(s) for s in stmts}
        # inner statements of LogicalIf accumulators also count
        for s in stmts:
            if isinstance(s, F.LogicalIf):
                stmt_ids.add(id(s.stmt))
        # every ref to v must belong to an accumulation statement
        ok = True
        for r in by_name.get(v, []):
            if id(r.stmt) not in stmt_ids:
                ok = False
                break
            if r.in_call:
                ok = False
                break
        if not ok:
            continue
        is_array = any(subs is not None for _, _, subs, _ in accs)
        if is_array and not all(subs is not None for _, _, subs, _ in accs):
            continue
        if is_array:
            out.append(Reduction(v, op, "array", stmts,
                                 index=accs[0][2][0] if len(accs[0][2]) == 1
                                 else None))
        else:
            out.append(Reduction(v, op, "scalar", stmts))
    return out


def reduction_variables(loop: F.DoLoop) -> set[str]:
    """Names of all recognized reduction accumulators in ``loop``."""
    return {r.var for r in find_reductions(loop)}
