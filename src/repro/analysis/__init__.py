"""Program analyses feeding the Cedar restructurer.

Submodules:

- :mod:`repro.analysis.expr` — affine (linear) expression algebra and a
  constant folder/simplifier over the AST.
- :mod:`repro.analysis.refs` — reference collection (reads/writes of scalars
  and array elements) with loop-nest context.
- :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` — control-flow
  graph and classic bit-vector data-flow (reaching defs, liveness).
- :mod:`repro.analysis.depend` — data-dependence testing (ZIV/SIV exact
  tests, GCD, Banerjee with direction vectors) and the loop dependence
  graph.
- :mod:`repro.analysis.induction` — induction variables, including the
  paper's *generalized* induction variables (geometric and triangular).
- :mod:`repro.analysis.reductions` — reduction recognition (scalar sums,
  min/max, dot products, array-element accumulators, multiple statements).
- :mod:`repro.analysis.privatization` — scalar and array privatization.
- :mod:`repro.analysis.interproc` — call graph, MOD/REF summaries,
  demand-driven interprocedural constant propagation.
- :mod:`repro.analysis.runtime_test` — run-time dependence test synthesis
  for linearized subscripts (paper §4.1.5).
"""
