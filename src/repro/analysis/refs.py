"""Reference collection: every scalar/array read and write in a loop body.

Dependence testing, privatization, and reduction recognition all start from
the same inventory: which memory locations does each statement touch, under
which enclosing loops, and is the access conditional?  :func:`collect_refs`
builds that inventory for a statement list.

``CALL`` statements are handled through an optional *effects oracle* (the
interprocedural MOD/REF summaries); without one, every argument and every
COMMON variable is conservatively treated as both read and written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.fortran import ast_nodes as F


@dataclass(frozen=True)
class LoopInfo:
    """One enclosing loop: index variable and bound expressions."""
    var: str
    start: F.Expr
    end: F.Expr
    step: Optional[F.Expr]
    loop: F.DoLoop = field(compare=False, hash=False, default=None)

    @staticmethod
    def of(loop: F.DoLoop) -> "LoopInfo":
        return LoopInfo(loop.var, loop.start, loop.end, loop.step, loop)


@dataclass
class Ref:
    """One reference to a variable or array element.

    ``subscripts`` is empty for scalars.  ``loops`` lists enclosing loops
    outermost-first.  ``conditional`` is True when the reference sits under
    an IF inside the innermost loop of interest.  ``in_call`` marks
    references induced by CALL statements (may be both read and write).
    """

    name: str
    subscripts: list[F.Expr]
    is_write: bool
    stmt: F.Stmt
    loops: tuple[LoopInfo, ...]
    conditional: bool = False
    in_call: bool = False

    @property
    def is_scalar(self) -> bool:
        return not self.subscripts

    def depth(self) -> int:
        return len(self.loops)


#: Effects oracle: call statement → (ref names, mod names) among the actual
#: arguments, or None when the callee is unknown.
EffectsOracle = Callable[[F.CallStmt], Optional[tuple[set[str], set[str]]]]


class RefCollector:
    """Walks statement lists accumulating :class:`Ref` records."""

    def __init__(self, effects: EffectsOracle | None = None):
        self.effects = effects
        self.refs: list[Ref] = []
        self.has_unknown_calls = False
        self.has_goto = False

    # -- public -----------------------------------------------------------

    def collect(self, stmts: list[F.Stmt],
                loops: tuple[LoopInfo, ...] = (),
                conditional: bool = False) -> list[Ref]:
        for s in stmts:
            self._stmt(s, loops, conditional)
        return self.refs

    # -- statements ---------------------------------------------------------

    def _stmt(self, s: F.Stmt, loops: tuple[LoopInfo, ...],
              cond: bool) -> None:
        if isinstance(s, F.Assign):
            self._expr(s.value, loops, cond, s)
            t = s.target
            if isinstance(t, F.Var):
                self._add(t.name, [], True, s, loops, cond)
            elif isinstance(t, (F.ArrayRef, F.Apply)):
                subs = t.subscripts if isinstance(t, F.ArrayRef) else t.args
                for sub in subs:
                    self._expr(sub, loops, cond, s)
                self._add(t.name, list(subs), True, s, loops, cond)
            return
        if isinstance(s, F.DoLoop):
            self._expr(s.start, loops, cond, s)
            self._expr(s.end, loops, cond, s)
            if s.step is not None:
                self._expr(s.step, loops, cond, s)
            self._add(s.var, [], True, s, loops, cond)
            inner = loops + (LoopInfo.of(s),)
            for b in s.body:
                self._stmt(b, inner, cond)
            return
        if isinstance(s, F.IfBlock):
            for arm_cond, body in s.arms:
                if arm_cond is not None:
                    self._expr(arm_cond, loops, cond, s)
                for b in body:
                    self._stmt(b, loops, True)
            return
        if isinstance(s, F.LogicalIf):
            self._expr(s.cond, loops, cond, s)
            self._stmt(s.stmt, loops, True)
            return
        if isinstance(s, F.CallStmt):
            self._call(s, loops, cond)
            return
        if isinstance(s, (F.Goto, F.ComputedGoto)):
            self.has_goto = True
            if isinstance(s, F.ComputedGoto):
                self._expr(s.index, loops, cond, s)
            return
        if isinstance(s, F.PrintStmt):
            for item in s.items:
                self._expr(item, loops, cond, s)
            return
        if isinstance(s, F.ReadStmt):
            for item in s.items:
                if isinstance(item, F.Var):
                    self._add(item.name, [], True, s, loops, cond)
                elif isinstance(item, (F.ArrayRef, F.Apply)):
                    subs = item.subscripts if isinstance(item, F.ArrayRef) else item.args
                    self._add(item.name, list(subs), True, s, loops, cond)
            return
        # Continue/Return/Stop/declarations: no data references
        return

    def _call(self, s: F.CallStmt, loops: tuple[LoopInfo, ...], cond: bool) -> None:
        summary = self.effects(s) if self.effects else None
        if summary is None:
            self.has_unknown_calls = True
        for a in s.args:
            # expression args are pure reads; variable/array args may be
            # modified by the callee
            if isinstance(a, F.Var):
                is_mod = summary is None or a.name in summary[1]
                is_ref = summary is None or a.name in summary[0]
                if is_ref:
                    self._add(a.name, [], False, s, loops, cond, in_call=True)
                if is_mod:
                    self._add(a.name, [], True, s, loops, cond, in_call=True)
            elif isinstance(a, (F.ArrayRef, F.Apply)):
                subs = a.subscripts if isinstance(a, F.ArrayRef) else a.args
                for sub in subs:
                    self._expr(sub, loops, cond, s)
                is_mod = summary is None or a.name in summary[1]
                is_ref = summary is None or a.name in summary[0]
                if is_ref:
                    self._add(a.name, list(subs), False, s, loops, cond,
                              in_call=True)
                if is_mod:
                    self._add(a.name, list(subs), True, s, loops, cond,
                              in_call=True)
            else:
                self._expr(a, loops, cond, s)

    # -- expressions --------------------------------------------------------

    def _expr(self, e: F.Expr, loops: tuple[LoopInfo, ...],
              cond: bool, stmt: F.Stmt) -> None:
        if isinstance(e, F.Var):
            self._add(e.name, [], False, stmt, loops, cond)
            return
        if isinstance(e, (F.ArrayRef, F.Apply)):
            subs = e.subscripts if isinstance(e, F.ArrayRef) else e.args
            for sub in subs:
                self._expr(sub, loops, cond, stmt)
            self._add(e.name, list(subs), False, stmt, loops, cond)
            return
        if isinstance(e, F.FuncCall):
            for a in e.args:
                self._expr(a, loops, cond, stmt)
            return
        if isinstance(e, F.BinOp):
            self._expr(e.left, loops, cond, stmt)
            self._expr(e.right, loops, cond, stmt)
            return
        if isinstance(e, F.UnOp):
            self._expr(e.operand, loops, cond, stmt)
            return
        if isinstance(e, F.RangeExpr):
            for part in (e.lo, e.hi, e.stride):
                if part is not None:
                    self._expr(part, loops, cond, stmt)
            return
        # literals: nothing

    def _add(self, name: str, subs: list[F.Expr], is_write: bool,
             stmt: F.Stmt, loops: tuple[LoopInfo, ...], cond: bool,
             in_call: bool = False) -> None:
        self.refs.append(Ref(name, subs, is_write, stmt, loops, cond, in_call))


def collect_refs(stmts: list[F.Stmt],
                 loops: tuple[LoopInfo, ...] = (),
                 effects: EffectsOracle | None = None) -> list[Ref]:
    """Collect all references under ``stmts`` (see :class:`RefCollector`)."""
    return RefCollector(effects).collect(stmts, loops)


def loop_refs(loop: F.DoLoop,
              effects: EffectsOracle | None = None) -> tuple[list[Ref], RefCollector]:
    """References inside one loop (body only), with the collector's flags."""
    rc = RefCollector(effects)
    rc.collect(loop.body, (LoopInfo.of(loop),))
    return rc.refs, rc


def written_names(stmts: list[F.Stmt]) -> set[str]:
    """Names assigned anywhere under ``stmts`` (conservative for calls)."""
    return {r.name for r in collect_refs(stmts) if r.is_write}


def read_names(stmts: list[F.Stmt]) -> set[str]:
    """Names read anywhere under ``stmts`` (conservative for calls)."""
    return {r.name for r in collect_refs(stmts) if not r.is_write}


def inner_loops(stmts: list[F.Stmt]) -> Iterator[F.DoLoop]:
    """Yield every DoLoop in the subtree, outermost first."""
    for s in stmts:
        for n in s.walk():
            if isinstance(n, F.DoLoop):
                yield n
