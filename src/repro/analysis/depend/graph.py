"""Loop dependence graph construction.

For a loop nest, every pair of references to the same variable where at
least one is a write becomes a candidate dependence; the tester prunes
impossible direction vectors.  Edges are classified:

- *flow* (true): write → later read
- *anti*: read → later write
- *output*: write → write

Direction vectors are expressed over the loops enclosing **both** endpoints
(their common nest).  Scalar references have no subscripts: any write-write
or write-read pair of a scalar yields dependences at every level unless a
later pass (induction/reduction/privatization) explains the scalar away —
the graph records them; the parallelization planner filters them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.analysis.depend.tests import DependenceTester, TestResult
from repro.analysis.refs import LoopInfo, Ref, RefCollector
from repro.fortran import ast_nodes as F

#: Names whose references never produce memory dependences (sync intrinsics).
_IGNORED_NAMES: frozenset[str] = frozenset()


@dataclass
class Dependence:
    """One dependence edge between two references."""

    kind: str                      # 'flow' | 'anti' | 'output'
    source: Ref
    sink: Ref
    result: TestResult
    variable: str = ""

    def __post_init__(self):
        if not self.variable:
            self.variable = self.source.name

    @property
    def directions(self) -> set[tuple[str, ...]]:
        return self.result.directions

    @property
    def distance(self) -> Optional[tuple[int, ...]]:
        return self.result.distance

    def carried_by(self, depth: int) -> bool:
        return self.result.carried_by(depth)

    def loop_independent(self) -> bool:
        return self.result.loop_independent()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dirs = ",".join("".join(d) for d in sorted(self.directions))
        return f"<{self.kind} dep on {self.variable} [{dirs}]>"


@dataclass
class DependenceGraph:
    """All dependences of one loop nest."""

    loop: F.DoLoop
    nest: tuple[LoopInfo, ...]
    deps: list[Dependence] = field(default_factory=list)
    refs: list[Ref] = field(default_factory=list)
    exact: bool = True  # False if any conservative edge was added

    def carried_at(self, depth: int) -> list[Dependence]:
        """Dependences carried by the loop at ``depth`` in the nest."""
        return [d for d in self.deps if d.carried_by(depth)]

    def on_variable(self, name: str) -> list[Dependence]:
        return [d for d in self.deps if d.variable == name]

    def variables_with_carried(self, depth: int) -> set[str]:
        return {d.variable for d in self.carried_at(depth)}

    def is_parallel(self, depth: int = 0,
                    ignore: Iterable[str] = ()) -> bool:
        """True if the loop at ``depth`` carries no dependences.

        ``ignore`` names variables already explained (privatized scalars,
        recognized reductions, substituted induction variables).
        """
        ig = set(ignore)
        return not any(d for d in self.carried_at(depth)
                       if d.variable not in ig)


def _common_nest(a: Ref, b: Ref) -> tuple[LoopInfo, ...]:
    """Longest shared prefix of the two references' enclosing loops."""
    out = []
    for la, lb in zip(a.loops, b.loops):
        if la.loop is lb.loop:
            out.append(la)
        else:
            break
    return tuple(out)


def build_dependence_graph(loop: F.DoLoop,
                           params: Mapping[str, int] | None = None,
                           effects=None,
                           scalars: bool = True) -> DependenceGraph:
    """Build the dependence graph of ``loop`` (the outermost of the nest).

    ``params`` maps PARAMETER names to integer values.  ``effects`` is an
    optional interprocedural MOD/REF oracle for CALL statements.  With
    ``scalars=False``, scalar-variable dependences are omitted (useful when
    the caller has already run scalar analyses).
    """
    rc = RefCollector(effects)
    rc.collect(loop.body, (LoopInfo.of(loop),))
    refs = rc.refs
    graph = DependenceGraph(loop=loop, nest=(LoopInfo.of(loop),), refs=refs)

    # group references by variable
    by_name: dict[str, list[tuple[int, Ref]]] = {}
    for pos, r in enumerate(refs):
        if r.name in _IGNORED_NAMES:
            continue
        by_name.setdefault(r.name, []).append((pos, r))

    loop_vars = {li.var for r in refs for li in r.loops}

    for name, items in by_name.items():
        if not scalars and all(r.is_scalar for _, r in items):
            continue
        if name in loop_vars and all(r.is_scalar for _, r in items):
            continue  # loop index variables are handled by loop semantics
        writes = [(p, r) for p, r in items if r.is_write]
        if not writes:
            continue
        seen_ww: set[tuple[int, int]] = set()
        for pw, w in writes:
            for po, o in items:
                if o is w:
                    # self output dependence: the same write may hit the
                    # same cell in a *different* iteration
                    for dep in _self_dependence(w, params):
                        if not dep.result.exact:
                            graph.exact = False
                        graph.deps.append(dep)
                    continue
                if o.is_write:
                    key = (min(pw, po), max(pw, po))
                    if key in seen_ww:
                        continue
                    seen_ww.add(key)
                for dep in _pair_dependences(w, pw, o, po, params):
                    if not dep.result.exact:
                        graph.exact = False
                    graph.deps.append(dep)
    return graph


def _first_noneq(dv: tuple[str, ...]) -> str:
    for d in dv:
        if d != "=":
            return d
    return "="


def _flip(dv: tuple[str, ...]) -> tuple[str, ...]:
    return tuple("<" if d == ">" else (">" if d == "<" else "=") for d in dv)


def _self_dependence(w: Ref, params: Mapping[str, int] | None) -> list[Dependence]:
    """Output dependence of a write against itself across iterations."""
    nest = w.loops
    if not nest:
        return []
    tester = DependenceTester(nest, params)
    if w.is_scalar or w.in_call:
        result = tester.conservative()
    else:
        result = tester.test_refs(w.subscripts, w.subscripts)
    fwd = {dv for dv in result.directions if _first_noneq(dv) == "<"}
    if not fwd:
        return []
    res = TestResult(fwd, None, result.exact)
    return [Dependence(kind="output", source=w, sink=w, result=res)]


def _subscript_range(ref: Ref, dim: int, params):
    """Symbolic (min, max) of one subscript over all enclosing loops.

    Only affine subscripts whose loop-index coefficients are ±1 with
    affine loop bounds qualify; the residue (loop-invariant symbols like
    the outer pivot index) stays symbolic in both endpoints, so pure
    differences cancel it.
    """
    from repro.analysis.expr import LinearExpr, const_value, linearize

    le = linearize(ref.subscripts[dim], params)
    if le is None:
        return None
    loops = {li.var: li for li in ref.loops}
    lo_acc = LinearExpr.constant(le.const)
    hi_acc = LinearExpr.constant(le.const)
    for name, c in le.coeffs:
        li = loops.get(name)
        if li is None:
            lo_acc = lo_acc + LinearExpr.variable(name, c)
            hi_acc = hi_acc + LinearExpr.variable(name, c)
            continue
        if abs(c) != 1:
            return None
        start = linearize(li.start, params)
        end = linearize(li.end, params)
        if start is None or end is None:
            return None
        step = 1 if li.step is None else const_value(li.step)
        if step is None or step == 0:
            return None
        if step < 0:
            start, end = end, start
        if c > 0:
            lo_acc = lo_acc + start
            hi_acc = hi_acc + end
        else:
            lo_acc = lo_acc - end
            hi_acc = hi_acc - start
    return lo_acc, hi_acc


def _ranges_disjoint(a: Ref, b: Ref, params) -> bool:
    """True when some dimension's address sets provably never overlap —
    e.g. the LU row update writing columns [k, n] while reading [1, k-1]."""
    if not a.subscripts or len(a.subscripts) != len(b.subscripts):
        return False
    for d in range(len(a.subscripts)):
        ra = _subscript_range(a, d, params)
        rb = _subscript_range(b, d, params)
        if ra is None or rb is None:
            continue
        gap1 = ra[0] - rb[1]  # a above b
        gap2 = rb[0] - ra[1]  # b above a
        if (gap1.is_constant and gap1.const > 0) \
                or (gap2.is_constant and gap2.const > 0):
            return True
    return False


def _pair_dependences(w: Ref, pw: int, o: Ref, po: int,
                      params: Mapping[str, int] | None) -> list[Dependence]:
    """Dependence edges between a write ``w`` and another reference ``o``.

    The tester is run with ``w`` as source; surviving direction vectors
    whose leading non-'=' is '<' (or all-'=' with ``w`` textually first)
    give an edge with ``w`` as source, the rest give the reversed edge.
    """
    if not w.is_scalar and not o.is_scalar and not w.in_call \
            and not o.in_call and _ranges_disjoint(w, o, params):
        return []
    nest = _common_nest(w, o)
    tester = DependenceTester(nest, params)
    if w.is_scalar or o.is_scalar or w.in_call or o.in_call:
        # scalars: one cell → dependence possible at all levels;
        # call-induced refs: unknown section → conservative
        if w.is_scalar != o.is_scalar:
            return []  # scalar vs array of the same name: distinct symbols
        result = tester.conservative()
    else:
        result = tester.test_refs(w.subscripts, o.subscripts)
    if result.independent:
        return []

    fwd: set[tuple[str, ...]] = set()
    rev: set[tuple[str, ...]] = set()
    for dv in result.directions:
        lead = _first_noneq(dv)
        if lead == "<":
            fwd.add(dv)
        elif lead == ">":
            rev.add(_flip(dv))
        else:  # loop-independent: textual order decides the source
            if pw < po:
                fwd.add(dv)
            elif po < pw:
                rev.add(dv)
            # pw == po (same statement, e.g. a(i) = a(i)+1): the RHS read
            # executes before the LHS write within one iteration
            elif not o.is_write:
                rev.add(dv)

    out: list[Dependence] = []
    if fwd:
        kind = "output" if o.is_write else "flow"
        res = TestResult(fwd, result.distance, result.exact)
        out.append(Dependence(kind=kind, source=w, sink=o, result=res))
    if rev:
        kind = "output" if o.is_write else "anti"
        dist = tuple(-d for d in result.distance) if result.distance else None
        res = TestResult(rev, dist, result.exact)
        out.append(Dependence(kind=kind, source=o, sink=w, result=res))
    return out
