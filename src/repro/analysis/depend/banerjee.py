"""Banerjee inequalities with direction-vector refinement.

For a subscript pair ``f(i) - g(i')`` we bound the difference ``h = f - g``
over the iteration space, once per candidate direction vector.  If the
interval ``[min h, max h]`` excludes 0 for some dimension, no dependence
with that direction vector exists.

Bounds may be unknown (symbolic); unknown bounds widen to ±∞, keeping the
test conservative.  Directions follow the usual convention: the vector
element for loop ``k`` relates the *source* iteration ``i_k`` to the *sink*
iteration ``i_k'``:

- ``'<'`` : i_k < i_k'   (dependence carried forward)
- ``'='`` : i_k = i_k'
- ``'>'`` : i_k > i_k'
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Optional, Sequence

from repro.analysis.expr import LinearExpr


@dataclass(frozen=True)
class LoopBounds:
    """Numeric bounds of one loop index (± inf when unknown)."""
    var: str
    lo: float = -inf
    hi: float = inf

    @staticmethod
    def from_linear(var: str, lo: Optional[LinearExpr],
                    hi: Optional[LinearExpr]) -> "LoopBounds":
        lo_v = float(lo.const) if lo is not None and lo.is_constant else -inf
        hi_v = float(hi.const) if hi is not None and hi.is_constant else inf
        return LoopBounds(var, lo_v, hi_v)


def _pos(x: float) -> float:
    return x if x > 0 else 0.0


def _neg(x: float) -> float:
    return x if x < 0 else 0.0


def _term_extremes(a: int, b: int, lo: float, hi: float,
                   direction: str) -> tuple[float, float]:
    """Min/max of ``a*i - b*i'`` with i, i' in [lo, hi] and i REL i'.

    Derived from the classic Banerjee per-direction bounds (Wolfe,
    *Optimizing Supercompilers for Supercomputers*).  For unknown (infinite)
    bounds the result widens to ±∞ whenever the coefficient combination can
    grow without bound.
    """
    if direction == "*":
        # unconstrained pair
        cands_min = _pos(a) * lo + _neg(a) * hi - (_pos(b) * hi + _neg(b) * lo)
        cands_max = _pos(a) * hi + _neg(a) * lo - (_pos(b) * lo + _neg(b) * hi)
        return _san(cands_min), _san(cands_max)
    if direction == "=":
        c = a - b
        mn = _pos(c) * lo + _neg(c) * hi
        mx = _pos(c) * hi + _neg(c) * lo
        return _san(mn), _san(mx)
    if direction == "<":
        # i <= i' - 1.  Write i' = i + d, d >= 1, i in [lo, hi-1], i+d <= hi.
        # h_term = a*i - b*(i+d) = (a-b)*i - b*d with d in [1, hi-lo].
        c = a - b
        if lo == -inf or hi == inf:
            # ranges unbounded: bound only by coefficient signs
            mn = -inf if (c != 0 or b > 0) else 0.0 - _pos(b)
            mx = inf if (c != 0 or b < 0) else 0.0 - _neg(b)
            # when c == 0: h = -b*d, d>=1 unbounded above
            if c == 0:
                mn = -inf if b > 0 else -b * 1.0
                mx = inf if b < 0 else -b * 1.0
            return _san(mn), _san(mx)
        dmax = hi - lo
        if dmax < 1:
            return inf, -inf  # empty: no i < i' possible
        # h is linear in (i, d) over a triangular region whose vertices are
        # (lo,1), (hi-1,1), (lo,dmax): extremes occur at the vertices.
        verts = [(lo, 1.0), (hi - 1, 1.0), (lo, dmax)]
        vals = [c * i - b * d for i, d in verts]
        return _san(min(vals)), _san(max(vals))
    if direction == ">":
        # mirror of '<': i' <= i - 1 → h = a*i - b*i', i = i' + d, d >= 1
        # h = (a-b)*i' + a*d, i' in [lo, hi-1], d in [1, hi-lo]
        c = a - b
        if lo == -inf or hi == inf:
            if c == 0:
                mn = -inf if a < 0 else a * 1.0
                mx = inf if a > 0 else a * 1.0
            else:
                mn, mx = -inf, inf
            return _san(mn), _san(mx)
        dmax = hi - lo
        if dmax < 1:
            return inf, -inf
        verts = [(lo, 1.0), (hi - 1, 1.0), (lo, dmax)]
        vals = [c * ip + a * d for ip, d in verts]
        return _san(min(vals)), _san(max(vals))
    raise ValueError(direction)


def _san(x: float) -> float:
    # keep inf/-inf as-is; guard NaN from inf arithmetic
    return 0.0 if x != x else x


def banerjee_test(src: LinearExpr, sink: LinearExpr,
                  bounds: Sequence[LoopBounds],
                  direction: Sequence[str]) -> bool:
    """True if a dependence with ``direction`` is *possible*.

    ``direction`` gives one of ``'<' '=' '>' '*'`` per loop in ``bounds``.
    Loop-invariant symbolic terms must cancel; otherwise the test returns
    True (cannot disprove).
    """
    index_set = {b.var for b in bounds}
    sym_src = {n: c for n, c in src.coeffs if n not in index_set}
    sym_sink = {n: c for n, c in sink.coeffs if n not in index_set}
    if sym_src != sym_sink:
        return True

    total_min = float(src.const - sink.const)
    total_max = float(src.const - sink.const)
    for b, d in zip(bounds, direction):
        a_c = src.coeff(b.var)
        b_c = sink.coeff(b.var)
        mn, mx = _term_extremes(a_c, b_c, b.lo, b.hi, d)
        if mn > mx:  # empty direction region (e.g. '<' in a 1-trip loop)
            return False
        total_min += mn
        total_max += mx
    return total_min <= 0.0 <= total_max
