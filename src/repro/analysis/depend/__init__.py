"""Data-dependence testing and the loop dependence graph.

- :mod:`repro.analysis.depend.gcd` — the GCD test on linear diophantine
  subscript equations.
- :mod:`repro.analysis.depend.banerjee` — Banerjee inequalities with
  direction-vector hierarchy refinement.
- :mod:`repro.analysis.depend.tests` — the combined driver (ZIV / strong &
  weak SIV exact tests, then GCD, then Banerjee per direction vector).
- :mod:`repro.analysis.depend.graph` — builds the dependence graph of a
  loop nest, classifying flow/anti/output dependences with direction (and
  where possible distance) vectors.
"""

from repro.analysis.depend.tests import DependenceTester, SubscriptPair, TestResult
from repro.analysis.depend.graph import (
    Dependence,
    DependenceGraph,
    build_dependence_graph,
)

__all__ = [
    "DependenceTester",
    "SubscriptPair",
    "TestResult",
    "Dependence",
    "DependenceGraph",
    "build_dependence_graph",
]
