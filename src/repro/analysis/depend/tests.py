"""Combined dependence-test driver.

Given a pair of references to the same array under a common loop nest, the
driver extracts affine subscripts, classifies each dimension (ZIV / SIV /
MIV), applies the exact tests where possible, falls back to GCD +
Banerjee direction-vector refinement otherwise, and returns the set of
surviving direction vectors (empty = independent) plus exact distance
vectors when every dimension is strong-SIV.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from math import inf
from typing import Mapping, Optional, Sequence

from repro.analysis.depend.banerjee import LoopBounds, banerjee_test
from repro.analysis.depend.gcd import gcd_test
from repro.analysis.expr import LinearExpr, linearize
from repro.analysis.refs import LoopInfo
from repro.fortran import ast_nodes as F


@dataclass(frozen=True)
class SubscriptPair:
    """Affine subscripts of one array dimension for (source, sink)."""
    src: LinearExpr
    sink: LinearExpr


@dataclass
class TestResult:
    """Outcome of dependence testing for one reference pair.

    ``directions`` holds surviving direction vectors, one symbol from
    ``< = >`` per common loop (empty set means proven independent).
    ``distance`` is the exact distance vector when known.  ``exact`` is
    False when any dimension fell back to conservative assumptions
    (non-affine subscripts, unknown calls, symbolic terms).
    """

    directions: set[tuple[str, ...]] = field(default_factory=set)
    distance: Optional[tuple[int, ...]] = None
    exact: bool = True

    @property
    def independent(self) -> bool:
        return not self.directions

    def carried_by(self, depth: int) -> bool:
        """True if some surviving vector is carried at loop ``depth`` (0-based)."""
        for dv in self.directions:
            if all(d == "=" for d in dv[:depth]) and dv[depth] in ("<", ">"):
                return True
        return False

    def loop_independent(self) -> bool:
        return any(all(d == "=" for d in dv) for dv in self.directions)


def _all_direction_vectors(k: int):
    return itertools.product("<=>", repeat=k)


class DependenceTester:
    """Tests subscript systems over a common loop nest."""

    def __init__(self, nest: Sequence[LoopInfo],
                 params: Mapping[str, int] | None = None):
        self.nest = list(nest)
        self.params = dict(params or {})
        self.index_vars = [l.var for l in self.nest]
        self.bounds = [self._bounds(l) for l in self.nest]

    def _bounds(self, l: LoopInfo) -> LoopBounds:
        lo = linearize(l.start, self.params)
        hi = linearize(l.end, self.params)
        return LoopBounds.from_linear(l.var, lo, hi)

    # ------------------------------------------------------------------

    def test_subscripts(self, pairs: Sequence[SubscriptPair]) -> TestResult:
        """Test an affine subscript system; returns surviving DVs."""
        k = len(self.nest)
        if k == 0:
            # no common loops: dependence iff all dims may be equal
            for p in pairs:
                if not gcd_test(p.src, p.sink, []):
                    return TestResult(set())
            return TestResult({()})

        # Whole-system GCD screening, per dimension.
        for p in pairs:
            if not gcd_test(p.src, p.sink, self.index_vars):
                return TestResult(set(), exact=True)

        surviving: set[tuple[str, ...]] = set()
        for dv in _all_direction_vectors(k):
            ok = True
            for p in pairs:
                if not banerjee_test(p.src, p.sink, self.bounds, dv):
                    ok = False
                    break
            if ok:
                surviving.add(dv)

        distance = self._exact_distance(pairs, k) if surviving else None
        if distance is not None:
            # an exact distance pins down the single direction vector
            dv = tuple("<" if d > 0 else (">" if d < 0 else "=")
                       for d in distance)
            surviving = {dv}
            # verify the distance is feasible within known trip counts
            for d, b in zip(distance, self.bounds):
                if b.lo != -inf and b.hi != inf and abs(d) > (b.hi - b.lo):
                    return TestResult(set())
        return TestResult(surviving, distance)

    def _exact_distance(self, pairs: Sequence[SubscriptPair],
                        k: int) -> Optional[tuple[int, ...]]:
        """Distance vector when every dimension is strong SIV/ZIV.

        Strong SIV in var v: src = a*v + e, sink = a*v' + e with the same
        loop-invariant part e; then v' - v = (src.const-ish difference)/a.
        """
        dist: dict[str, int] = {}
        determined: set[str] = set()
        for p in pairs:
            vars_used = ((p.src.variables() | p.sink.variables())
                         & set(self.index_vars))
            if not vars_used:
                if p.src != p.sink:
                    return None
                continue
            if len(vars_used) != 1:
                return None
            (v,) = vars_used
            a1, a2 = p.src.coeff(v), p.sink.coeff(v)
            if a1 != a2 or a1 == 0:
                return None
            rest_src = p.src - LinearExpr.variable(v, a1)
            rest_sink = p.sink - LinearExpr.variable(v, a2)
            diff = rest_src - rest_sink
            if not diff.is_constant:
                return None
            if diff.const % a1 != 0:
                return None
            d = diff.const // a1  # v' = v + d
            if v in dist and dist[v] != d:
                return None
            dist[v] = d
            determined.add(v)
        if determined != set(self.index_vars):
            # an index absent from every subscript leaves its relation
            # unconstrained ('*'), so no exact distance vector exists
            return None
        return tuple(dist[v] for v in self.index_vars)

    # ------------------------------------------------------------------

    def test_refs(self, src_subs: Sequence[F.Expr],
                  sink_subs: Sequence[F.Expr]) -> TestResult:
        """Test two AST subscript lists; non-affine → conservative."""
        if len(src_subs) != len(sink_subs):
            return self.conservative()
        pairs: list[SubscriptPair] = []
        for a, b in zip(src_subs, sink_subs):
            la = linearize(a, self.params)
            lb = linearize(b, self.params)
            if la is None or lb is None:
                return self.conservative()
            pairs.append(SubscriptPair(la, lb))
        return self.test_subscripts(pairs)

    def conservative(self) -> TestResult:
        """All direction vectors possible (used for non-affine cases)."""
        k = len(self.nest)
        return TestResult(set(_all_direction_vectors(k)) if k else {()},
                          exact=False)
