"""The GCD dependence test.

For a subscript pair ``f(i1..ik)`` (source) and ``g(i1'..ik')`` (sink), a
dependence requires an integer solution of::

    a1*i1 + ... + ak*ik - b1*i1' - ... - bk*ik' = c_g - c_f

A solution exists only if ``gcd(a1..ak, b1..bk)`` divides the constant
difference.  The test ignores loop bounds (Banerjee adds those) and is
*exact for independence*: "no solution" is definitive, "solution exists"
is only a may-dependence.
"""

from __future__ import annotations

from math import gcd
from typing import Sequence

from repro.analysis.expr import LinearExpr


def gcd_test(src: LinearExpr, sink: LinearExpr,
             index_vars: Sequence[str]) -> bool:
    """True if a dependence is *possible* per the GCD criterion.

    ``src``/``sink`` are affine subscripts; source index variables are
    taken as-is and sink variables are implicitly primed (distinct
    unknowns).  Symbolic terms that are not index variables must match on
    both sides (they denote the same loop-invariant value); if they do not
    cancel, the test conservatively reports "possible".
    """
    index_set = set(index_vars)
    coeffs: list[int] = []
    for n, c in src.coeffs:
        if n in index_set:
            coeffs.append(c)
    for n, c in sink.coeffs:
        if n in index_set:
            coeffs.append(c)

    # Loop-invariant symbolic parts: must cancel exactly, else unknown.
    sym_src = {n: c for n, c in src.coeffs if n not in index_set}
    sym_sink = {n: c for n, c in sink.coeffs if n not in index_set}
    if sym_src != sym_sink:
        return True  # cannot disprove

    diff = sink.const - src.const
    if not coeffs:
        return diff == 0
    g = 0
    for c in coeffs:
        g = gcd(g, abs(c))
    if g == 0:
        return diff == 0
    return diff % g == 0
