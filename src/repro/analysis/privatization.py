"""Scalar and array privatization analysis (paper §3.2 and §4.1.2).

A variable is *privatizable* for a loop when no value flows between
iterations through it: every read in an iteration is preceded, on every
path of that same iteration, by a write.  Privatizing gives each processor
its own copy (placed in cluster memory on Cedar — the performance win of
Figure 7) and removes the loop-carried dependences.

Scalars use the definite-assignment walker of
:mod:`repro.analysis.dataflow`.  Arrays use a *use-covered-by-def* check:
each read's subscripts must match (affine-equal, under identical or
enclosing inner-loop bounds) an earlier unconditional write in the same
iteration.

If the variable is live after the loop, privatization additionally needs a
last-value copy-out; the analysis reports this so the transformation can
emit it (or decline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.dataflow import Assigned, live_after_loop, scalar_usage
from repro.analysis.expr import exprs_equal, linearize
from repro.analysis.refs import LoopInfo, Ref, RefCollector
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable


@dataclass
class PrivatizationResult:
    """Analysis verdict for one variable in one loop."""

    name: str
    privatizable: bool
    is_array: bool = False
    needs_last_value: bool = False
    reason: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        verdict = "private" if self.privatizable else f"NOT private ({self.reason})"
        return f"<{self.name}: {verdict}>"


def analyze_scalar(loop: F.DoLoop, name: str,
                   unit: Optional[F.ProgramUnit] = None,
                   symtab: Optional[SymbolTable] = None) -> PrivatizationResult:
    """Decide scalar privatizability of ``name`` in ``loop``."""
    if name == loop.var:
        return PrivatizationResult(name, False, reason="loop index")
    usage = scalar_usage(loop.body, name)
    if usage.conservative:
        return PrivatizationResult(
            name, False, reason="goto or call involving the variable")
    if not usage.written_anywhere:
        return PrivatizationResult(name, False,
                                   reason="read-only (no privatization needed)")
    if usage.upward_exposed:
        return PrivatizationResult(
            name, False, reason="read before assigned within an iteration")
    needs_lv = _live_after(loop, name, unit, symtab)
    return PrivatizationResult(name, True, needs_last_value=needs_lv)


def _live_after(loop: F.DoLoop, name: str,
                unit: Optional[F.ProgramUnit],
                symtab: Optional[SymbolTable]) -> bool:
    if unit is None:
        return True  # unknown context: assume observable
    escapes = False
    if symtab is not None:
        sym = symtab.lookup(name)
        if sym is not None:
            escapes = sym.is_dummy or sym.common_block is not None or sym.saved
    return live_after_loop(unit, loop, name, escapes)


# ---------------------------------------------------------------------------
# array privatization
# ---------------------------------------------------------------------------

def _subscript_key(ref: Ref, outer_var: str,
                   params: Mapping[str, int] | None):
    """Affine forms of the subscripts, or None if any is non-affine or
    depends on the privatization loop index (crossing iterations via the
    index is fine — same iteration means same index value — so references
    through the outer index are comparable symbolically)."""
    out = []
    for s in ref.subscripts:
        le = linearize(s, params)
        if le is None:
            return None
        out.append(le)
    return out


def _provable_nonneg(le, positive: frozenset[str] | set[str]) -> bool:
    """Is the affine form provably ≥ 0, assuming each name in ``positive``
    is ≥ 1 (Fortran array extents must be positive for the declaration to
    be valid)?  True when every coefficient is nonnegative, every variable
    is in ``positive``, and const + Σ coeffs ≥ 0."""
    if le.is_constant:
        return le.const >= 0
    total = le.const
    for name, c in le.coeffs:
        if c < 0 or name not in positive:
            return False
        total += c
    return total >= 0


def _write_covers_read(write: Ref, read: Ref, outer: F.DoLoop,
                       params: Mapping[str, int] | None,
                       positive: frozenset[str] = frozenset()) -> bool:
    """Does ``write`` (earlier, unconditional) cover ``read`` in the same
    iteration of ``outer``?

    Per-dimension interval containment: each dimension's subscript must be
    affine in **at most one** inner-loop index with unit coefficient (so
    the written region is a dense rectangle), each dimension must use a
    *distinct* index, and the interval the read touches must lie inside
    the interval the write produces.  Symbolic parts that are not inner
    indices must match exactly.
    """
    if len(write.subscripts) != len(read.subscripts):
        return False
    if write.conditional:
        return False
    wk = _subscript_key(write, outer.var, params)
    rk = _subscript_key(read, outer.var, params)
    if wk is None or rk is None:
        return False

    w_inner = {li.var: li for li in write.loops[1:]}
    r_inner = {li.var: li for li in read.loops[1:]}

    used_w: set[str] = set()
    for wsub, rsub in zip(wk, rk):
        wvars = [v for v in wsub.variables() if v in w_inner]
        rvars = [v for v in rsub.variables() if v in r_inner]
        if len(wvars) > 1 or len(rvars) > 1:
            return False
        # symbolic residues (e.g. the outer index, array strides) must match
        from repro.analysis.expr import LinearExpr

        w_res = wsub
        r_res = rsub
        if wvars:
            if wvars[0] in used_w:
                return False  # same index in two dims: not rectangular
            used_w.add(wvars[0])
            if wsub.coeff(wvars[0]) != 1:
                return False
            w_res = wsub - LinearExpr.variable(wvars[0])
        if rvars:
            if rsub.coeff(rvars[0]) != 1:
                return False
            r_res = rsub - LinearExpr.variable(rvars[0])

        # interval endpoints: residue + loop range (a missing index is a
        # degenerate one-point interval)
        def interval(res, var, loops):
            if var is None:
                return res, res
            li = loops[var]
            lo = linearize(li.start, params)
            hi = linearize(li.end, params)
            if lo is None or hi is None or (li.step is not None):
                return None, None
            return res + lo, res + hi

        w_lo, w_hi = interval(w_res, wvars[0] if wvars else None, w_inner)
        r_lo, r_hi = interval(r_res, rvars[0] if rvars else None, r_inner)
        if w_lo is None or r_lo is None:
            return False
        lo_gap = r_lo - w_lo      # must be ≥ 0
        hi_gap = w_hi - r_hi      # must be ≥ 0
        if not _provable_nonneg(lo_gap, positive) \
                or not _provable_nonneg(hi_gap, positive):
            return False
    return True


def _range_encloses(w: LoopInfo, r: LoopInfo,
                    params: Mapping[str, int] | None) -> bool:
    """True if loop range of ``w`` provably contains that of ``r``."""
    if (w.step is not None) or (r.step is not None):
        # non-unit steps touch strided element sets: require identical loops
        if (w.step is None) != (r.step is None):
            return False
        if w.step is not None and not exprs_equal(w.step, r.step, params):
            return False
        return (exprs_equal(w.start, r.start, params)
                and exprs_equal(w.end, r.end, params))
    wl, rl = linearize(w.start, params), linearize(r.start, params)
    wu, ru = linearize(w.end, params), linearize(r.end, params)
    if None in (wl, rl, wu, ru):
        return (exprs_equal(w.start, r.start, params)
                and exprs_equal(w.end, r.end, params))
    lo_ok = (wl == rl) or ((wl - rl).is_constant and (wl - rl).const <= 0)
    hi_ok = (wu == ru) or ((wu - ru).is_constant and (wu - ru).const >= 0)
    return lo_ok and hi_ok


def _affine_interval(ref: Ref, params: Mapping[str, int] | None):
    """1-D written/read interval (lo, hi) as LinearExprs, or None.

    The subscript must be affine in at most one inner-loop index with unit
    coefficient; the loop must have unit stride and affine bounds.
    """
    if len(ref.subscripts) != 1:
        return None
    le = linearize(ref.subscripts[0], params)
    if le is None:
        return None
    inner = {li.var: li for li in ref.loops[1:]}
    ivars = [v for v in le.variables() if v in inner]
    if not ivars:
        return le, le
    if len(ivars) > 1 or le.coeff(ivars[0]) != 1:
        return None
    from repro.analysis.expr import LinearExpr

    li = inner[ivars[0]]
    if li.step is not None:
        return None
    lo = linearize(li.start, params)
    hi = linearize(li.end, params)
    if lo is None or hi is None:
        return None
    res = le - LinearExpr.variable(ivars[0])
    return res + lo, res + hi


def _union_covers_read(writes: list[Ref], read: Ref, outer: F.DoLoop,
                       params: Mapping[str, int] | None,
                       positive: frozenset[str] = frozenset()) -> bool:
    """Does the union of several unconditional 1-D writes cover the read?

    Handles the classic boundary+interior pattern (``w(1)``, ``w(m)``, and
    ``w(2:m-1)``): intervals are chained by constant gaps and the read
    interval must sit inside the merged span.
    """
    read_iv = _affine_interval(read, params)
    if read_iv is None:
        return False
    intervals = []
    for wr in writes:
        if wr.conditional:
            continue
        iv = _affine_interval(wr, params)
        if iv is not None:
            intervals.append(iv)
    if not intervals:
        return False

    def const_diff(a, b):
        d = a - b
        return d.const if d.is_constant else None

    # Greedy chaining from the read's lower end: repeatedly absorb any
    # interval that starts within one element of the covered frontier.
    # Comparisons against the evolving frontier keep the symbolic
    # differences constant in the boundary+interior pattern even when the
    # intervals themselves are not mutually comparable.
    # Invariant: cells [r_lo, frontier] are covered by absorbed writes.
    # Absorbing an interval whose lo is within one of the frontier and
    # resetting the frontier to its hi keeps the invariant even when hi
    # "regresses" symbolically (the claim only shrinks), which makes the
    # boundary+interior pattern work for every runtime extent.
    r_lo, r_hi = read_iv
    frontier = r_lo - 1
    remaining = list(intervals)
    progress = True
    while progress:
        if _provable_nonneg(frontier - r_hi, positive):
            return True
        progress = False
        for iv in list(remaining):
            lo, hi = iv
            gap = const_diff(lo, frontier)
            if gap is None or gap > 1:
                continue
            frontier = hi
            remaining.remove(iv)
            progress = True
            break
    return _provable_nonneg(frontier - r_hi, positive)


def _positive_symbols(symtab: Optional[SymbolTable]) -> frozenset[str]:
    """Names provably ≥ 1: variables used as declared array extents."""
    if symtab is None:
        return frozenset()
    out: set[str] = set()
    for sym in symtab.symbols.values():
        for b in sym.dims:
            if b.upper is not None and isinstance(b.upper, F.Var):
                out.add(b.upper.name)
    return frozenset(out)


def analyze_array(loop: F.DoLoop, name: str,
                  unit: Optional[F.ProgramUnit] = None,
                  symtab: Optional[SymbolTable] = None,
                  params: Mapping[str, int] | None = None) -> PrivatizationResult:
    """Decide array privatizability of ``name`` in ``loop``."""
    rc = RefCollector()
    rc.collect(loop.body, (LoopInfo.of(loop),))
    if rc.has_goto:
        return PrivatizationResult(name, False, True, reason="goto in loop")
    refs = [r for r in rc.refs if r.name == name]
    if any(r.in_call for r in refs):
        return PrivatizationResult(name, False, True,
                                   reason="passed to a call")
    writes = [r for r in refs if r.is_write]
    reads = [r for r in refs if not r.is_write]
    if not writes:
        return PrivatizationResult(name, False, True, reason="read-only")

    positive = _positive_symbols(symtab)
    order = {id(r): i for i, r in enumerate(rc.refs)}
    for rd in reads:
        earlier = [wr for wr in writes if order[id(wr)] < order[id(rd)]]
        covered = any(_write_covers_read(wr, rd, loop, params, positive)
                      for wr in earlier)
        if not covered:
            covered = _union_covers_read(earlier, rd, loop, params, positive)
        if not covered:
            return PrivatizationResult(
                name, False, True,
                reason=f"read not covered by an earlier write in the iteration")
    needs_lv = _live_after(loop, name, unit, symtab)
    return PrivatizationResult(name, True, True, needs_last_value=needs_lv)


def find_privatizable(loop: F.DoLoop,
                      unit: Optional[F.ProgramUnit] = None,
                      symtab: Optional[SymbolTable] = None,
                      params: Mapping[str, int] | None = None,
                      arrays: bool = True) -> list[PrivatizationResult]:
    """All privatizable variables of ``loop`` (scalars, optionally arrays)."""
    rc = RefCollector()
    rc.collect(loop.body, (LoopInfo.of(loop),))
    names_scalar: set[str] = set()
    names_array: set[str] = set()
    inner_vars = {s.var for s in F.stmts_walk(loop.body)
                  if isinstance(s, F.DoLoop)}
    for r in rc.refs:
        if r.name == loop.var or r.name in inner_vars:
            continue
        if r.is_scalar:
            names_scalar.add(r.name)
        else:
            names_array.add(r.name)
    out: list[PrivatizationResult] = []
    for n in sorted(names_scalar - names_array):
        res = analyze_scalar(loop, n, unit, symtab)
        if res.privatizable:
            out.append(res)
    if arrays:
        for n in sorted(names_array):
            res = analyze_array(loop, n, unit, symtab, params)
            if res.privatizable:
                out.append(res)
    # inner loop index variables are trivially private
    for v in sorted(inner_vars):
        out.append(PrivatizationResult(v, True, needs_last_value=False))
    return out
