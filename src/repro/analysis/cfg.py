"""Control-flow graph construction and dominators.

Most analyses in this package walk the structured AST directly; the CFG
exists for the GOTO-bearing code the Perfect suite is full of — it lets
the front of the pipeline ask "is this tangle reducible / single-exit?"
before the structured analyses bail out conservatively.

Basic blocks are maximal straight-line statement runs of a *flat*
statement list (structured statements — DO, block IF — are treated as
single super-node statements whose internals the structured analyses
handle; GOTO targets and labels split blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fortran import ast_nodes as F


@dataclass
class BasicBlock:
    """A maximal single-entry straight-line run of statements."""

    index: int
    stmts: list[F.Stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def label(self) -> Optional[int]:
        for s in self.stmts:
            if s.label is not None:
                return s.label
        return None


ENTRY = 0


@dataclass
class CFG:
    """Control-flow graph of one statement region."""

    blocks: list[BasicBlock] = field(default_factory=list)
    exit_index: int = -1

    def block_of(self, stmt: F.Stmt) -> Optional[BasicBlock]:
        for b in self.blocks:
            if any(s is stmt for s in b.stmts):
                return b
        return None

    # -- dominators ---------------------------------------------------------

    def dominators(self) -> dict[int, set[int]]:
        """Classic iterative dominator sets (entry = block 0)."""
        if not self.blocks:
            return {}
        all_ids = {b.index for b in self.blocks}
        dom: dict[int, set[int]] = {b.index: set(all_ids) for b in self.blocks}
        dom[ENTRY] = {ENTRY}
        changed = True
        while changed:
            changed = False
            for b in self.blocks:
                if b.index == ENTRY:
                    continue
                preds = [dom[p] for p in b.preds if p in dom]
                new = set.intersection(*preds) if preds else set()
                new |= {b.index}
                if new != dom[b.index]:
                    dom[b.index] = new
                    changed = True
        return dom

    def back_edges(self) -> list[tuple[int, int]]:
        """(tail, head) edges where head dominates tail — natural loops."""
        dom = self.dominators()
        out = []
        for b in self.blocks:
            for s in b.succs:
                if s in dom.get(b.index, ()):
                    out.append((b.index, s))
        return out

    def is_reducible(self) -> bool:
        """Every cycle must be entered through its (dominating) header."""
        dom = self.dominators()
        back = set(self.back_edges())
        # collapse natural loops; any remaining cycle → irreducible.
        # For the modest graphs here, a simple check suffices: every
        # retreating edge (by DFS numbering) must be a back edge.
        order: dict[int, int] = {}
        visited: set[int] = set()

        def dfs(i: int) -> None:
            visited.add(i)
            order[i] = len(order)
            for s in self.blocks[i].succs:
                if s not in visited:
                    dfs(s)

        if self.blocks:
            dfs(ENTRY)
        for b in self.blocks:
            if b.index not in visited:
                continue
            for s in b.succs:
                if s in order and order[s] <= order[b.index]:
                    if (b.index, s) not in back:
                        return False
        return True


def _is_terminator(s: F.Stmt) -> bool:
    return isinstance(s, (F.Goto, F.ComputedGoto, F.ReturnStmt, F.StopStmt))


def build_cfg(stmts: list[F.Stmt]) -> CFG:
    """Build the CFG of a flat statement list (labels + GOTOs resolved)."""
    cfg = CFG()
    if not stmts:
        cfg.blocks = [BasicBlock(0)]
        cfg.exit_index = 0
        return cfg

    # block leaders: first stmt, labeled stmts, stmts after terminators
    leaders: set[int] = {0}
    for i, s in enumerate(stmts):
        if s.label is not None:
            leaders.add(i)
        if _is_terminator(s) or isinstance(s, (F.IfBlock, F.LogicalIf)):
            if i + 1 < len(stmts):
                leaders.add(i + 1)

    starts = sorted(leaders)
    block_of_stmt: dict[int, int] = {}
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else len(stmts)
        blk = BasicBlock(bi, stmts[start:end])
        cfg.blocks.append(blk)
        for j in range(start, end):
            block_of_stmt[j] = bi

    exit_block = BasicBlock(len(cfg.blocks))
    cfg.blocks.append(exit_block)
    cfg.exit_index = exit_block.index

    label_to_block: dict[int, int] = {}
    for i, s in enumerate(stmts):
        if s.label is not None:
            label_to_block[s.label] = block_of_stmt[i]

    def link(a: int, b: int) -> None:
        if b not in cfg.blocks[a].succs:
            cfg.blocks[a].succs.append(b)
            cfg.blocks[b].preds.append(a)

    for blk in cfg.blocks[:-1]:
        last = blk.stmts[-1]
        fall = blk.index + 1 if blk.index + 1 < exit_block.index \
            else exit_block.index
        if isinstance(last, F.Goto):
            link(blk.index, label_to_block.get(last.target,
                                               exit_block.index))
        elif isinstance(last, F.ComputedGoto):
            for t in last.targets:
                link(blk.index, label_to_block.get(t, exit_block.index))
            link(blk.index, fall)
        elif isinstance(last, (F.ReturnStmt, F.StopStmt)):
            link(blk.index, exit_block.index)
        elif isinstance(last, F.LogicalIf):
            if isinstance(last.stmt, F.Goto):
                link(blk.index, label_to_block.get(last.stmt.target,
                                                   exit_block.index))
            link(blk.index, fall)
        else:
            link(blk.index, fall)
    return cfg
