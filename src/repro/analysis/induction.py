"""Induction variable recognition, including generalized IVs (paper §4.1.4).

Three kinds are recognized for a loop nest:

- **basic**: ``v = v + k`` with ``k`` loop-invariant — an arithmetic
  progression; closed form ``v0 + k * (trip index)``.
- **geometric** (GIV type 1): ``v = v * k`` — a geometric progression;
  closed form ``v0 * k ** (trip index)``.  Strictly monotonic when
  ``v0 > 0 and k > 1``.
- **polynomial** (GIV type 2): ``v = v + k`` sitting in an inner loop of a
  *triangular* nest (inner bound depends on the outer index); the values
  form no arithmetic progression in the outer index, but a closed form in
  all the loop indices exists (e.g. ``k0 + (i-1)*i/2 + j`` for
  ``do i / do j = 1, i``).

The paper's point (OCEAN, TRFD) is that replacing GIV uses with closed
forms — or simply knowing that the GIV is strictly monotonic, hence array
writes through it never collide — removes the dependence cycle and lets
the loop run parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.expr import const_value, linearize, simplify
from repro.fortran import ast_nodes as F


@dataclass
class InductionVar:
    """One recognized induction variable in a loop."""

    name: str
    kind: str                 # 'basic' | 'geometric' | 'polynomial'
    step: F.Expr              # increment (basic/polynomial) or factor
    update: F.Assign          # the update statement
    closed_form: Optional[F.Expr] = None  # value *after* the update, in loop indices
    strictly_monotonic: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IV {self.name} {self.kind} monotonic={self.strictly_monotonic}>"


def _is_var(e: F.Expr, name: str) -> bool:
    return isinstance(e, F.Var) and e.name == name


def _match_update(stmt: F.Stmt) -> Optional[tuple[str, str, F.Expr]]:
    """Match ``v = v + k`` / ``v = k + v`` / ``v = v * k`` / ``v = k * v``.

    Returns (name, op, step) or None.
    """
    if not isinstance(stmt, F.Assign) or not isinstance(stmt.target, F.Var):
        return None
    v = stmt.target.name
    e = stmt.value
    if isinstance(e, F.BinOp) and e.op in ("+", "*"):
        if _is_var(e.left, v):
            return (v, e.op, e.right)
        if _is_var(e.right, v):
            return (v, e.op, e.left)
    if isinstance(e, F.BinOp) and e.op == "-" and _is_var(e.left, v):
        return (v, "+", F.UnOp("-", e.right))
    return None


def _invariant(e: F.Expr, loop_vars: set[str], written: set[str]) -> bool:
    """Loop-invariant: mentions no loop index and nothing written in the nest."""
    for n in e.walk():
        if isinstance(n, F.Var) and (n.name in loop_vars or n.name in written):
            return False
        if isinstance(n, (F.FuncCall, F.Apply, F.ArrayRef)):
            return False
    return True


def _count_writes(stmts: list[F.Stmt], name: str) -> int:
    count = 0
    for s in F.stmts_walk(stmts):
        if isinstance(s, F.Assign) and isinstance(s.target, F.Var) \
                and s.target.name == name:
            count += 1
        elif isinstance(s, F.CallStmt):
            for a in s.args:
                if isinstance(a, F.Var) and a.name == name:
                    count += 1  # conservative
        elif isinstance(s, F.DoLoop) and s.var == name:
            count += 1
        elif isinstance(s, F.ReadStmt):
            for a in s.items:
                if isinstance(a, F.Var) and a.name == name:
                    count += 1
    return count


def _is_unconditional_in(stmts: list[F.Stmt], target: F.Stmt,
                         inner_loop_path: list[F.DoLoop]) -> bool:
    """True if ``target`` executes exactly once per innermost-loop iteration.

    ``inner_loop_path`` collects DO loops between the analyzed loop body and
    the statement (the statement may live in nested loops — that is the
    triangular GIV case)."""
    for s in stmts:
        if s is target:
            return True
        if isinstance(s, F.DoLoop):
            if _is_unconditional_in(s.body, target, inner_loop_path):
                inner_loop_path.insert(0, s)
                return True
        elif isinstance(s, F.IfBlock):
            for _, body in s.arms:
                if _find(body, target):
                    return False  # conditional update: not a clean IV
        elif isinstance(s, F.LogicalIf):
            if s.stmt is target:
                return False
    return False


def _find(stmts: list[F.Stmt], target: F.Stmt) -> bool:
    for s in F.stmts_walk(stmts):
        if s is target:
            return True
    return False


def find_induction_variables(loop: F.DoLoop,
                             params: dict[str, int] | None = None
                             ) -> list[InductionVar]:
    """Find induction variables of ``loop`` (updates anywhere in its nest).

    Recognized updates must be the *only* write of the variable in the
    nest and must execute unconditionally.
    """
    from repro.analysis.refs import written_names

    written = written_names(loop.body)
    loop_vars = {loop.var}
    for s in F.stmts_walk(loop.body):
        if isinstance(s, F.DoLoop):
            loop_vars.add(s.var)

    out: list[InductionVar] = []
    for s in F.stmts_walk(loop.body):
        m = _match_update(s) if isinstance(s, F.Assign) else None
        if m is None:
            continue
        name, op, step = m
        if name in loop_vars:
            continue
        if _count_writes(loop.body, name) != 1:
            continue
        if not _invariant(step, loop_vars, written - {name}):
            continue
        path: list[F.DoLoop] = []
        if not _is_unconditional_in(loop.body, s, path):
            continue
        iv = _classify(loop, name, op, step, s, path, params or {})
        if iv is not None:
            out.append(iv)
    return out


def _classify(loop: F.DoLoop, name: str, op: str, step: F.Expr,
              update: F.Assign, inner_path: list[F.DoLoop],
              params: dict[str, int]) -> Optional[InductionVar]:
    step_val = const_value(step)
    if op == "*":
        # Geometric GIV.  Monotonicity would additionally require v0 > 0,
        # which is not visible locally, so it stays False here; the
        # restructurer upgrades it when interprocedural constant
        # propagation pins the initial value down.
        closed = _geometric_closed_form(loop, name, step, inner_path)
        return InductionVar(name, "geometric", step, update,
                            closed_form=closed, strictly_monotonic=False)
    # additive
    if not inner_path:
        # basic IV in the analyzed loop: v_after = v0 + step * (i - lb + 1) / incr
        closed = _basic_closed_form(loop, name, step)
        mono = step_val is not None and step_val != 0
        return InductionVar(name, "basic", step, update,
                            closed_form=closed,
                            strictly_monotonic=bool(mono))
    # additive in nested loops: polynomial (triangular) GIV
    closed = _polynomial_closed_form(loop, inner_path, name, step, params)
    mono = step_val is not None and step_val > 0
    return InductionVar(name, "polynomial", step, update,
                        closed_form=closed, strictly_monotonic=bool(mono))


def _trip_index(loop: F.DoLoop) -> Optional[F.Expr]:
    """(i - lb)/step + 1 as an AST expression; None for non-unit steps."""
    if loop.step is not None and const_value(loop.step) != 1:
        return None
    return simplify(F.BinOp("-", F.Var(loop.var),
                            F.BinOp("-", loop.start, F.IntLit(1))))


def _basic_closed_form(loop: F.DoLoop, name: str, step: F.Expr) -> Optional[F.Expr]:
    t = _trip_index(loop)
    if t is None:
        return None
    # value after the update in iteration i: v0 + step * trip(i)
    return simplify(F.BinOp("+", F.Var(name + "0"),
                            F.BinOp("*", step, t)))


def _geometric_closed_form(loop: F.DoLoop, name: str, step: F.Expr,
                           inner_path: list[F.DoLoop]) -> Optional[F.Expr]:
    if inner_path:
        return None
    t = _trip_index(loop)
    if t is None:
        return None
    return F.BinOp("*", F.Var(name + "0"), F.BinOp("**", step, t))


def _polynomial_closed_form(outer: F.DoLoop, inner_path: list[F.DoLoop],
                            name: str, step: F.Expr,
                            params: dict[str, int]) -> Optional[F.Expr]:
    """Closed form for ``v = v + step`` in a triangular 2-deep nest.

    Handles ``do i = 1, n`` / ``do j = 1, a*i + b``: after the update in
    iteration (i, j)::

        v = v0 + step * ( Σ_{i'=1}^{i-1} (a*i' + b) + j )
          = v0 + step * ( a*(i-1)*i/2 + b*(i-1) + j )

    Rectangular inner bounds fall out as the a = 0 case.
    """
    if len(inner_path) != 1:
        return None
    inner = inner_path[0]
    if const_value(outer.start) != 1 or const_value(inner.start) != 1:
        return None
    if outer.step is not None and const_value(outer.step) != 1:
        return None
    if inner.step is not None and const_value(inner.step) != 1:
        return None
    from repro.analysis.expr import LinearExpr

    ub = linearize(inner.end, params)
    if ub is None:
        return None
    a = ub.coeff(outer.var)
    # symbolic remainder: the inner bound minus its a*i term
    rest = ub - LinearExpr.variable(outer.var, a)
    if rest.depends_on({outer.var, inner.var}):
        return None
    i = F.Var(outer.var)
    j = F.Var(inner.var)
    im1 = F.BinOp("-", i, F.IntLit(1))
    tri = F.BinOp("/", F.BinOp("*", im1, i), F.IntLit(2))
    total = F.BinOp("+", F.BinOp("*", F.IntLit(a), tri)
                    if a != 1 else tri,
                    F.BinOp("*", rest.to_ast(), im1))
    if a == 0:
        total = F.BinOp("*", rest.to_ast(), im1)
    total = F.BinOp("+", total, j)
    return simplify(F.BinOp("+", F.Var(name + "0"),
                            F.BinOp("*", step, total)))
