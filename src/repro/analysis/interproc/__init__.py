"""Interprocedural analysis (paper §4.1.1).

- :mod:`repro.analysis.interproc.callgraph` — the call graph of a source
  file (direct calls; recursion detected and flagged).
- :mod:`repro.analysis.interproc.summaries` — MOD/REF summary sets per
  routine: which dummy arguments and COMMON variables each routine (and its
  callees, transitively) may read or write.
- :mod:`repro.analysis.interproc.constprop` — demand-driven propagation of
  integer constants from call sites into callees (the paper propagated
  "just the object needed" rather than running a whole-program pass).
"""

from repro.analysis.interproc.callgraph import CallGraph, build_call_graph
from repro.analysis.interproc.summaries import RoutineSummary, summarize_source_file
from repro.analysis.interproc.constprop import propagate_constants

__all__ = [
    "CallGraph",
    "build_call_graph",
    "RoutineSummary",
    "summarize_source_file",
    "propagate_constants",
]
