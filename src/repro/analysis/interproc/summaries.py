"""MOD/REF interprocedural summaries (paper §4.1.1, "summary information").

For every routine we compute, transitively through its callees:

- ``ref_args`` / ``mod_args``: positions of dummy arguments that may be
  read / written;
- ``ref_common`` / ``mod_common``: COMMON variables (block, name) that may
  be read / written.

Unknown callees (externals) force the worst case on the arguments passed
to them.  The summaries provide the *effects oracle* consumed by the
reference collector, letting loops containing calls still be analyzed —
"the dependences within a subroutine which prevented it from being called
from a DOALL loop" (§4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.interproc.callgraph import CallGraph, build_call_graph
from repro.analysis.refs import collect_refs
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable, build_symbol_table


@dataclass
class RoutineSummary:
    """Transitive MOD/REF effect summary of one routine."""

    name: str
    arg_names: list[str] = field(default_factory=list)
    ref_args: set[int] = field(default_factory=set)
    mod_args: set[int] = field(default_factory=set)
    ref_common: set[tuple[str, str]] = field(default_factory=set)
    mod_common: set[tuple[str, str]] = field(default_factory=set)
    unknown: bool = False  # calls something we cannot see

    def effects_on_call(self, args: list[F.Expr]
                        ) -> tuple[set[str], set[str]]:
        """(ref names, mod names) among the *actual* arguments of a call."""
        refs: set[str] = set()
        mods: set[str] = set()
        for pos, a in enumerate(args):
            name = None
            if isinstance(a, F.Var):
                name = a.name
            elif isinstance(a, (F.ArrayRef, F.Apply)):
                name = a.name
            if name is None:
                continue
            if self.unknown or pos in self.ref_args:
                refs.add(name)
            if self.unknown or pos in self.mod_args:
                mods.add(name)
        return refs, mods


def _unit_local_effects(unit: F.ProgramUnit, st: SymbolTable,
                        summary: RoutineSummary) -> None:
    """Effects of the unit's own statements (calls handled separately)."""
    arg_pos = {a: i for i, a in enumerate(unit.args)}
    # CALL statements are summarized by _propagate_call; suppress the
    # collector's conservative both-read-and-write handling here.
    no_call_effects = lambda call: (set(), set())
    for r in collect_refs(unit.body, effects=no_call_effects):
        sym = st.lookup(r.name)
        if r.name in arg_pos:
            if r.is_write:
                summary.mod_args.add(arg_pos[r.name])
            else:
                summary.ref_args.add(arg_pos[r.name])
        elif sym is not None and sym.common_block is not None:
            key = (sym.common_block, r.name)
            if r.is_write:
                summary.mod_common.add(key)
            else:
                summary.ref_common.add(key)


def _propagate_call(site: F.CallStmt, caller_unit: F.ProgramUnit,
                    caller_st: SymbolTable, caller: RoutineSummary,
                    callee: RoutineSummary | None) -> None:
    arg_pos = {a: i for i, a in enumerate(caller_unit.args)}
    for pos, a in enumerate(site.args):
        name = None
        if isinstance(a, F.Var):
            name = a.name
        elif isinstance(a, (F.ArrayRef, F.Apply)):
            name = a.name
        if name is None:
            continue
        is_ref = callee is None or callee.unknown or pos in callee.ref_args
        is_mod = callee is None or callee.unknown or pos in callee.mod_args
        sym = caller_st.lookup(name)
        if name in arg_pos:
            if is_ref:
                caller.ref_args.add(arg_pos[name])
            if is_mod:
                caller.mod_args.add(arg_pos[name])
        elif sym is not None and sym.common_block is not None:
            key = (sym.common_block, name)
            if is_ref:
                caller.ref_common.add(key)
            if is_mod:
                caller.mod_common.add(key)
    if callee is not None:
        caller.ref_common |= callee.ref_common
        caller.mod_common |= callee.mod_common
        caller.unknown |= callee.unknown
    else:
        caller.unknown = True


def summarize_source_file(sf: F.SourceFile,
                          graph: CallGraph | None = None
                          ) -> dict[str, RoutineSummary]:
    """Compute transitive MOD/REF summaries for every unit of ``sf``.

    Call cycles (recursion) are handled by iterating to a fixed point.
    """
    graph = graph or build_call_graph(sf)
    units = {u.name: u for u in sf.units}
    tables = {u.name: build_symbol_table(u) for u in sf.units}
    summaries = {u.name: RoutineSummary(u.name, list(u.args))
                 for u in sf.units}

    for name, s in summaries.items():
        _unit_local_effects(units[name], tables[name], s)

    changed = True
    rounds = 0
    while changed and rounds < len(summaries) + 2:
        changed = False
        rounds += 1
        for name in graph.topological():
            s = summaries[name]
            before = (frozenset(s.ref_args), frozenset(s.mod_args),
                      frozenset(s.ref_common), frozenset(s.mod_common),
                      s.unknown)
            for node in F.stmts_walk(units[name].body):
                if isinstance(node, F.CallStmt):
                    callee = summaries.get(node.name)
                    _propagate_call(node, units[name], tables[name], s, callee)
                elif isinstance(node, F.FuncCall) and not node.intrinsic:
                    callee = summaries.get(node.name)
                    site = F.CallStmt(name=node.name, args=node.args)
                    _propagate_call(site, units[name], tables[name], s, callee)
            after = (frozenset(s.ref_args), frozenset(s.mod_args),
                     frozenset(s.ref_common), frozenset(s.mod_common),
                     s.unknown)
            changed |= before != after
    return summaries


def effects_oracle(summaries: dict[str, RoutineSummary]):
    """Build the callable consumed by :class:`RefCollector`.

    Given a call-site *name*, returns a function of no use by itself: the
    collector calls it with the routine name only, so the oracle answers in
    terms of the callee's dummy positions translated by the caller at the
    site.  Because the collector passes only the name, we return the pair
    of *sets of argument positions* encoded as a closure per call.
    """
    def oracle_for_call(stmt: F.CallStmt) -> tuple[set[str], set[str]] | None:
        s = summaries.get(stmt.name)
        if s is None:
            return None
        return s.effects_on_call(stmt.args)

    return oracle_for_call
