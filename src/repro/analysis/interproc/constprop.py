"""Demand-driven interprocedural constant propagation (paper §4.1.1).

The paper: *"Rather than attempt to propagate all constants ... we would
proceed with a transformation technique until some constant or relation was
needed, then do the propagation for just the object needed."*

:func:`propagate_constants` answers exactly that query: given a routine and
a variable name, find the integer constant it is guaranteed to hold on
entry, by inspecting every call site in the file.  A value is returned only
when **all** call sites agree and pass a compile-time constant (or a
variable that itself resolves recursively).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.expr import const_value
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import build_symbol_table


def _entry_constant(sf: F.SourceFile, routine: str, var: str,
                    seen: set[tuple[str, str]]) -> Optional[int]:
    if (routine, var) in seen:
        return None
    seen.add((routine, var))

    unit = None
    for u in sf.units:
        if u.name == routine:
            unit = u
            break
    if unit is None:
        return None

    st = build_symbol_table(unit)
    sym = st.lookup(var)
    if sym is not None and sym.is_parameter:
        v = const_value(sym.param_value)
        return int(v) if isinstance(v, (int, bool)) else None

    if var not in unit.args:
        # local: constant only if assigned once at unit top level
        return _local_constant(sf, unit, var, seen)

    pos = unit.args.index(var)
    values: set[int] = set()
    for caller in sf.units:
        build_symbol_table(caller)
        for s in F.stmts_walk(caller.body):
            if isinstance(s, F.CallStmt) and s.name == routine:
                if pos >= len(s.args):
                    return None
                a = s.args[pos]
                v = const_value(a)
                if v is None and isinstance(a, F.Var):
                    v = _entry_constant(sf, caller.name, a.name, seen)
                if v is None or not isinstance(v, (int, bool)):
                    return None
                values.add(int(v))
    if len(values) == 1:
        return values.pop()
    return None


def _local_constant(sf: F.SourceFile, unit: F.ProgramUnit, var: str,
                    seen: set[tuple[str, str]]) -> Optional[int]:
    """Constant of a local assigned exactly once, at unit top level."""
    value: Optional[int] = None
    count = 0
    for s in F.stmts_walk(unit.body):
        if isinstance(s, F.Assign) and isinstance(s.target, F.Var) \
                and s.target.name == var:
            count += 1
            v = const_value(s.value)
            if v is None and isinstance(s.value, F.Var):
                v = _entry_constant(sf, unit.name, s.value.name, seen)
            if isinstance(v, (int, bool)):
                value = int(v)
            else:
                return None
        elif isinstance(s, F.CallStmt):
            for pos, a in enumerate(s.args):
                if isinstance(a, F.Var) and a.name == var:
                    if _call_may_modify(sf, s.name, pos):
                        return None
        elif isinstance(s, F.ReadStmt):
            for a in s.items:
                if isinstance(a, F.Var) and a.name == var:
                    return None
        elif isinstance(s, F.DoLoop) and s.var == var:
            return None
    if count == 1:
        # ensure the single assignment is at top level (not inside a loop/if)
        for s in unit.body:
            if isinstance(s, F.Assign) and isinstance(s.target, F.Var) \
                    and s.target.name == var:
                return value
        return None
    return None


def _call_may_modify(sf: F.SourceFile, callee: str, pos: int) -> bool:
    """May a call to ``callee`` modify its argument at ``pos``?

    Uses the MOD/REF summaries (cached per source file); unknown callees
    answer True.
    """
    cache = getattr(sf, "_modref_cache", None)
    if cache is None:
        from repro.analysis.interproc.summaries import summarize_source_file

        cache = summarize_source_file(sf)
        sf._modref_cache = cache  # type: ignore[attr-defined]
    s = cache.get(callee)
    if s is None:
        return True
    return s.unknown or pos in s.mod_args


def propagate_constants(sf: F.SourceFile, routine: str,
                        names: list[str]) -> dict[str, int]:
    """Resolve each of ``names`` to an entry constant of ``routine`` if
    every call site in the file agrees; unresolvable names are omitted."""
    out: dict[str, int] = {}
    for n in names:
        v = _entry_constant(sf, routine, n, set())
        if v is not None:
            out[n] = v
    return out
