"""Call graph construction over a source file."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fortran import ast_nodes as F
from repro.fortran.intrinsics import is_intrinsic


@dataclass
class CallGraph:
    """Direct-call graph: unit name → callee names (defined or external)."""

    callees: dict[str, set[str]] = field(default_factory=dict)
    defined: set[str] = field(default_factory=set)

    def external_calls(self, name: str) -> set[str]:
        """Callees of ``name`` with no definition in the file."""
        return {c for c in self.callees.get(name, set())
                if c not in self.defined}

    def callers_of(self, name: str) -> set[str]:
        return {u for u, cs in self.callees.items() if name in cs}

    def topological(self) -> list[str]:
        """Callees-first order; members of call cycles keep file order."""
        order: list[str] = []
        temp: set[str] = set()
        done: set[str] = set()

        def visit(u: str) -> None:
            if u in done or u in temp or u not in self.defined:
                return
            temp.add(u)
            for c in sorted(self.callees.get(u, ())):
                visit(c)
            temp.discard(u)
            done.add(u)
            order.append(u)

        for u in self.callees:
            visit(u)
        return order

    def is_recursive(self, name: str) -> bool:
        """True if ``name`` can reach itself through calls."""
        seen: set[str] = set()
        stack = [c for c in self.callees.get(name, ())]
        while stack:
            c = stack.pop()
            if c == name:
                return True
            if c in seen:
                continue
            seen.add(c)
            stack.extend(self.callees.get(c, ()))
        return False


def _called_names(unit: F.ProgramUnit, arrays: set[str]) -> set[str]:
    out: set[str] = set()
    for s in F.stmts_walk(unit.body):
        if isinstance(s, F.CallStmt):
            out.add(s.name)
        for n in s.walk():
            if isinstance(n, F.FuncCall) and not n.intrinsic:
                out.add(n.name)
            elif isinstance(n, F.Apply) and n.name not in arrays \
                    and not is_intrinsic(n.name):
                out.add(n.name)
    return out


def build_call_graph(sf: F.SourceFile) -> CallGraph:
    """Build the call graph of ``sf`` (symbol tables are built as needed)."""
    from repro.fortran.symtab import build_symbol_table

    g = CallGraph()
    g.defined = {u.name for u in sf.units}
    for u in sf.units:
        st = build_symbol_table(u)  # resolves Apply nodes in place
        arrays = {sym.name for sym in st.arrays()}
        g.callees[u.name] = _called_names(u, arrays)
    return g
