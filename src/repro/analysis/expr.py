"""Affine expression algebra and AST-level simplification.

The dependence tests and most restructuring passes reason about *linear
(affine) forms*: ``c0 + c1*v1 + ... + ck*vk`` with integer coefficients over
symbolic variables (loop indices, bounds, parameters).  :class:`LinearExpr`
implements that algebra; :func:`linearize` converts an AST expression into a
LinearExpr when possible (returning ``None`` for non-affine expressions,
which makes callers conservative by construction).

:func:`simplify` is a constant-folding/identity-pruning rewrite over the
expression AST used by the transformation passes when they synthesize bound
expressions such as ``min(i + strip - 1, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.fortran import ast_nodes as F


@dataclass(frozen=True)
class LinearExpr:
    """An affine form: ``const + Σ coeffs[name] * name``.

    Immutable; arithmetic returns new instances.  Zero coefficients are
    pruned so equality is structural.
    """

    const: int = 0
    coeffs: tuple[tuple[str, int], ...] = ()

    # -- construction -----------------------------------------------------

    @staticmethod
    def constant(c: int) -> "LinearExpr":
        return LinearExpr(int(c), ())

    @staticmethod
    def variable(name: str, coeff: int = 1) -> "LinearExpr":
        if coeff == 0:
            return LinearExpr(0, ())
        return LinearExpr(0, ((name, int(coeff)),))

    @staticmethod
    def _make(const: int, coeffs: dict[str, int]) -> "LinearExpr":
        items = tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))
        return LinearExpr(int(const), items)

    # -- queries ----------------------------------------------------------

    def coeff(self, name: str) -> int:
        for n, c in self.coeffs:
            if n == name:
                return c
        return 0

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> set[str]:
        return {n for n, _ in self.coeffs}

    def depends_on(self, names: set[str] | frozenset[str]) -> bool:
        return any(n in names for n, _ in self.coeffs)

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: "LinearExpr | int") -> "LinearExpr":
        if isinstance(other, int):
            return LinearExpr(self.const + other, self.coeffs)
        d = dict(self.coeffs)
        for n, c in other.coeffs:
            d[n] = d.get(n, 0) + c
        return LinearExpr._make(self.const + other.const, d)

    def __sub__(self, other: "LinearExpr | int") -> "LinearExpr":
        if isinstance(other, int):
            return LinearExpr(self.const - other, self.coeffs)
        return self + other.scale(-1)

    def scale(self, k: int) -> "LinearExpr":
        if k == 0:
            return LinearExpr(0, ())
        return LinearExpr(self.const * k,
                          tuple((n, c * k) for n, c in self.coeffs))

    def __neg__(self) -> "LinearExpr":
        return self.scale(-1)

    def multiply(self, other: "LinearExpr") -> Optional["LinearExpr"]:
        """Product, only if one side is constant (stays affine)."""
        if other.is_constant:
            return self.scale(other.const)
        if self.is_constant:
            return other.scale(self.const)
        return None

    def substitute(self, env: Mapping[str, "LinearExpr"]) -> "LinearExpr":
        """Replace variables by affine forms."""
        out = LinearExpr.constant(self.const)
        for n, c in self.coeffs:
            if n in env:
                out = out + env[n].scale(c)
            else:
                out = out + LinearExpr.variable(n, c)
        return out

    def to_ast(self) -> F.Expr:
        """Render back to an expression AST."""
        terms: list[F.Expr] = []
        for n, c in self.coeffs:
            if c == 1:
                terms.append(F.Var(n))
            elif c == -1:
                terms.append(F.UnOp("-", F.Var(n)))
            else:
                terms.append(F.BinOp("*", F.IntLit(abs(c)), F.Var(n))
                             if c > 0 else
                             F.UnOp("-", F.BinOp("*", F.IntLit(-c), F.Var(n))))
        if self.const != 0 or not terms:
            terms.append(F.IntLit(self.const))
        expr = terms[0]
        for t in terms[1:]:
            if isinstance(t, F.UnOp) and t.op == "-":
                expr = F.BinOp("-", expr, t.operand)
            elif isinstance(t, F.IntLit) and t.value < 0:
                expr = F.BinOp("-", expr, F.IntLit(-t.value))
            else:
                expr = F.BinOp("+", expr, t)
        return expr

    def __str__(self) -> str:  # pragma: no cover - debug aid
        parts = [str(self.const)] if self.const or not self.coeffs else []
        for n, c in self.coeffs:
            parts.append(f"{c:+d}*{n}")
        return " ".join(parts) or "0"


def linearize(e: F.Expr,
              params: Mapping[str, int] | None = None) -> Optional[LinearExpr]:
    """Convert an AST expression to a LinearExpr, or None if non-affine.

    ``params`` supplies known integer constants (PARAMETER values) folded in.
    """
    params = params or {}

    def rec(x: F.Expr) -> Optional[LinearExpr]:
        if isinstance(x, F.IntLit):
            return LinearExpr.constant(x.value)
        if isinstance(x, F.Var):
            if x.name in params:
                return LinearExpr.constant(params[x.name])
            return LinearExpr.variable(x.name)
        if isinstance(x, F.UnOp):
            inner = rec(x.operand)
            if inner is None:
                return None
            if x.op == "-":
                return -inner
            if x.op == "+":
                return inner
            return None
        if isinstance(x, F.BinOp):
            l, r = rec(x.left), rec(x.right)
            if l is None or r is None:
                return None
            if x.op == "+":
                return l + r
            if x.op == "-":
                return l - r
            if x.op == "*":
                return l.multiply(r)
            if x.op == "/":
                # integer division only when exact & constant divisor
                if r.is_constant and r.const != 0:
                    if l.is_constant and l.const % r.const == 0:
                        return LinearExpr.constant(l.const // r.const)
                    if all(c % r.const == 0 for _, c in l.coeffs) \
                            and l.const % r.const == 0:
                        return LinearExpr._make(
                            l.const // r.const,
                            {n: c // r.const for n, c in l.coeffs})
                return None
            if x.op == "**":
                if r.is_constant and l.is_constant and 0 <= r.const <= 8:
                    return LinearExpr.constant(l.const ** r.const)
                return None
            return None
        return None

    return rec(e)


# ---------------------------------------------------------------------------
# AST simplification
# ---------------------------------------------------------------------------

def const_value(e: F.Expr) -> Optional[int | float | bool]:
    """Evaluate a constant expression, or None."""
    if isinstance(e, F.IntLit):
        return e.value
    if isinstance(e, F.RealLit):
        return e.value
    if isinstance(e, F.LogicalLit):
        return e.value
    if isinstance(e, F.UnOp):
        v = const_value(e.operand)
        if v is None:
            return None
        if e.op == "-":
            return -v
        if e.op == "+":
            return v
        if e.op == ".not.":
            return not v
        return None
    if isinstance(e, F.BinOp):
        l, r = const_value(e.left), const_value(e.right)
        if l is None or r is None:
            return None
        try:
            if e.op == "+":
                return l + r
            if e.op == "-":
                return l - r
            if e.op == "*":
                return l * r
            if e.op == "/":
                if isinstance(l, int) and isinstance(r, int):
                    if r == 0:
                        return None
                    return int(l / r)  # Fortran truncates toward zero
                return l / r if r != 0 else None
            if e.op == "**":
                return l ** r
            if e.op == ".lt.":
                return l < r
            if e.op == ".le.":
                return l <= r
            if e.op == ".eq.":
                return l == r
            if e.op == ".ne.":
                return l != r
            if e.op == ".gt.":
                return l > r
            if e.op == ".ge.":
                return l >= r
            if e.op == ".and.":
                return bool(l) and bool(r)
            if e.op == ".or.":
                return bool(l) or bool(r)
        except (OverflowError, ValueError, ZeroDivisionError):
            return None
    return None


def _lit(v: int | float | bool, like: F.Expr) -> F.Expr:
    if isinstance(v, bool):
        return F.LogicalLit(v)
    if isinstance(v, int):
        return F.IntLit(v)
    return F.RealLit(float(v))


def simplify(e: F.Expr) -> F.Expr:
    """Constant-fold and prune algebraic identities, recursively."""
    if isinstance(e, F.BinOp):
        left = simplify(e.left)
        right = simplify(e.right)
        e = F.BinOp(e.op, left, right)
        v = const_value(e)
        if v is not None:
            return _lit(v, e)
        lv, rv = const_value(left), const_value(right)
        if e.op == "+":
            if lv == 0:
                return right
            if rv == 0:
                return left
        elif e.op == "-":
            if rv == 0:
                return left
            if _same_var(left, right):
                return F.IntLit(0)
        elif e.op == "*":
            if lv == 1:
                return right
            if rv == 1:
                return left
            if lv == 0 or rv == 0:
                return F.IntLit(0)
        elif e.op == "/":
            if rv == 1:
                return left
        elif e.op == "**":
            if rv == 1:
                return left
            if rv == 0:
                return F.IntLit(1)
        return e
    if isinstance(e, F.UnOp):
        inner = simplify(e.operand)
        e = F.UnOp(e.op, inner)
        v = const_value(e)
        if v is not None:
            return _lit(v, e)
        if e.op == "-" and isinstance(inner, F.UnOp) and inner.op == "-":
            return inner.operand
        if e.op == "+":
            return inner
        return e
    if isinstance(e, (F.FuncCall, F.Apply)):
        args = [simplify(a) for a in e.args]
        if e.name in ("min", "max", "min0", "max0") and len(args) == 2:
            a, b = const_value(args[0]), const_value(args[1])
            if a is not None and b is not None:
                return _lit(min(a, b) if e.name.startswith("min") else max(a, b), e)
            # min(x, x) = x
            if _same_var(args[0], args[1]):
                return args[0]
        if isinstance(e, F.Apply):
            return F.Apply(e.name, args)
        return F.FuncCall(e.name, args, intrinsic=e.intrinsic)
    if isinstance(e, F.ArrayRef):
        return F.ArrayRef(e.name, [simplify(s) if not isinstance(s, F.RangeExpr)
                                   else _simplify_range(s) for s in e.subscripts])
    return e


def _simplify_range(r: F.RangeExpr) -> F.RangeExpr:
    return F.RangeExpr(
        simplify(r.lo) if r.lo is not None else None,
        simplify(r.hi) if r.hi is not None else None,
        simplify(r.stride) if r.stride is not None else None,
    )


def _same_var(a: F.Expr, b: F.Expr) -> bool:
    return isinstance(a, F.Var) and isinstance(b, F.Var) and a.name == b.name


def exprs_equal(a: F.Expr, b: F.Expr,
                params: Mapping[str, int] | None = None) -> bool:
    """Structural/affine equality of two expressions (conservative)."""
    la, lb = linearize(a, params), linearize(b, params)
    if la is not None and lb is not None:
        return la == lb
    return _struct_eq(a, b)


def _struct_eq(a: F.Expr, b: F.Expr) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, F.IntLit):
        return a.value == b.value
    if isinstance(a, F.RealLit):
        return a.value == b.value
    if isinstance(a, F.LogicalLit):
        return a.value == b.value
    if isinstance(a, F.StrLit):
        return a.value == b.value
    if isinstance(a, F.Var):
        return a.name == b.name
    if isinstance(a, F.BinOp):
        return a.op == b.op and _struct_eq(a.left, b.left) \
            and _struct_eq(a.right, b.right)
    if isinstance(a, F.UnOp):
        return a.op == b.op and _struct_eq(a.operand, b.operand)
    if isinstance(a, (F.FuncCall, F.Apply)):
        return a.name == b.name and len(a.args) == len(b.args) and all(
            _struct_eq(x, y) for x, y in zip(a.args, b.args))
    if isinstance(a, F.ArrayRef):
        return a.name == b.name and len(a.subscripts) == len(b.subscripts) \
            and all(_struct_eq(x, y) for x, y in zip(a.subscripts, b.subscripts))
    if isinstance(a, F.RangeExpr):
        def opt(x, y):
            if (x is None) != (y is None):
                return False
            return x is None or _struct_eq(x, y)
        return opt(a.lo, b.lo) and opt(a.hi, b.hi) and opt(a.stride, b.stride)
    return False
