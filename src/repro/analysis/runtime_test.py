"""Run-time dependence test synthesis (paper §4.1.5, OCEAN).

When a singly-dimensioned array is indexed by an expression like
``a(i + m*(j-1))`` with symbolic ``m``, compile-time tests cannot decide
independence: if the loop bounds satisfy ``1 ≤ i ≤ m`` the subscript is a
*linearized* 2-D access and iterations never collide, otherwise they may.

This module recognizes the linearized pattern and synthesizes the run-time
predicate under which the loop is parallel; the versioning transformation
emits a two-version loop (``IF (pred) parallel ELSE serial``).

Recognized pattern, for a nest ``do j / do i`` over a 1-D array ``a``::

    subscript = base + c_i * i + c_j * S * j      (c_i, c_j integer, S symbolic)

with ``i`` spanning ``[lo_i, hi_i]``.  The predicate is
``c_i * (hi_i - lo_i) < c_j * S`` — the inner index range fits inside one
"row", so distinct ``j`` never alias (integer sequence analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.expr import LinearExpr, linearize, simplify
from repro.analysis.refs import LoopInfo, Ref, RefCollector
from repro.fortran import ast_nodes as F


@dataclass
class RuntimeTest:
    """A synthesized run-time independence predicate for one loop."""

    loop: F.DoLoop
    array: str
    predicate: F.Expr            # parallel when this evaluates .true.
    description: str

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RuntimeTest on {self.array}>"


def _split_symbolic(e: F.Expr, nest_vars: list[str],
                    params: Mapping[str, int] | None
                    ) -> Optional[tuple[LinearExpr, dict[str, F.Expr]]]:
    """Linearize ``e`` allowing one level of ``sym * index`` products.

    Returns the affine form where such a product appears as a coefficient
    variable ``<sym>@<index>``, plus a map from those synthetic names to
    the symbolic stride AST.
    """
    strides: dict[str, F.Expr] = {}

    def rec(x: F.Expr) -> Optional[LinearExpr]:
        if isinstance(x, F.IntLit):
            return LinearExpr.constant(x.value)
        if isinstance(x, F.Var):
            if params and x.name in params:
                return LinearExpr.constant(params[x.name])
            return LinearExpr.variable(x.name)
        if isinstance(x, F.UnOp) and x.op in ("-", "+"):
            inner = rec(x.operand)
            if inner is None:
                return None
            return -inner if x.op == "-" else inner
        if isinstance(x, F.BinOp):
            if x.op in ("+", "-"):
                l, r = rec(x.left), rec(x.right)
                if l is None or r is None:
                    return None
                return l + r if x.op == "+" else l - r
            if x.op == "*":
                l, r = rec(x.left), rec(x.right)
                if l is not None and r is not None:
                    prod = l.multiply(r)
                    if prod is not None:
                        return prod
                    # symbolic stride × affine-in-one-index
                    return _sym_product(l, r)
                return None
        return None

    def _sym_product(l: LinearExpr, r: LinearExpr) -> Optional[LinearExpr]:
        # one side must be a pure symbolic invariant, the other a single
        # index variable (possibly shifted): sym * (a*v + b)
        def pure_sym(le: LinearExpr) -> Optional[str]:
            if le.const == 0 and len(le.coeffs) == 1 and le.coeffs[0][1] == 1 \
                    and le.coeffs[0][0] not in nest_vars:
                return le.coeffs[0][0]
            return None

        for sym_side, idx_side in ((l, r), (r, l)):
            sname = pure_sym(sym_side)
            if sname is None:
                continue
            idx_vars = [v for v in idx_side.variables() if v in nest_vars]
            if len(idx_vars) != 1 or len(idx_side.variables()) != 1:
                continue
            v = idx_vars[0]
            a = idx_side.coeff(v)
            b = idx_side.const
            key = f"{sname}@{v}"
            strides[key] = F.Var(sname)
            return (LinearExpr.variable(key, a)
                    + LinearExpr.variable(sname, b))
        return None

    le = rec(e)
    if le is None:
        return None
    return le, strides


def synthesize_runtime_test(loop: F.DoLoop,
                            params: Mapping[str, int] | None = None
                            ) -> Optional[RuntimeTest]:
    """Try to build a run-time independence test for ``loop``.

    ``loop`` is the candidate parallel loop (index ``j`` in the module
    docstring); its body may contain inner loops (index ``i``).
    """
    rc = RefCollector()
    rc.collect(loop.body, (LoopInfo.of(loop),))
    if rc.has_goto or rc.has_unknown_calls:
        return None

    nest_vars: list[str] = [loop.var]
    inner_loops: dict[str, LoopInfo] = {}
    for r in rc.refs:
        for li in r.loops:
            if li.var not in inner_loops:
                inner_loops[li.var] = li
                if li.var not in nest_vars:
                    nest_vars.append(li.var)

    # candidate arrays: 1-D refs written in the loop whose subscripts are
    # linearized (need the symbolic-product splitter)
    by_array: dict[str, list[Ref]] = {}
    for r in rc.refs:
        if r.subscripts and len(r.subscripts) == 1:
            by_array.setdefault(r.name, []).append(r)

    for name, refs in sorted(by_array.items()):
        if not any(r.is_write for r in refs):
            continue
        test = _test_for_array(loop, name, refs, nest_vars, inner_loops, params)
        if test is not None:
            return test
    return None


def _test_for_array(loop: F.DoLoop, name: str, refs: list[Ref],
                    nest_vars: list[str], inner_loops: dict[str, LoopInfo],
                    params: Mapping[str, int] | None) -> Optional[RuntimeTest]:
    forms = []
    stride_sym: Optional[str] = None
    inner_var: Optional[str] = None
    outer_coeff: Optional[int] = None
    for r in refs:
        got = _split_symbolic(r.subscripts[0], nest_vars, params)
        if got is None:
            return None
        le, strides = got
        keys = [k for k in le.variables() if "@" in k]
        if len(keys) != 1:
            return None
        key = keys[0]
        sym, idx = key.split("@")
        if idx != loop.var:
            return None  # stride must multiply the candidate parallel index
        if stride_sym is None:
            stride_sym = sym
        elif stride_sym != sym:
            return None
        c_outer = le.coeff(key)
        if outer_coeff is None:
            outer_coeff = c_outer
        elif outer_coeff != c_outer:
            return None
        ivars = [v for v in le.variables()
                 if v in nest_vars and v != loop.var]
        if len(ivars) > 1:
            return None
        if ivars:
            if inner_var is None:
                inner_var = ivars[0]
            elif inner_var != ivars[0]:
                return None
        forms.append(le)

    if stride_sym is None or outer_coeff is None or outer_coeff == 0:
        return None

    # inner index span: max over refs of |c_i| * (hi - lo) + |const spread|
    if inner_var is not None and inner_var in inner_loops:
        li = inner_loops[inner_var]
        lo_ast, hi_ast = li.start, li.end
    else:
        lo_ast = hi_ast = F.IntLit(0)

    max_ci = max(abs(le.coeff(inner_var)) for le in forms) if inner_var else 0
    consts = [le.const for le in forms]
    spread = max(consts) - min(consts) if consts else 0

    # predicate: max_ci*(hi - lo) + spread < |outer_coeff| * stride
    span = F.BinOp("+",
                   F.BinOp("*", F.IntLit(max_ci),
                           F.BinOp("-", hi_ast, lo_ast)),
                   F.IntLit(spread))
    rhs = F.BinOp("*", F.IntLit(abs(outer_coeff)), F.Var(stride_sym))
    pred = simplify(F.BinOp(".lt.", span, rhs))
    # also require a positive stride (a negative m would fold rows back)
    pred = F.BinOp(".and.", F.BinOp(".gt.", F.Var(stride_sym), F.IntLit(0)),
                   pred)
    return RuntimeTest(
        loop=loop, array=name, predicate=pred,
        description=(f"iterations of {loop.var} touch disjoint {name} rows "
                     f"when the inner span is below the row stride "
                     f"{stride_sym}"))
