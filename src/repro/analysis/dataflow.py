"""Structured data-flow helpers: definite assignment and liveness.

These walkers operate on the *structured* statement subset (assignments,
block/logical IFs, DO loops, calls).  The presence of GOTO makes the result
conservative (``unknown``), which in turn makes privatization and last-value
analyses bail out safely — matching the restructurer's behaviour on
spaghetti code.

Lattice for definite assignment of one variable within one iteration::

    NO < MAYBE < YES

``YES`` = assigned on every path before this point, ``MAYBE`` = on some
path, ``NO`` = on no path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from repro.fortran import ast_nodes as F


class Assigned(IntEnum):
    NO = 0
    MAYBE = 1
    YES = 2


def _join(a: Assigned, b: Assigned) -> Assigned:
    """Merge of two control-flow paths."""
    if a == b:
        return a
    return Assigned.MAYBE


@dataclass
class ScalarUsage:
    """Definite-assignment summary of one scalar in a statement region."""

    upward_exposed: bool = False   # read before any sure assignment
    assigned: Assigned = Assigned.NO
    read_anywhere: bool = False
    written_anywhere: bool = False
    in_call: bool = False          # passed to a CALL (unknown effect)
    saw_goto: bool = False

    @property
    def conservative(self) -> bool:
        return self.in_call or self.saw_goto


def _trips_at_least_once(loop: F.DoLoop) -> bool:
    """True when the loop provably executes ≥ 1 iteration.

    Holds for constant bounds with start ≤ end (positive step), and for the
    ubiquitous ``do i = 1, n`` only when n is a literal.
    """
    from repro.analysis.expr import const_value, linearize

    step = 1 if loop.step is None else const_value(loop.step)
    if step is None or step == 0:
        return False
    lo, hi = const_value(loop.start), const_value(loop.end)
    if lo is not None and hi is not None:
        return hi >= lo if step > 0 else hi <= lo
    # symbolic: identical expressions trip exactly once
    llo, lhi = linearize(loop.start), linearize(loop.end)
    if llo is not None and lhi is not None:
        diff = lhi - llo
        if diff.is_constant:
            return diff.const >= 0 if step > 0 else diff.const <= 0
    return False


def _expr_reads(e: F.Expr, name: str) -> bool:
    for n in e.walk():
        if isinstance(n, F.Var) and n.name == name:
            return True
    return False


def scalar_usage(stmts: list[F.Stmt], name: str) -> ScalarUsage:
    """Analyze reads/writes of scalar ``name`` through a statement region."""
    u = ScalarUsage()
    _walk_region(stmts, name, u)
    return u


def _walk_region(stmts: list[F.Stmt], name: str, u: ScalarUsage) -> None:
    for s in stmts:
        _walk_stmt(s, name, u)


def _note_read(u: ScalarUsage) -> None:
    u.read_anywhere = True
    if u.assigned != Assigned.YES:
        u.upward_exposed = True


def _walk_stmt(s: F.Stmt, name: str, u: ScalarUsage) -> None:
    if isinstance(s, F.Assign):
        if _expr_reads(s.value, name):
            _note_read(u)
        t = s.target
        if isinstance(t, (F.ArrayRef, F.Apply)):
            subs = t.subscripts if isinstance(t, F.ArrayRef) else t.args
            if any(_expr_reads(x, name) for x in subs):
                _note_read(u)
        if isinstance(t, F.Var) and t.name == name:
            u.assigned = Assigned.YES
            u.written_anywhere = True
        return
    if isinstance(s, F.DoLoop):
        for e in (s.start, s.end, s.step):
            if e is not None and _expr_reads(e, name):
                _note_read(u)
        if s.var == name:
            u.assigned = Assigned.YES
            u.written_anywhere = True
            # loop variable reads inside refer to the (assigned) index
        inner = ScalarUsage()
        inner.assigned = u.assigned
        _walk_region(s.body, name, inner)
        if inner.upward_exposed and u.assigned != Assigned.YES:
            u.upward_exposed = True
        u.read_anywhere |= inner.read_anywhere
        u.written_anywhere |= inner.written_anywhere
        u.in_call |= inner.in_call
        u.saw_goto |= inner.saw_goto
        if _trips_at_least_once(s):
            u.assigned = inner.assigned
        elif inner.written_anywhere and u.assigned != Assigned.YES:
            # body may execute zero times: sure defs degrade to MAYBE
            u.assigned = Assigned.MAYBE
        return
    if isinstance(s, F.IfBlock):
        if any(c is not None and _expr_reads(c, name) for c, _ in s.arms):
            _note_read(u)
        states = []
        any_read_exposed = False
        for cond, body in s.arms:
            inner = ScalarUsage()
            inner.assigned = u.assigned
            _walk_region(body, name, inner)
            states.append(inner.assigned)
            any_read_exposed |= inner.upward_exposed
            u.read_anywhere |= inner.read_anywhere
            u.written_anywhere |= inner.written_anywhere
            u.in_call |= inner.in_call
            u.saw_goto |= inner.saw_goto
        if not s.arms or s.arms[-1][0] is not None:
            states.append(u.assigned)  # fall-through when no ELSE
        merged = states[0]
        for st in states[1:]:
            merged = _join(merged, st)
        u.assigned = merged
        if any_read_exposed:
            u.upward_exposed = True
        return
    if isinstance(s, F.LogicalIf):
        if _expr_reads(s.cond, name):
            _note_read(u)
        inner = ScalarUsage()
        inner.assigned = u.assigned
        _walk_stmt(s.stmt, name, inner)
        if inner.upward_exposed:
            u.upward_exposed = True
        u.read_anywhere |= inner.read_anywhere
        u.written_anywhere |= inner.written_anywhere
        u.in_call |= inner.in_call
        u.saw_goto |= inner.saw_goto
        if inner.assigned == Assigned.YES and u.assigned != Assigned.YES:
            u.assigned = Assigned.MAYBE
        return
    if isinstance(s, F.CallStmt):
        for a in s.args:
            if isinstance(a, F.Var) and a.name == name:
                u.in_call = True
                u.read_anywhere = True
                u.written_anywhere = True
            elif _expr_reads(a, name):
                _note_read(u)
        return
    if isinstance(s, (F.Goto, F.ComputedGoto)):
        u.saw_goto = True
        return
    if isinstance(s, F.PrintStmt):
        if any(_expr_reads(i, name) for i in s.items):
            _note_read(u)
        return
    if isinstance(s, F.ReadStmt):
        for i in s.items:
            if isinstance(i, F.Var) and i.name == name:
                u.assigned = Assigned.YES
                u.written_anywhere = True
        return
    # Continue / Return / Stop / declarations: no effect


def reads_after(stmts: list[F.Stmt], marker: F.Stmt, name: str) -> Optional[bool]:
    """Does ``name`` get read in ``stmts`` strictly after statement ``marker``?

    Searches the flat statement list containing ``marker`` and everything
    nested below later statements.  Returns None if ``marker`` is not found
    at this level (caller should descend).
    """
    def observes(region: list[F.Stmt]) -> bool:
        """Would executing ``region`` next observe the current value?

        True only for an *upward-exposed* read (a read reached before any
        sure redefinition) or an opaque call — a region that redefines the
        variable before every read does not keep it live.
        """
        usage = scalar_usage(region, name)
        return usage.upward_exposed or usage.in_call or usage.saw_goto

    for idx, s in enumerate(stmts):
        if s is marker:
            return observes(stmts[idx + 1:])
        # descend into structured statements
        if isinstance(s, F.DoLoop):
            sub = reads_after(s.body, marker, name)
            if sub is not None:
                if sub:
                    return True
                # later iterations of this loop re-execute the whole body,
                # then the statements after the loop run
                if observes(s.body):
                    return True
                return observes(stmts[idx + 1:])
        elif isinstance(s, F.IfBlock):
            for _, body in s.arms:
                sub = reads_after(body, marker, name)
                if sub is not None:
                    if sub:
                        return True
                    return observes(stmts[idx + 1:])
    return None


def live_after_loop(unit: F.ProgramUnit, loop: F.Stmt, name: str,
                    escapes: bool) -> bool:
    """Conservative liveness of ``name`` after ``loop`` within ``unit``.

    ``escapes`` should be True for dummy arguments, COMMON and SAVE
    variables (their value is observable by callers).
    """
    if escapes:
        return True
    result = reads_after(unit.body, loop, name)
    if result is None:
        return True  # loop not found where expected: stay safe
    return result
