"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is the single accounting surface for the *host* pipeline —
cache hits, stage latencies, sweep-cell durations.  It is deliberately
tiny and dependency-free: every metric is a plain Python object with an
``inc``/``set``/``observe`` method cheap enough to call on hot paths,
and the registry renders to three formats:

- :meth:`MetricsRegistry.snapshot` — a JSON-shaped dict (the building
  block of the ``repro-metrics/1`` artifact and of per-worker shards);
- :meth:`MetricsRegistry.merge_snapshot` — the inverse: fold a worker
  shard's snapshot back into a registry, so the parent of a ``--jobs N``
  sweep can combine per-process shards into one coherent document;
- :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format, for scraping or eyeballing.

Histograms use *fixed* bucket boundaries (upper bounds, implicit +inf
tail) so shards merge by summing counts, and estimate percentiles by
linear interpolation inside the bucket containing the target rank,
clamped to the observed ``[min, max]``.  The estimate is therefore
always bounded by the true extremes and monotone in ``q`` — properties
the test suite asserts with hypothesis.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable, Optional, Sequence

#: default boundaries for wall-clock latencies, in seconds: exponential
#: from 100 µs to ~100 s (sweep cells span five orders of magnitude)
LATENCY_BUCKETS_S = tuple(
    round(base * 10.0 ** exp, 10)
    for exp in range(-4, 3)
    for base in (1.0, 2.5, 5.0))

_LabelKey = tuple  # ((key, value), ...) sorted — hashable label identity

#: ``# HELP`` text for the pipeline's well-known metrics, keyed by the
#: exposition name; unknown metrics render without a HELP line
HELP_TEXT = {
    "repro_cache_requests_total":
        "Artifact-cache requests by kind and result (hit/miss)",
    "repro_cache_disk_reads_total":
        "Artifact-cache disk store reads by kind",
    "repro_cache_disk_writes_total":
        "Artifact-cache disk store writes by kind",
    "repro_cache_disk_bytes_read_total":
        "Bytes read from the artifact-cache disk store by kind",
    "repro_cache_disk_bytes_written_total":
        "Bytes written to the artifact-cache disk store by kind",
    "repro_cache_entries":
        "Entries in the in-memory artifact cache",
    "repro_stage_seconds":
        "Wall-clock seconds per pipeline stage",
    "repro_cell_seconds":
        "Wall-clock seconds per sweep cell",
}

# Prometheus text-format identifiers: metric names allow [a-zA-Z0-9_:],
# label names only [a-zA-Z0-9_]; neither may start with a digit.
_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_metric_name(name: str) -> str:
    out = _METRIC_NAME_BAD.sub("_", str(name))
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _prom_label_name(name: str) -> str:
    out = _LABEL_NAME_BAD.sub("_", str(name))
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _prom_escape_label(v) -> str:
    """Label values escape backslash, double-quote, and newline."""
    return str(v).replace("\\", r"\\").replace('"', r'\"') \
        .replace("\n", r"\n")


def _prom_escape_help(v: str) -> str:
    """HELP text escapes backslash and newline (quotes stay literal)."""
    return str(v).replace("\\", r"\\").replace("\n", r"\n")


def _prom_float(v: float) -> str:
    """Upper bucket bounds and sample values in Go-parsable form."""
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    return repr(float(v))


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram with clamped percentile estimation.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge, so
    ``len(counts) == len(bounds) + 1`` and two histograms with the same
    bounds merge by elementwise count addition.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, labels: dict,
                 bounds: Sequence[float] = LATENCY_BUCKETS_S):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        self.counts[self._bucket(v)] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def _bucket(self, v: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:                      # first bound >= v
            mid = (lo + hi) // 2
            if self.bounds[mid] >= v:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        Interpolates linearly within the bucket containing the target
        rank and clamps to the observed ``[min, max]`` — the estimate
        can never escape the true extremes, and it is monotone in ``q``.
        Returns ``nan`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cum = 0.0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (target - cum) / n
                est = lo + frac * (hi - lo)
                return min(max(est, self.min), self.max)
            cum += n
        return self.max

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


#: the quantiles every snapshot/report carries
QUANTILES = (0.5, 0.90, 0.95, 0.99)


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics.

    Metric identity is ``(type, name, sorted labels)``; repeated calls
    return the same object, so hot paths can hold a metric reference and
    skip the lookup.  All mutating entry points take the registry lock —
    metrics may be touched from watchdog threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Sequence[float] | None = None,
                  **labels) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                m = Histogram(name, dict(labels),
                              bounds if bounds is not None
                              else LATENCY_BUCKETS_S)
                self._metrics[key] = m
            return m  # type: ignore[return-value]

    def _get(self, kind: str, cls, name: str, labels: dict):
        key = (kind, name, _label_key(labels))
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                m = cls(name, dict(labels))
                self._metrics[key] = m
            return m

    def add_collector(self,
                      fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a hook run before every snapshot (gauge refresh)."""
        with self._lock:
            self._collectors.append(fn)

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Zero every metric *in place* (references stay valid).

        Used after ``fork()`` so worker shards count only worker-side
        activity, and by ``telemetry.configure`` so one process can run
        several instrumented sweeps without cross-contamination.
        """
        with self._lock:
            for m in self._metrics.values():
                m._reset()

    # -- export --------------------------------------------------------

    def _sorted(self, kind: str) -> Iterable:
        return (self._metrics[k] for k in sorted(
            (k for k in self._metrics if k[0] == kind),
            key=lambda k: (k[1], k[2])))

    def snapshot(self) -> dict:
        """JSON-shaped dump of every metric (deterministic order)."""
        for fn in list(self._collectors):
            fn(self)
        with self._lock:
            out: dict = {"counters": [], "gauges": [], "histograms": []}
            for c in self._sorted("counter"):
                out["counters"].append({
                    "name": c.name, "labels": dict(c.labels),
                    "value": c.value})
            for g in self._sorted("gauge"):
                out["gauges"].append({
                    "name": g.name, "labels": dict(g.labels),
                    "value": g.value})
            for h in self._sorted("histogram"):
                entry = {
                    "name": h.name, "labels": dict(h.labels),
                    "bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "sum": h.sum,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for q in QUANTILES:
                    p = h.percentile(q)
                    entry[f"p{int(q * 100)}"] = None if math.isnan(p) else p
                out["histograms"].append(entry)
            return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. a worker shard) in.

        Counters and histogram bucket counts add; gauges keep the
        maximum (per-process point-in-time values have no meaningful
        sum — the max is the peak across the fleet).
        """
        for c in snap.get("counters", ()):
            self.counter(c["name"], **c["labels"]).inc(c["value"])
        for g in snap.get("gauges", ()):
            gauge = self.gauge(g["name"], **g["labels"])
            gauge.set(max(gauge.value, g["value"]))
        for h in snap.get("histograms", ()):
            if h["count"] == 0:
                continue
            mine = self.histogram(h["name"], bounds=h["bounds"],
                                  **h["labels"])
            other = Histogram(h["name"], h["labels"], h["bounds"])
            other.counts = list(h["counts"])
            other.count = h["count"]
            other.sum = h["sum"]
            other.min = h["min"] if h["min"] is not None else math.inf
            other.max = h["max"] if h["max"] is not None else -math.inf
            mine._merge(other)

    def to_prometheus(self) -> str:
        """Render in the Prometheus text exposition format.

        Spec conformance (audited against the text-format reference):
        metric and label names are sanitized to the allowed character
        classes, label values escape ``\\``/``"``/newline, HELP text
        escapes ``\\``/newline, histogram buckets are cumulative and
        always end in the mandatory ``+Inf`` bucket, and each metric
        family gets exactly one HELP/TYPE header.
        """
        def fmt_labels(labels: dict, extra: dict | None = None) -> str:
            pairs = {_prom_label_name(k): v for k, v in labels.items()}
            if extra:
                pairs.update(extra)
            if not pairs:
                return ""
            inner = ",".join(
                f'{k}="{_prom_escape_label(v)}"'
                for k, v in sorted(pairs.items()))
            return "{" + inner + "}"

        lines: list[str] = []
        seen_type: set[str] = set()

        def header(name: str, ptype: str) -> None:
            if name in seen_type:
                return
            seen_type.add(name)
            help_text = HELP_TEXT.get(name)
            if help_text:
                lines.append(
                    f"# HELP {name} {_prom_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {ptype}")

        snap = self.snapshot()
        for kind, ptype in (("counters", "counter"), ("gauges", "gauge")):
            for m in snap[kind]:
                name = _prom_metric_name(m["name"])
                header(name, ptype)
                lines.append(
                    f"{name}{fmt_labels(m['labels'])} {m['value']}")
        for h in snap["histograms"]:
            name = _prom_metric_name(h["name"])
            header(name, "histogram")
            cum = 0
            for bound, n in zip(h["bounds"], h["counts"]):
                cum += n
                lines.append(
                    f"{name}_bucket"
                    f"{fmt_labels(h['labels'], {'le': _prom_float(bound)})}"
                    f" {cum}")
            lines.append(
                f"{name}_bucket"
                f"{fmt_labels(h['labels'], {'le': '+Inf'})} {h['count']}")
            lines.append(
                f"{name}_sum{fmt_labels(h['labels'])} {h['sum']}")
            lines.append(
                f"{name}_count{fmt_labels(h['labels'])} {h['count']}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# the process-wide registry

_GLOBAL: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use).

    Forked ``--jobs`` workers inherit the object; the telemetry layer
    zeroes it after fork so each worker shard counts only its own work.
    """
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = MetricsRegistry()
    return _GLOBAL
