"""Span-based structured tracing for the host pipeline.

A *span* is one timed region of host work — ``parse``, ``restructure``,
``compile``, ``execute``, ``estimate``, or a whole sweep ``cell`` — with
a name, wall-clock start/duration, attributes, and a parent link.  Usage::

    with span("restructure", workload="TRFD"):
        ...

Telemetry is opt-in (``--telemetry DIR`` / ``REPRO_TELEMETRY``); while
off, :func:`span` returns a shared no-op context manager and nothing is
allocated, timed, or written — instrumented code paths behave exactly
as uninstrumented ones.

Context propagation across ``--jobs`` worker processes: the parent
calls :func:`configure` before fanning out, forked workers inherit the
state (same output directory, same trace id, same monotonic epoch) and
a ``register_after_fork`` hook zeroes the inherited span buffer and
metrics so each worker accounts only its own work.  Every process
writes its *own* shard — ``spans-<pid>.jsonl`` (appended per sweep
cell) and ``metrics-<pid>.json`` (atomic snapshot) — and the parent's
:func:`repro.telemetry.export.merge_dir` folds the shards into one
coherent trace keyed by sweep-cell index.

Spans never appear in sweep JSON payloads, so ``--telemetry`` on/off
leaves every harness's ``--json``/``-o`` output byte-identical.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Optional

from repro.telemetry.registry import get_registry


class _TelemetryState:
    """Per-process telemetry session (shared via fork with workers)."""

    __slots__ = ("dir", "trace_id", "epoch", "started_unix", "pid",
                 "spans", "stack", "cell", "seq", "__weakref__")

    def __init__(self, out_dir: Path, trace_id: str, epoch: float,
                 started_unix: float):
        self.dir = out_dir
        self.trace_id = trace_id
        self.epoch = epoch
        self.started_unix = started_unix
        self.pid = os.getpid()
        self.spans: list[dict] = []
        self.stack: list[str] = []      # open span ids (parent linkage)
        self.cell: Optional[int] = None
        self.seq = 0


_STATE: Optional[_TelemetryState] = None

#: completed-span hook (the repro.obs flight recorder); called with the
#: finished record dict.  None (the default) costs one identity check.
_OBSERVER = None


def set_span_observer(fn) -> None:
    """Install/remove the completed-span observer (``None`` removes).

    The observer receives every finished span's record dict *after* it
    is buffered — it must not mutate the record.  There is exactly one
    slot: the last caller wins (the flight recorder is the only
    intended client).
    """
    global _OBSERVER
    _OBSERVER = fn


def enabled() -> bool:
    """True when a telemetry session is active in this process."""
    return _STATE is not None


def current_dir() -> Optional[Path]:
    return _STATE.dir if _STATE is not None else None


def trace_id() -> Optional[str]:
    return _STATE.trace_id if _STATE is not None else None


def _after_fork(_obj=None) -> None:
    """Reset inherited buffers so a worker shard is worker-only."""
    st = _STATE
    if st is None or st.pid == os.getpid():
        return
    st.pid = os.getpid()
    st.spans.clear()
    st.stack.clear()
    st.cell = None
    st.seq = 0
    get_registry().reset()


def configure(out_dir: str | os.PathLike) -> None:
    """Start a telemetry session writing shards into ``out_dir``.

    Creates the directory, stamps a ``meta.json`` (trace id, start
    time, harness argv), exports ``REPRO_TELEMETRY`` so spawned
    subprocesses join the same session, and registers the after-fork
    reset for ``--jobs`` workers.  Calling again replaces the session
    (metrics are zeroed so each run's artifact is self-contained).
    """
    global _STATE
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    tid = uuid.uuid4().hex[:16]
    _STATE = _TelemetryState(out, tid, time.perf_counter(), time.time())
    os.environ["REPRO_TELEMETRY"] = str(out)
    get_registry().reset()
    try:
        from multiprocessing.util import register_after_fork

        register_after_fork(_STATE, _after_fork)
    except ImportError:  # pragma: no cover
        pass
    meta = {"trace_id": tid, "started_unix": _STATE.started_unix,
            "pid": os.getpid(), "argv": list(__import__("sys").argv)}
    (out / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")


def configure_from_env() -> bool:
    """Join/start the session named by ``REPRO_TELEMETRY``, if any."""
    out = os.environ.get("REPRO_TELEMETRY")
    if not out:
        return False
    if _STATE is not None and str(_STATE.dir) == out:
        return True
    configure(out)
    return True


def shutdown(flush_shard: bool = True) -> None:
    """End the session (flushing this process's shard by default;
    ``flush_shard=False`` is for callers that just merged the session
    directory and must not drop a fresh shard behind the merge)."""
    global _STATE
    if _STATE is not None and flush_shard:
        flush()
    _STATE = None
    os.environ.pop("REPRO_TELEMETRY", None)


# ---------------------------------------------------------------------------
# spans


class _NoopSpan:
    """Shared do-nothing context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "sid", "t0", "_state")

    def __init__(self, state: _TelemetryState, name: str, attrs: dict):
        self._state = state
        self.name = name
        self.attrs = attrs
        self.sid = ""
        self.t0 = 0.0

    def __enter__(self):
        st = self._state
        st.seq += 1
        self.sid = f"{st.pid}-{st.seq}"
        self.t0 = time.perf_counter()
        st.stack.append(self.sid)
        return self

    def __exit__(self, exc_type, exc, tb):
        st = self._state
        dur = time.perf_counter() - self.t0
        if st.stack and st.stack[-1] == self.sid:
            st.stack.pop()
        rec = {
            "id": self.sid,
            "parent": st.stack[-1] if st.stack else None,
            "name": self.name,
            "pid": st.pid,
            "cell": st.cell,
            "t0": self.t0 - st.epoch,
            "duration_s": dur,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        if exc_type is not None:
            rec["error"] = exc_type.__name__
        st.spans.append(rec)
        if self.name != "cell":
            get_registry().histogram(
                "repro_stage_seconds", stage=self.name).observe(dur)
        if _OBSERVER is not None:
            _OBSERVER(rec)
        return False


def span(name: str, **attrs):
    """Open a span named ``name``; a no-op when telemetry is off."""
    st = _STATE
    if st is None:
        return _NOOP
    return _Span(st, name, attrs)


def _cache_request_totals() -> tuple[float, float]:
    """Current (hits, misses) across every artifact kind — the counters
    :mod:`repro.engine.cache` accounts into the process registry."""
    try:
        from repro.engine.cache import ARTIFACT_KINDS
    except ImportError:  # pragma: no cover — engine layer absent
        ARTIFACT_KINDS = ("parse", "restructure")
    reg = get_registry()
    hits = misses = 0.0
    for kind in ARTIFACT_KINDS:
        hits += reg.counter("repro_cache_requests_total",
                            kind=kind, result="hit").value
        misses += reg.counter("repro_cache_requests_total",
                              kind=kind, result="miss").value
    return hits, misses


class _CellSpan:
    """The per-sweep-cell root span: sets the cell context, observes the
    cell-latency histogram, and flushes this process's shard on exit (so
    a worker's telemetry is durable the moment its result is).

    The cell record additionally carries ``queue_delay_s`` (the
    submit→start gap, when the executor stamped a submission time — both
    sides read the same CLOCK_MONOTONIC, shared across fork) and a
    ``cache`` hit/miss delta, attributing compilation-cache behaviour to
    this specific cell.
    """

    __slots__ = ("_span", "_state", "index", "_submit_t0", "_cache0")

    def __init__(self, state: _TelemetryState, index: int, label: str,
                 submit_t0: Optional[float] = None):
        self._state = state
        self.index = index
        self._submit_t0 = submit_t0
        self._cache0 = (0.0, 0.0)
        self._span = _Span(state, "cell", {"label": label})

    def __enter__(self):
        self._state.cell = self.index
        self._cache0 = _cache_request_totals()
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._span.__exit__(exc_type, exc, tb)
        st = self._state
        rec = st.spans[-1]
        get_registry().histogram("repro_cell_seconds").observe(
            rec["duration_s"])
        if self._submit_t0 is not None:
            rec["queue_delay_s"] = max(
                0.0, self._span.t0 - self._submit_t0)
        hits, misses = _cache_request_totals()
        rec["cache"] = {"hits": hits - self._cache0[0],
                        "misses": misses - self._cache0[1]}
        st.cell = None
        flush()
        return False


def cell_span(index: int, label: str,
              submit_t0: Optional[float] = None):
    """Open the root span of sweep cell ``index``; no-op when off.

    ``submit_t0`` is an optional ``time.perf_counter()`` stamp taken
    when the cell was *submitted* to an executor; the recorded span then
    carries the submit→start gap as ``queue_delay_s``.
    """
    st = _STATE
    if st is None:
        return _NOOP
    return _CellSpan(st, index, label, submit_t0)



# ---------------------------------------------------------------------------
# shard I/O


def flush() -> None:
    """Write this process's shard: append buffered spans, snapshot
    metrics atomically.  Safe to call any number of times; a no-op when
    telemetry is off or there is nothing new to say."""
    st = _STATE
    if st is None:
        return
    if st.pid != os.getpid():   # fork not yet observed by the hook
        _after_fork()
    if st.spans:
        lines = "".join(json.dumps(rec, sort_keys=True) + "\n"
                        for rec in st.spans)
        try:
            with open(st.dir / f"spans-{st.pid}.jsonl", "a") as fh:
                fh.write(lines)
            st.spans.clear()
        except OSError:
            pass    # an unwritable telemetry dir must never kill a sweep
    snap = {"pid": st.pid, "trace_id": st.trace_id,
            "metrics": get_registry().snapshot()}
    try:
        fd, tmp = tempfile.mkstemp(dir=st.dir, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump(snap, fh, sort_keys=True)
        os.replace(tmp, st.dir / f"metrics-{st.pid}.json")
    except OSError:
        pass
