"""Exporters: shard merge, the ``repro-metrics/1`` artifact, Prometheus.

A telemetry session directory accumulates per-process shards
(``spans-<pid>.jsonl``, ``metrics-<pid>.json``) plus the parent's
``meta.json``.  :func:`merge_dir` folds them into the session's three
final outputs:

``metrics.json``
    the ``repro-metrics/1`` artifact: merged metrics (counters, gauges,
    histograms with p50/p90/p95/p99), every span keyed by sweep-cell
    index, and a computed summary (per-stage time breakdown, top-N
    slowest cells, per-artifact-kind cache hit rates, per-worker
    utilization);
``spans.jsonl``
    the merged span log, one JSON object per line, sorted by
    (cell, start time, pid) — a coherent trace across all workers;
``metrics.prom``
    the merged registry in Prometheus text exposition format.

Shard files are removed after a successful merge, leaving a clean
artifact directory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

from repro.telemetry.registry import MetricsRegistry

SCHEMA_TAG = "repro-metrics/1"

#: how many slowest cells the summary (and report) carries
TOP_CELLS = 20


def _shard_warn(msg: str) -> None:
    """A damaged shard degrades the merge, never kills it — but the
    degradation must be visible (stderr + the structured log)."""
    import sys

    print(f"[telemetry] warning: {msg}", file=sys.stderr)
    from repro.obs.log import get_logger

    get_logger("telemetry.export").warning("shard_damaged", detail=msg)


def _read_shards(out_dir: Path) -> tuple[list[dict], MetricsRegistry,
                                         list[int], list[Path]]:
    """Fold every per-process shard in ``out_dir``.

    Tolerant by design: a worker killed mid-write leaves a missing,
    unreadable, or truncated shard — each is warned about and skipped
    (or read up to the torn tail), and the rest of the session merges
    normally.
    """
    spans: list[dict] = []
    registry = MetricsRegistry()
    pids: set[int] = set()
    shard_files: list[Path] = []
    for path in sorted(out_dir.glob("spans-*.jsonl")):
        try:
            text = path.read_text()
        except OSError as exc:
            _shard_warn(f"span shard {path.name} unreadable "
                        f"({exc}); merging without it")
            continue
        shard_files.append(path)
        torn = 0
        for raw in text.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError:
                torn += 1   # torn tail from a killed worker
                continue
            spans.append(rec)
            pids.add(rec.get("pid", -1))
        if torn:
            _shard_warn(f"span shard {path.name} truncated: dropped "
                        f"{torn} torn line(s), kept the rest")
    for path in sorted(out_dir.glob("metrics-*.json")):
        try:
            shard = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            shard_files.append(path)    # still cleaned up after merge
            _shard_warn(f"metrics shard {path.name} damaged "
                        f"({exc}); merging without it")
            continue
        shard_files.append(path)
        registry.merge_snapshot(shard.get("metrics", {}))
        pids.add(shard.get("pid", -1))
    pids.discard(-1)
    return spans, registry, sorted(pids), shard_files


def _span_sort_key(rec: dict):
    cell = rec.get("cell")
    return (cell if cell is not None else -1,
            rec.get("t0", 0.0), rec.get("pid", 0), rec.get("id", ""))


def _summarize(spans: list[dict], metrics: dict) -> dict:
    cells = [s for s in spans if s.get("name") == "cell"]
    stages: dict[str, dict] = {}
    for s in spans:
        if s.get("name") == "cell":
            continue
        st = stages.setdefault(s["name"], {"count": 0, "total_s": 0.0,
                                           "max_s": 0.0})
        st["count"] += 1
        st["total_s"] += s.get("duration_s", 0.0)
        st["max_s"] = max(st["max_s"], s.get("duration_s", 0.0))

    slowest = sorted(cells, key=lambda s: -s.get("duration_s", 0.0))
    slowest_cells = [{
        "cell": s.get("cell"),
        "label": (s.get("attrs") or {}).get("label", ""),
        "pid": s.get("pid"),
        "duration_s": s.get("duration_s", 0.0),
        "error": s.get("error"),
    } for s in slowest[:TOP_CELLS]]

    workers: dict[str, dict] = {}
    for s in spans:
        w = workers.setdefault(str(s.get("pid")), {
            "spans": 0, "cells": 0, "busy_s": 0.0,
            "first_t0": s.get("t0", 0.0), "last_end": s.get("t0", 0.0)})
        w["spans"] += 1
        end = s.get("t0", 0.0) + s.get("duration_s", 0.0)
        w["first_t0"] = min(w["first_t0"], s.get("t0", 0.0))
        w["last_end"] = max(w["last_end"], end)
        if s.get("name") == "cell":
            w["cells"] += 1
            w["busy_s"] += s.get("duration_s", 0.0)
    for w in workers.values():
        window = w["last_end"] - w["first_t0"]
        w["utilization"] = (w["busy_s"] / window) if window > 0 else 0.0

    cache: dict[str, dict] = {}
    for c in metrics.get("counters", ()):
        if c["name"] != "repro_cache_requests_total":
            continue
        kind = c["labels"].get("kind", "?")
        slot = cache.setdefault(kind, {"hits": 0, "misses": 0})
        if c["labels"].get("result") == "hit":
            slot["hits"] += c["value"]
        else:
            slot["misses"] += c["value"]
    # the cache registers counters for every artifact kind up front;
    # kinds the run never touched (e.g. jit-source under the closure
    # engine) would report a meaningless 0/0 slot — drop them.
    cache = {kind: slot for kind, slot in cache.items()
             if slot["hits"] + slot["misses"] > 0}
    for slot in cache.values():
        total = slot["hits"] + slot["misses"]
        slot["hit_rate"] = slot["hits"] / total

    return {
        "cells": len(cells),
        "cell_errors": sum(1 for s in cells if s.get("error")),
        "stages": dict(sorted(stages.items())),
        "slowest_cells": slowest_cells,
        "workers": dict(sorted(workers.items(), key=lambda kv: kv[0])),
        "cache": dict(sorted(cache.items())),
    }


def build_payload(spans: list[dict], registry: MetricsRegistry,
                  pids: list[int], meta: dict,
                  harness: Optional[str] = None) -> dict:
    spans = sorted(spans, key=_span_sort_key)
    metrics = registry.snapshot()
    payload = {
        "schema": SCHEMA_TAG,
        "trace_id": meta.get("trace_id", ""),
        "harness": harness or " ".join(meta.get("argv", [])[:2]) or None,
        "started_unix": meta.get("started_unix"),
        "merged_unix": time.time(),
        "pids": pids,
        "metrics": metrics,
        "spans": spans,
        "summary": _summarize(spans, metrics),
    }
    return payload


def merge_dir(out_dir: str | os.PathLike,
              harness: Optional[str] = None) -> dict:
    """Merge a session directory's shards into the final artifacts.

    Returns the ``repro-metrics/1`` payload; writes ``metrics.json``,
    ``spans.jsonl`` and ``metrics.prom`` next to the shards, then
    removes the shard files.  Idempotent: re-merging a merged directory
    (no shards left) rebuilds the outputs from ``metrics.json``.
    """
    out = Path(out_dir)
    meta: dict = {}
    meta_path = out / "meta.json"
    if meta_path.exists():
        try:
            meta = json.loads(meta_path.read_text())
        except json.JSONDecodeError:
            meta = {}
    spans, registry, pids, shard_files = _read_shards(out)
    if not shard_files and (out / "metrics.json").exists():
        prior = json.loads((out / "metrics.json").read_text())
        spans = prior.get("spans", [])
        registry = MetricsRegistry()
        registry.merge_snapshot(prior.get("metrics", {}))
        pids = prior.get("pids", [])
        if harness is None:
            harness = prior.get("harness")

    payload = build_payload(spans, registry, pids, meta, harness=harness)
    (out / "metrics.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    (out / "spans.jsonl").write_text(
        "".join(json.dumps(s, sort_keys=True) + "\n"
                for s in payload["spans"]))
    (out / "metrics.prom").write_text(registry.to_prometheus())
    for path in shard_files:
        try:
            path.unlink()
        except OSError:
            pass
    return payload


def finalize(harness: Optional[str] = None,
             echo=None) -> Optional[dict]:
    """Flush this process's shard and merge the session directory.

    The standard epilogue of every instrumented CLI: a no-op returning
    ``None`` when telemetry is off.  ``echo`` (e.g. a stderr printer)
    receives a one-line summary of what was written.
    """
    from repro.telemetry import spans as spanmod

    if not spanmod.enabled():
        return None
    out_dir = spanmod.current_dir()
    spanmod.flush()
    payload = merge_dir(out_dir, harness=harness)
    spanmod.shutdown(flush_shard=False)
    if echo is not None:
        s = payload["summary"]
        echo(f"[telemetry] {out_dir}/metrics.json: "
             f"{len(payload['spans'])} span(s), {s['cells']} cell(s), "
             f"{len(payload['pids'])} process(es)")
    return payload
