"""Validator for the ``repro-metrics/1`` telemetry artifact.

Hand-rolled (the environment carries no jsonschema dependency),
mirroring the conventions of ``scripts/validate_experiment_json.py``,
which dispatches to :func:`validate_metrics` for this tag.  Beyond
shape checks it enforces the semantic invariants that make the artifact
trustworthy:

- histogram bucket counts sum to ``count``; percentile estimates are
  bounded by the recorded ``[min, max]`` and monotone in q;
- every span has a nonnegative duration, a known pid, and a parent id
  that resolves within the document (or null);
- the summary recounts (cells, workers, stage totals) agree with the
  span list, and cache hit rates agree with the cache counters.
"""

from __future__ import annotations

from repro.telemetry.export import SCHEMA_TAG

REL_TOL = 1e-6

_REQUIRED_TOP = ("schema", "trace_id", "pids", "metrics", "spans",
                 "summary")
_REQUIRED_SPAN = ("id", "name", "pid", "t0", "duration_s")
_PERCENTILES = ("p50", "p90", "p95", "p99")


class _Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []

    def expect(self, cond: bool, path: str, msg: str) -> bool:
        if not cond:
            self.errors.append(f"{path}: {msg}")
        return cond


def _num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_histogram(ck: _Checker, h: dict, path: str) -> None:
    if not ck.expect(isinstance(h, dict), path, "must be an object"):
        return
    for key in ("name", "labels", "bounds", "counts", "count", "sum"):
        ck.expect(key in h, path, f"missing {key!r}")
    bounds = h.get("bounds", [])
    counts = h.get("counts", [])
    ck.expect(list(bounds) == sorted(bounds)
              and len(set(bounds)) == len(bounds),
              path, "bounds must be strictly increasing")
    if not ck.expect(len(counts) == len(bounds) + 1, path,
                     f"need len(bounds)+1 counts, got {len(counts)} "
                     f"for {len(bounds)} bounds"):
        return
    ck.expect(all(isinstance(n, int) and n >= 0 for n in counts),
              path, "counts must be nonnegative integers")
    count = h.get("count", -1)
    ck.expect(sum(counts) == count, path,
              f"bucket counts sum to {sum(counts)}, count says {count}")
    if count == 0:
        ck.expect(all(h.get(p) is None for p in _PERCENTILES), path,
                  "empty histogram must have null percentiles")
        return
    lo, hi = h.get("min"), h.get("max")
    ck.expect(_num(lo) and _num(hi) and lo <= hi, path,
              "non-empty histogram needs numeric min <= max")
    prev = None
    for p in _PERCENTILES:
        v = h.get(p)
        if not ck.expect(_num(v), path, f"{p} must be numeric"):
            continue
        if _num(lo) and _num(hi):
            ck.expect(lo - REL_TOL <= v <= hi + REL_TOL, path,
                      f"{p}={v} escapes [min={lo}, max={hi}]")
        if prev is not None:
            ck.expect(v >= prev - REL_TOL, path,
                      f"{p}={v} < previous percentile {prev} "
                      f"(not monotone)")
        prev = v
    if _num(lo) and _num(hi) and _num(h.get("sum")):
        ck.expect(count * lo - REL_TOL <= h["sum"]
                  <= count * hi + REL_TOL, path,
                  f"sum={h['sum']} inconsistent with count*[min,max]")


def _check_metrics(ck: _Checker, metrics: dict, path: str) -> None:
    if not ck.expect(isinstance(metrics, dict), path,
                     "must be an object"):
        return
    for section in ("counters", "gauges", "histograms"):
        items = metrics.get(section)
        if not ck.expect(isinstance(items, list), f"{path}.{section}",
                         "must be a list"):
            continue
        for i, m in enumerate(items):
            mpath = f"{path}.{section}[{i}]"
            if not ck.expect(isinstance(m, dict), mpath,
                             "must be an object"):
                continue
            ck.expect(isinstance(m.get("name"), str) and m.get("name"),
                      mpath, "needs a name")
            ck.expect(isinstance(m.get("labels"), dict), mpath,
                      "needs a labels object")
            if section == "counters":
                ck.expect(_num(m.get("value")) and m.get("value", -1) >= 0,
                          mpath, "counter value must be >= 0")
            elif section == "gauges":
                ck.expect(_num(m.get("value")), mpath,
                          "gauge value must be numeric")
            else:
                _check_histogram(ck, m, mpath)


def _check_spans(ck: _Checker, spans: list, pids: list,
                 path: str) -> None:
    ids = {s.get("id") for s in spans if isinstance(s, dict)}
    pidset = set(pids)
    for i, s in enumerate(spans):
        spath = f"{path}[{i}]"
        if not ck.expect(isinstance(s, dict), spath, "must be an object"):
            continue
        for key in _REQUIRED_SPAN:
            ck.expect(key in s, spath, f"missing {key!r}")
        ck.expect(_num(s.get("duration_s")) and s.get("duration_s", -1) >= 0,
                  spath, "duration_s must be >= 0")
        ck.expect(_num(s.get("t0")), spath, "t0 must be numeric")
        ck.expect(isinstance(s.get("pid"), int)
                  and (not pidset or s.get("pid") in pidset),
                  spath, f"pid {s.get('pid')!r} not in $.pids")
        parent = s.get("parent")
        ck.expect(parent is None or parent in ids, spath,
                  f"parent {parent!r} does not resolve in the document")
        cell = s.get("cell")
        ck.expect(cell is None or (isinstance(cell, int) and cell >= 0),
                  spath, "cell must be null or a nonnegative index")
        if s.get("name") == "cell":
            ck.expect(cell is not None, spath,
                      "a cell span must carry its cell index")


def _check_summary(ck: _Checker, payload: dict, path: str) -> None:
    summary = payload.get("summary")
    if not ck.expect(isinstance(summary, dict), path,
                     "must be an object"):
        return
    spans = [s for s in payload.get("spans", []) if isinstance(s, dict)]
    cells = [s for s in spans if s.get("name") == "cell"]
    ck.expect(summary.get("cells") == len(cells), f"{path}.cells",
              f"says {summary.get('cells')}, span recount is "
              f"{len(cells)}")
    stages = summary.get("stages")
    if ck.expect(isinstance(stages, dict), f"{path}.stages",
                 "must be an object"):
        recount: dict[str, int] = {}
        for s in spans:
            if s.get("name") != "cell":
                recount[s["name"]] = recount.get(s["name"], 0) + 1
        for name, st in stages.items():
            spath = f"{path}.stages.{name}"
            if not ck.expect(isinstance(st, dict), spath,
                             "must be an object"):
                continue
            ck.expect(st.get("count") == recount.get(name, 0), spath,
                      f"count {st.get('count')} != span recount "
                      f"{recount.get(name, 0)}")
            ck.expect(_num(st.get("total_s"))
                      and st.get("total_s", -1) >= 0,
                      spath, "needs nonnegative total_s")
        ck.expect(set(stages) == set(recount), f"{path}.stages",
                  f"stage names {sorted(stages)} != span recount "
                  f"{sorted(recount)}")
    workers = summary.get("workers")
    if ck.expect(isinstance(workers, dict), f"{path}.workers",
                 "must be an object"):
        span_pids = {str(s.get("pid")) for s in spans}
        ck.expect(set(workers) == span_pids, f"{path}.workers",
                  f"worker pids {sorted(workers)} != span pids "
                  f"{sorted(span_pids)}")
        for pid, w in workers.items():
            ck.expect(isinstance(w, dict)
                      and _num(w.get("utilization"))
                      and 0.0 <= w.get("utilization", -1) <= 1.0 + REL_TOL,
                      f"{path}.workers.{pid}",
                      "utilization must be in [0, 1]")
    cache = summary.get("cache")
    if ck.expect(isinstance(cache, dict), f"{path}.cache",
                 "must be an object"):
        for kind, slot in cache.items():
            cpath = f"{path}.cache.{kind}"
            if not ck.expect(isinstance(slot, dict), cpath,
                             "must be an object"):
                continue
            hits, misses = slot.get("hits"), slot.get("misses")
            ok = (_num(hits) and _num(misses)
                  and hits >= 0 and misses >= 0)
            ck.expect(ok, cpath, "needs nonnegative hits/misses")
            if ok:
                total = hits + misses
                want = (hits / total) if total else 0.0
                ck.expect(abs(slot.get("hit_rate", -1) - want)
                          <= REL_TOL, cpath,
                          f"hit_rate {slot.get('hit_rate')} != "
                          f"{want}")
    for key in ("slowest_cells",):
        items = summary.get(key)
        if ck.expect(isinstance(items, list), f"{path}.{key}",
                     "must be a list"):
            for i, c in enumerate(items):
                ck.expect(isinstance(c, dict)
                          and _num(c.get("duration_s")),
                          f"{path}.{key}[{i}]",
                          "needs a numeric duration_s")


def validate_metrics(payload) -> list[str]:
    """Return a list of violations (empty == valid)."""
    ck = _Checker()
    if not ck.expect(isinstance(payload, dict), "$",
                     "payload must be an object"):
        return ck.errors
    ck.expect(payload.get("schema") == SCHEMA_TAG, "$.schema",
              f"expected {SCHEMA_TAG!r}, got {payload.get('schema')!r}")
    for key in _REQUIRED_TOP:
        ck.expect(key in payload, "$", f"missing {key!r}")
    ck.expect(isinstance(payload.get("trace_id"), str), "$.trace_id",
              "must be a string")
    pids = payload.get("pids", [])
    ck.expect(isinstance(pids, list)
              and all(isinstance(p, int) for p in pids),
              "$.pids", "must be a list of integers")
    _check_metrics(ck, payload.get("metrics", {}), "$.metrics")
    spans = payload.get("spans", [])
    if ck.expect(isinstance(spans, list), "$.spans", "must be a list"):
        _check_spans(ck, spans, pids, "$.spans")
    _check_summary(ck, payload, "$.summary")
    return ck.errors
