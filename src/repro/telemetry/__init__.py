"""repro.telemetry — host-side observability for the whole pipeline.

Where :mod:`repro.trace` and :mod:`repro.prof` observe the *simulated*
Cedar machine (cycle ledgers, hardware counters, per-CE timelines),
this package observes the *host* pipeline that runs it: wall-clock
spans around parse → restructure → compile → execute → sweep, a
process-wide :class:`MetricsRegistry` of counters/gauges/latency
histograms (p50/p90/p95/p99), and per-worker shard files that the
parent of a ``--jobs N`` sweep merges into one coherent
``repro-metrics/1`` artifact keyed by sweep-cell index.

Enable with ``--telemetry DIR`` on any sweep harness (or the
``REPRO_TELEMETRY`` environment variable); off is the default and a
true no-op — instrumented code paths emit nothing and every sweep's
JSON payload stays byte-identical.  Render with
``python -m repro.telemetry report DIR``.
"""

from repro.telemetry.export import SCHEMA_TAG, finalize, merge_dir
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.schema import validate_metrics
from repro.telemetry.spans import (
    cell_span,
    configure,
    configure_from_env,
    enabled,
    flush,
    shutdown,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_TAG",
    "cell_span",
    "configure",
    "configure_from_env",
    "enabled",
    "finalize",
    "flush",
    "get_registry",
    "merge_dir",
    "shutdown",
    "span",
    "validate_metrics",
]
