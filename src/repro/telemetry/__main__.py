"""Telemetry CLI: ``python -m repro.telemetry``.

``python -m repro.telemetry report DIR|metrics.json [--top N]``
    Render the per-stage breakdown, slowest cells, cache hit rates and
    worker utilization of a ``repro-metrics/1`` artifact.  A directory
    argument is merged first if unprocessed shards remain, so the
    command works both on finished sessions and on the raw shard
    directory of a crashed sweep.

``python -m repro.telemetry validate DIR|metrics.json``
    Check the artifact against the ``repro-metrics/1`` schema and its
    semantic invariants (histogram percentile bounds, span linkage,
    summary recounts).

``python -m repro.telemetry merge DIR``
    Fold per-process shards into ``metrics.json`` / ``spans.jsonl`` /
    ``metrics.prom`` without rendering (what instrumented harnesses do
    automatically at exit).

Exit status: 0 ok; 1 validation violations; 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path_arg: str, *, merge_shards: bool = True) -> dict:
    """Resolve a DIR or metrics.json argument to a payload dict."""
    from repro.telemetry.export import merge_dir

    path = Path(path_arg)
    if path.is_dir():
        if merge_shards and (list(path.glob("spans-*.jsonl"))
                             or list(path.glob("metrics-*.json"))
                             or not (path / "metrics.json").exists()):
            return merge_dir(path)
        return json.loads((path / "metrics.json").read_text())
    return json.loads(path.read_text())


def _cmd_report(ns: argparse.Namespace) -> int:
    from repro.telemetry.report import render_report

    payload = _load(ns.path)
    print(render_report(payload, top=ns.top))
    return 0


def _cmd_validate(ns: argparse.Namespace) -> int:
    from repro.telemetry.schema import validate_metrics

    payload = _load(ns.path)
    problems = validate_metrics(payload)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"{len(problems)} violation(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(payload['spans'])} span(s), "
          f"{payload['summary']['cells']} cell(s) conform to "
          f"{payload['schema']}")
    return 0


def _cmd_merge(ns: argparse.Namespace) -> int:
    from repro.telemetry.export import merge_dir

    payload = merge_dir(ns.path)
    s = payload["summary"]
    print(f"merged {ns.path}: {len(payload['spans'])} span(s), "
          f"{s['cells']} cell(s), {len(payload['pids'])} process(es)")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="host-side telemetry: metrics/span artifacts and "
                    "reports")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="render a repro-metrics/1 artifact")
    p.add_argument("path", help="session directory or metrics.json")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="slowest cells to list (default 10)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("validate",
                       help="check a repro-metrics/1 artifact")
    p.add_argument("path", help="session directory or metrics.json")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("merge",
                       help="fold per-process shards into the artifact")
    p.add_argument("path", help="session directory")
    p.set_defaults(func=_cmd_merge)

    ns = ap.parse_args(argv)
    try:
        return ns.func(ns)
    except BrokenPipeError:
        sys.stderr.close()
        return 0
    except FileNotFoundError as exc:
        print(f"repro.telemetry: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"repro.telemetry: invalid JSON: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
