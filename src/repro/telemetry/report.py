"""Human-readable rendering of a ``repro-metrics/1`` artifact.

``python -m repro.telemetry report DIR|metrics.json`` prints the
per-stage time breakdown, the top-N slowest sweep cells, per-artifact-
kind cache hit rates, and per-worker utilization — the operator's view
of where a sweep's wall-clock went.
"""

from __future__ import annotations


def _fmt_s(v: float) -> str:
    if v >= 1.0:
        return f"{v:8.3f}s"
    return f"{v * 1e3:7.2f}ms"


def _bar(frac: float, width: int = 24) -> str:
    n = max(0, min(width, round(frac * width)))
    return "#" * n + "." * (width - n)


def _histogram_row(metrics: dict, name: str) -> dict | None:
    for h in metrics.get("histograms", ()):
        if h["name"] == name and not h.get("labels"):
            return h
    return None


def render_report(payload: dict, top: int = 10) -> str:
    """Render the artifact as a text report."""
    lines: list[str] = []
    s = payload.get("summary", {})
    harness = payload.get("harness") or "?"
    lines.append(f"telemetry report — trace {payload.get('trace_id', '?')}"
                 f" ({harness})")
    lines.append(f"  {s.get('cells', 0)} sweep cell(s) across "
                 f"{len(payload.get('pids', []))} process(es), "
                 f"{len(payload.get('spans', []))} span(s)"
                 + (f", {s['cell_errors']} cell error(s)"
                    if s.get("cell_errors") else ""))

    cell_hist = _histogram_row(payload.get("metrics", {}),
                               "repro_cell_seconds")
    if cell_hist and cell_hist.get("count"):
        lines.append(
            f"  cell latency: p50 {_fmt_s(cell_hist['p50']).strip()}  "
            f"p90 {_fmt_s(cell_hist['p90']).strip()}  "
            f"p95 {_fmt_s(cell_hist['p95']).strip()}  "
            f"p99 {_fmt_s(cell_hist['p99']).strip()}  "
            f"max {_fmt_s(cell_hist['max']).strip()}")

    stages = s.get("stages", {})
    if stages:
        lines.append("")
        lines.append("per-stage time breakdown")
        total = sum(st.get("total_s", 0.0) for st in stages.values()) \
            or 1.0
        width = max(len(n) for n in stages)
        for name, st in sorted(stages.items(),
                               key=lambda kv: -kv[1].get("total_s", 0.0)):
            frac = st.get("total_s", 0.0) / total
            lines.append(
                f"  {name:<{width}}  {_fmt_s(st.get('total_s', 0.0))}"
                f"  {frac * 100:5.1f}%  {_bar(frac)}"
                f"  ({st.get('count', 0)}x, max "
                f"{_fmt_s(st.get('max_s', 0.0)).strip()})")

    slowest = s.get("slowest_cells", [])[:top]
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} slowest cell(s)")
        for c in slowest:
            err = f"  [{c['error']}]" if c.get("error") else ""
            lines.append(
                f"  #{c.get('cell', '?'):>3}  "
                f"{_fmt_s(c.get('duration_s', 0.0))}  "
                f"pid {c.get('pid', '?')}  {c.get('label', '')}{err}")

    cache = s.get("cache", {})
    if cache:
        lines.append("")
        lines.append("compilation cache")
        width = max(len(k) for k in cache)
        for kind, slot in sorted(cache.items()):
            total = slot["hits"] + slot["misses"]
            lines.append(
                f"  {kind:<{width}}  {slot['hit_rate'] * 100:5.1f}% hit "
                f"({slot['hits']}/{total})")

    workers = s.get("workers", {})
    if workers:
        lines.append("")
        lines.append("worker utilization")
        for pid, w in sorted(workers.items(),
                             key=lambda kv: -kv[1].get("busy_s", 0.0)):
            lines.append(
                f"  pid {pid:<8}  {w.get('cells', 0):>3} cell(s)  "
                f"busy {_fmt_s(w.get('busy_s', 0.0))}  "
                f"util {w.get('utilization', 0.0) * 100:5.1f}%  "
                f"{_bar(w.get('utilization', 0.0))}")
    return "\n".join(lines)
