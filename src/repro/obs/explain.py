"""Cross-layer correlation: the "why was this sweep cell slow" join.

``python -m repro.obs explain DIR [--sweep PAYLOAD] [--cell N]`` joins,
per sweep cell, four layers that the other planes only see separately:

- **host time** — the cell's wall-clock span from the ``repro-metrics/1``
  artifact, plus its child stage spans (parse/restructure/estimate/...),
- **worker queue delay** — the submit→start gap the parallel executor
  stamps onto every cell span (a slow cell that spent its life waiting
  in the pool queue is a scheduling problem, not a compute one),
- **cache traffic** — the per-cell hit/miss delta of the artifact cache
  counters (a cold cell re-parses; a warm one shouldn't),
- **simulated cost** — when the sweep's JSON payload is given, the
  matching Cedar-side attribution: the :class:`~repro.trace.ledger.
  CycleLedger` group breakdown for experiments, degradation factors for
  fault-oracle cells, per-config statuses for validation cells, plus any
  harness fault reports.

Cells are matched to payload records by the label conventions the
harnesses already use (``experiment <name>``, ``validate <name>``,
``<workload> baseline``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

#: ledger groups in rendering order (mirrors trace.ledger.HIERARCHY)
_LEDGER_GROUPS = ("processor", "parallel_overhead", "memory", "paging",
                  "degradation")


def load_metrics(path: str | os.PathLike) -> dict:
    """Load a ``repro-metrics/1`` payload from a file or session dir."""
    p = Path(path)
    if p.is_dir():
        p = p / "metrics.json"
    if not p.exists():
        raise FileNotFoundError(
            f"{p}: no metrics.json — run a harness with --telemetry "
            f"first (and let it finalize)")
    payload = json.loads(p.read_text())
    if payload.get("schema") != "repro-metrics/1":
        raise ValueError(f"{p}: not a repro-metrics/1 payload "
                         f"(schema={payload.get('schema')!r})")
    return payload


# ---------------------------------------------------------------------------
# sweep-payload joins (label conventions → simulated-side records)


def _join_experiment(sweep: dict, name: str) -> Optional[dict]:
    table = (sweep.get("experiments") or {}).get(name)
    if not isinstance(table, dict):
        return None
    sim: dict = {"kind": "experiment", "name": name}
    trace = (table.get("meta") or {}).get("trace") or {}
    workloads: dict = {}
    groups_total: dict = {}
    cycles = 0.0
    for wname, entry in trace.items():
        if not isinstance(entry, dict):
            continue
        breakdown = entry.get("parallel_breakdown") or {}
        groups = {g: (breakdown.get("groups") or {}).get(g, {})
                  .get("total", 0.0) for g in _LEDGER_GROUPS}
        workloads[wname] = {
            "speedup": entry.get("speedup"),
            "parallel_cycles": entry.get("parallel_cycles"),
            "groups": groups,
        }
        cycles += entry.get("parallel_cycles") or 0.0
        for g, v in groups.items():
            groups_total[g] = groups_total.get(g, 0.0) + v
    if workloads:
        sim["workloads"] = workloads
        sim["parallel_cycles"] = cycles
        sim["groups"] = groups_total
    return sim


def _join_validate(sweep: dict, workload: str) -> Optional[dict]:
    for wd in sweep.get("workloads") or ():
        if isinstance(wd, dict) and wd.get("workload") == workload:
            configs = {c.get("config"): c.get("status")
                       for c in wd.get("configs") or ()}
            return {"kind": "validate", "workload": workload,
                    "configs": configs,
                    "ok": all(s == "ok" for s in configs.values())}
    return None


def _join_faults(sweep: dict, workload: str) -> Optional[dict]:
    runs = [r for r in sweep.get("runs") or ()
            if isinstance(r, dict) and r.get("workload") == workload]
    if not runs:
        return None
    return {"kind": "faults", "workload": workload,
            "runs": [{"scenario": r.get("scenario"),
                      "degradation": r.get("degradation"),
                      "bound": r.get("bound"),
                      "fault_cycles": r.get("fault_cycles"),
                      "ok": r.get("ok")} for r in runs]}


def _join_sim(sweep: Optional[dict], label: str) -> Optional[dict]:
    if not sweep or not label:
        return None
    tag = str(sweep.get("schema", ""))
    if label.startswith("experiment ") \
            and tag.startswith("repro-experiment/"):
        return _join_experiment(sweep, label[len("experiment "):])
    if label.startswith("validate ") and tag.startswith("repro-validate/"):
        return _join_validate(sweep, label[len("validate "):])
    if label.endswith(" baseline") and tag.startswith("repro-faults/"):
        return _join_faults(sweep, label[:-len(" baseline")])
    return None


def _cell_faults(sweep: Optional[dict], label: str) -> list[dict]:
    """Harness fault reports whose label matches this cell."""
    if not sweep:
        return []
    out = []
    for fd in sweep.get("faults") or ():
        if not isinstance(fd, dict):
            continue
        flabel = str(fd.get("label", ""))
        if flabel and (flabel == label or flabel in label
                       or label.startswith(flabel)):
            out.append({"kind": fd.get("kind"),
                        "error_type": fd.get("error_type"),
                        "message": fd.get("message")})
    return out


# ---------------------------------------------------------------------------
# the join itself


def correlate(metrics_payload: dict,
              sweep: Optional[dict] = None) -> list[dict]:
    """One attribution row per sweep cell, ordered by cell index."""
    spans = metrics_payload.get("spans") or []
    rows: list[dict] = []
    by_cell: dict[int, dict] = {}
    for s in spans:
        if s.get("name") != "cell" or s.get("cell") is None:
            continue
        label = (s.get("attrs") or {}).get("label", "")
        row = {
            "cell": s["cell"],
            "label": label,
            "pid": s.get("pid"),
            "host_s": s.get("duration_s", 0.0),
            "queue_delay_s": s.get("queue_delay_s"),
            "cache": s.get("cache") or {},
            "error": s.get("error"),
            "stages": {},
            "sim": _join_sim(sweep, label),
            "faults": _cell_faults(sweep, label),
        }
        by_cell[s["cell"]] = row
        rows.append(row)
    # child stage spans: host time inside the cell, by stage name
    for s in spans:
        cell = s.get("cell")
        if s.get("name") == "cell" or cell is None:
            continue
        row = by_cell.get(cell)
        if row is None:
            continue
        st = row["stages"].setdefault(
            s["name"], {"count": 0, "total_s": 0.0})
        st["count"] += 1
        st["total_s"] += s.get("duration_s", 0.0)
    rows.sort(key=lambda r: r["cell"])
    return rows


def slow_reason(row: dict) -> str:
    """The one-phrase attribution verdict for a cell."""
    if row.get("error"):
        return f"crashed: {row['error']}"
    notes = []
    host = row.get("host_s") or 0.0
    queue = row.get("queue_delay_s")
    if queue is not None and host > 0 and queue > max(0.05, 0.5 * host):
        notes.append(f"queued {queue:.2f}s before a worker picked it up")
    cache = row.get("cache") or {}
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    if misses > 0 and misses >= hits:
        notes.append(f"cold cache ({_fmt_n(misses)} miss(es))")
    stages = row.get("stages") or {}
    if stages and host > 0:
        top, st = max(stages.items(), key=lambda kv: kv[1]["total_s"])
        if st["total_s"] > 0.5 * host:
            notes.append(f"dominated by {top} "
                         f"({st['total_s'] / host * 100:.0f}% of host time)")
    sim = row.get("sim")
    if sim and sim.get("kind") == "experiment" and sim.get("groups"):
        groups = sim["groups"]
        total = sum(groups.values())
        if total > 0:
            g, v = max(groups.items(), key=lambda kv: kv[1])
            notes.append(f"simulated cycles mostly {g} "
                         f"({v / total * 100:.0f}%)")
    if sim and sim.get("kind") == "faults":
        worst = max(sim["runs"],
                    key=lambda r: r.get("degradation") or 0.0)
        if (worst.get("degradation") or 0) > 1.5:
            notes.append(f"worst fault degradation "
                         f"x{worst['degradation']:.2f} "
                         f"({worst['scenario']})")
    if row.get("faults"):
        notes.append(f"{len(row['faults'])} harness fault(s)")
    return "; ".join(notes) if notes else "nothing anomalous"


# ---------------------------------------------------------------------------
# rendering


def _fmt_s(v) -> str:
    if v is None:
        return "-"
    return f"{v:.3f}" if v >= 0.001 or v == 0 else f"{v:.1e}"


def _fmt_n(v) -> str:
    """Counter values merge as floats; render whole counts as ints."""
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return str(v)


def render(rows: list[dict], cell: Optional[int] = None) -> str:
    """The attribution table (or one cell's detail view)."""
    if cell is not None:
        rows = [r for r in rows if r["cell"] == cell]
        if not rows:
            return f"no cell {cell} in this telemetry session"
        return _render_detail(rows[0])
    if not rows:
        return ("no sweep cells in this telemetry session "
                "(was the harness run with --telemetry?)")
    lines = ["per-cell attribution "
             "(host time x queue delay x cache x simulated cost)"]
    label_w = min(28, max(len(r["label"]) for r in rows) or 5)
    lines.append(f"  {'cell':>4} {'label':<{label_w}} {'host_s':>8} "
                 f"{'queue_s':>8} {'cache':>7}  attribution")
    for r in rows:
        cache = r.get("cache") or {}
        ch = (f"{_fmt_n(cache.get('hits', 0))}h/"
              f"{_fmt_n(cache.get('misses', 0))}m")
        label = r["label"][:label_w]
        lines.append(f"  {r['cell']:>4} {label:<{label_w}} "
                     f"{_fmt_s(r.get('host_s')):>8} "
                     f"{_fmt_s(r.get('queue_delay_s')):>8} "
                     f"{ch:>7}  {slow_reason(r)}")
    return "\n".join(lines)


def _render_detail(row: dict) -> str:
    lines = [f"cell {row['cell']}: {row['label'] or '(unlabelled)'}"
             f"  [pid {row.get('pid')}]"]
    lines.append(f"  host time     {_fmt_s(row.get('host_s'))}s")
    lines.append(f"  queue delay   {_fmt_s(row.get('queue_delay_s'))}s"
                 f"  (submit -> worker start)")
    cache = row.get("cache") or {}
    lines.append(f"  cache         {_fmt_n(cache.get('hits', 0))} "
                 f"hit(s), {_fmt_n(cache.get('misses', 0))} miss(es)")
    if row.get("error"):
        lines.append(f"  error         {row['error']}")
    stages = row.get("stages") or {}
    if stages:
        lines.append("  host stages:")
        host = row.get("host_s") or 0.0
        for name, st in sorted(stages.items(),
                               key=lambda kv: -kv[1]["total_s"]):
            pct = f" ({st['total_s'] / host * 100:5.1f}%)" if host else ""
            lines.append(f"    {name:<22} {st['total_s']:>9.4f}s "
                         f"x{st['count']}{pct}")
    sim = row.get("sim")
    if sim is None:
        lines.append("  simulated side: (no --sweep payload joined)")
    elif sim["kind"] == "experiment":
        lines.append(f"  simulated side: experiment {sim['name']}")
        groups = sim.get("groups") or {}
        total = sum(groups.values())
        if total > 0:
            for g in _LEDGER_GROUPS:
                v = groups.get(g, 0.0)
                if v:
                    lines.append(f"    {g:<22} {v:>14.0f} cycles "
                                 f"({v / total * 100:5.1f}%)")
        for wname, w in (sim.get("workloads") or {}).items():
            sp = w.get("speedup")
            lines.append(f"    {wname}: speedup "
                         f"{sp:.2f}" if sp is not None
                         else f"    {wname}")
    elif sim["kind"] == "validate":
        ok = "ok" if sim.get("ok") else "NOT OK"
        lines.append(f"  simulated side: validate {sim['workload']} "
                     f"-> {ok}")
        for cname, status in (sim.get("configs") or {}).items():
            lines.append(f"    {cname:<22} {status}")
    elif sim["kind"] == "faults":
        lines.append(f"  simulated side: fault oracle "
                     f"{sim['workload']}")
        for r in sim["runs"]:
            deg = r.get("degradation")
            lines.append(
                f"    {r['scenario']:<22} "
                f"x{deg:.3f}" + (f" (bound x{r['bound']:.2f})"
                                 if r.get("bound") else "")
                + ("" if r.get("ok") else "  NOT OK"))
    for fd in row.get("faults") or ():
        lines.append(f"  harness fault: ({fd.get('kind')}) "
                     f"{fd.get('error_type')}: {fd.get('message')}")
    lines.append(f"  verdict: {slow_reason(row)}")
    return "\n".join(lines)
