"""The regression sentinel: a statistical gate over the bench history.

``python -m repro.obs check`` compares the *candidate* (the newest
history entry, or payloads given via ``--current``) against the
*baseline* (every earlier same-fingerprint entry) one metric at a time:

1. **Ratio gate** — the relative change of the candidate's center
   (median of its samples) versus the baseline median must stay inside
   the metric's threshold, signed by the metric's direction
   (``host_seconds/*`` regress upward, ``*_speedup`` regress downward).
2. **Statistical confirmation** — a tripped ratio gate alone does not
   fail the check on a noisy wall clock.  With enough samples on both
   sides the one-sided Mann-Whitney U test (normal approximation with
   tie correction — the environment has no scipy) must reject "same
   distribution" at ``alpha``; with a small candidate a seeded
   bootstrap confidence interval of the baseline median must exclude
   the candidate on the worse side.  Only a *confirmed* shift is a
   regression; an unconfirmed trip is reported as ``suspect`` and does
   not fail the gate.

Thresholds are per-metric-pattern (fnmatch) and overridable from the
CLI (``--threshold 'host_seconds/*=0.5'``).  Baselines are restricted
to the candidate's machine fingerprint unless ``--all-hosts`` — you
cannot regress by benchmarking on a slower laptop.
"""

from __future__ import annotations

import math
from fnmatch import fnmatchcase
from typing import Iterable, Optional, Sequence

from repro.obs import history as hist

#: significance level of the confirmation tests
DEFAULT_ALPHA = 0.05

#: minimum per-side samples for the Mann-Whitney path
MIN_MW_SAMPLES = 4

#: minimum baseline samples for the bootstrap-CI path (below this the
#: ratio gate alone decides)
MIN_BOOTSTRAP_SAMPLES = 3

#: (pattern, direction, relative threshold) — first match wins.
#: Wall-clock metrics get generous thresholds (CI runners are noisy);
#: ratios are tighter because they self-normalize.
DEFAULT_GATES: tuple[tuple[str, str, float], ...] = (
    ("host_seconds/*", "higher_worse", 0.30),
    ("stage_seconds/*", "higher_worse", 0.35),
    ("latency/*", "higher_worse", 0.35),
    ("cell_seconds/*", "higher_worse", 0.35),
    ("cache_hit_rate/*", "lower_worse", 0.10),
    ("*_speedup", "lower_worse", 0.25),
)

_DIRECTIONS = ("higher_worse", "lower_worse")


def gate_for(metric: str,
             overrides: Optional[dict] = None) -> Optional[tuple[str, float]]:
    """(direction, threshold) for one metric; ``None`` == ungated.

    ``overrides`` maps patterns to thresholds; an override hits the
    first matching *default* gate's direction (a metric no default gate
    knows defaults to ``higher_worse``).
    """
    direction = None
    threshold = None
    for pattern, d, t in DEFAULT_GATES:
        if fnmatchcase(metric, pattern):
            direction, threshold = d, t
            break
    if overrides:
        for pattern, t in overrides.items():
            if fnmatchcase(metric, pattern):
                threshold = t
                if direction is None:
                    direction = "higher_worse"
                break
    if direction is None or threshold is None:
        return None
    return direction, threshold


# ---------------------------------------------------------------------------
# statistics (stdlib/numpy only — no scipy in the environment)


def median(xs: Sequence[float]) -> float:
    s = sorted(xs)
    n = len(s)
    if n == 0:
        return math.nan
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def mann_whitney_p(baseline: Sequence[float], candidate: Sequence[float],
                   worse_is_greater: bool) -> float:
    """One-sided Mann-Whitney U p-value: "candidate shifted worse".

    Normal approximation with tie correction and continuity correction
    — adequate for the sample counts a bench history accumulates, and
    dependency-free.  Returns 1.0 on degenerate inputs.
    """
    n1, n2 = len(baseline), len(candidate)
    if n1 == 0 or n2 == 0:
        return 1.0
    # U = pairs where the candidate value is on the *worse* side
    u = 0.0
    for c in candidate:
        for b in baseline:
            if c == b:
                u += 0.5
            elif (c > b) == worse_is_greater:
                u += 1.0
    mu = n1 * n2 / 2.0
    # tie correction over the pooled sample
    pooled = sorted(list(baseline) + list(candidate))
    n = n1 + n2
    tie_term = 0.0
    i = 0
    while i < n:
        j = i
        while j < n and pooled[j] == pooled[i]:
            j += 1
        t = j - i
        tie_term += t ** 3 - t
        i = j
    var = (n1 * n2 / 12.0) * ((n + 1) - tie_term / (n * (n - 1))) \
        if n > 1 else 0.0
    if var <= 0.0:
        return 1.0 if u <= mu else 0.0
    z = (u - mu - 0.5) / math.sqrt(var)
    return max(0.0, min(1.0, 1.0 - _phi(z)))


def bootstrap_ci(xs: Sequence[float], confidence: float = 0.95,
                 n_boot: int = 500, seed: int = 0) -> tuple[float, float]:
    """Seeded bootstrap CI of the median (deterministic run-to-run)."""
    import numpy as np

    arr = np.asarray(list(xs), dtype=float)
    if arr.size == 0:
        return (math.nan, math.nan)
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    stats = np.sort(np.median(arr[idx], axis=1))
    lo_q = (1.0 - confidence) / 2.0
    lo = float(np.quantile(stats, lo_q))
    hi = float(np.quantile(stats, 1.0 - lo_q))
    return (lo, hi)


# ---------------------------------------------------------------------------
# verdicts


def check_metric(metric: str, baseline: Sequence[float],
                 candidate: Sequence[float], direction: str,
                 threshold: float,
                 alpha: float = DEFAULT_ALPHA) -> dict:
    """Gate one metric; returns the verdict record."""
    if direction not in _DIRECTIONS:
        raise ValueError(f"unknown direction {direction!r}")
    v: dict = {
        "metric": metric, "direction": direction,
        "threshold": threshold,
        "n_baseline": len(baseline), "n_candidate": len(candidate),
        "baseline": median(baseline) if baseline else None,
        "candidate": median(candidate) if candidate else None,
    }
    if not candidate:
        v.update(status="no_candidate", method="none")
        return v
    if not baseline:
        v.update(status="no_baseline", method="none")
        return v
    base_c, cand_c = v["baseline"], v["candidate"]
    denom = abs(base_c)
    change = (cand_c - base_c) / denom if denom > 1e-12 else 0.0
    degradation = change if direction == "higher_worse" else -change
    v["change"] = change
    v["degradation"] = degradation
    if degradation <= threshold:
        v.update(status="improved" if degradation < -threshold else "ok",
                 method="ratio")
        return v
    # the ratio gate tripped: demand statistical confirmation
    worse_is_greater = direction == "higher_worse"
    if len(baseline) >= MIN_MW_SAMPLES \
            and len(candidate) >= MIN_MW_SAMPLES:
        p = mann_whitney_p(baseline, candidate, worse_is_greater)
        v.update(method="mann_whitney", p_value=p,
                 status="regression" if p < alpha else "suspect")
        return v
    if len(baseline) >= MIN_BOOTSTRAP_SAMPLES:
        lo, hi = bootstrap_ci(baseline)
        v.update(method="bootstrap_ci", ci=[lo, hi])
        outside = cand_c > hi if worse_is_greater else cand_c < lo
        v["status"] = "regression" if outside else "suspect"
        return v
    # a one- or two-sample baseline: the ratio gate alone decides
    v.update(method="ratio", status="regression")
    return v


def check_history(entries: Sequence[dict],
                  current: Optional[dict] = None, *,
                  thresholds: Optional[dict] = None,
                  alpha: float = DEFAULT_ALPHA,
                  metrics: Optional[Iterable[str]] = None,
                  all_hosts: bool = False,
                  last: Optional[int] = None) -> dict:
    """Run the gate over a loaded history.

    ``current`` names the candidate entry explicitly (e.g. built from
    ``--current`` payloads); otherwise the newest entry is the
    candidate and everything before it the baseline.  Baseline entries
    are restricted to the candidate's fingerprint unless ``all_hosts``;
    ``last`` keeps only the N newest baseline entries.
    """
    entries = list(entries)
    if current is None:
        if not entries:
            return {"ok": True, "verdicts": [], "regressions": 0,
                    "suspects": 0, "candidate_fingerprint": None,
                    "baseline_entries": 0,
                    "note": "empty history: nothing to check"}
        candidate = entries[-1]
        baseline_entries = entries[:-1]
    else:
        candidate = current
        baseline_entries = entries
    fp = candidate.get("fingerprint")
    if not all_hosts:
        baseline_entries = [e for e in baseline_entries
                            if e.get("fingerprint") == fp]
    if last is not None and last > 0:
        baseline_entries = baseline_entries[-last:]

    patterns = list(metrics) if metrics else None

    def _selected(name: str) -> bool:
        return patterns is None or any(
            fnmatchcase(name, p) for p in patterns)

    verdicts: list[dict] = []
    for name in sorted((candidate.get("metrics") or {}).keys()):
        if not _selected(name):
            continue
        gate = gate_for(name, thresholds)
        if gate is None:
            continue
        direction, threshold = gate
        base: list[float] = []
        for e in baseline_entries:
            base.extend(hist.samples(e, name))
        verdicts.append(check_metric(
            name, base, hist.samples(candidate, name),
            direction, threshold, alpha=alpha))
    regressions = sum(1 for v in verdicts if v["status"] == "regression")
    suspects = sum(1 for v in verdicts if v["status"] == "suspect")
    return {
        "ok": regressions == 0,
        "candidate_fingerprint": fp,
        "candidate_git": candidate.get("git"),
        "baseline_entries": len(baseline_entries),
        "alpha": alpha,
        "verdicts": verdicts,
        "regressions": regressions,
        "suspects": suspects,
    }


# ---------------------------------------------------------------------------
# rendering


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 0.01:
            return f"{v:.3g}"
        return f"{v:.2e}"
    return str(v)


def render_check(report: dict) -> str:
    """Human-readable verdict table."""
    lines: list[str] = []
    fp = report.get("candidate_fingerprint")
    git = report.get("candidate_git") or {}
    sha = (git.get("sha") or "")[:10] or "-"
    lines.append(
        f"regression check: candidate {sha}"
        f"{' (dirty)' if git.get('dirty') else ''} on host {fp or '-'}, "
        f"{report.get('baseline_entries', 0)} baseline entr"
        f"{'y' if report.get('baseline_entries') == 1 else 'ies'}")
    if report.get("note"):
        lines.append(f"  note: {report['note']}")
    verdicts = report.get("verdicts", [])
    if not verdicts:
        lines.append("  (no gated metrics to compare)")
    else:
        head = (f"  {'metric':<28} {'base':>9} {'cand':>9} "
                f"{'change':>8} {'thresh':>7} {'method':<13} status")
        lines.append(head)
        order = {"regression": 0, "suspect": 1, "no_baseline": 3,
                 "no_candidate": 3, "improved": 2, "ok": 4}
        for v in sorted(verdicts,
                        key=lambda v: (order.get(v["status"], 5),
                                       v["metric"])):
            change = v.get("change")
            chg = f"{change * 100:+.1f}%" if change is not None else "-"
            extra = ""
            if v.get("p_value") is not None:
                extra = f" p={v['p_value']:.3f}"
            elif v.get("ci") is not None:
                extra = (f" ci=[{_fmt(v['ci'][0])},"
                         f"{_fmt(v['ci'][1])}]")
            lines.append(
                f"  {v['metric']:<28} {_fmt(v['baseline']):>9} "
                f"{_fmt(v['candidate']):>9} {chg:>8} "
                f"{v['threshold'] * 100:>6.0f}% {v['method']:<13} "
                f"{v['status'].upper() if v['status'] == 'regression' else v['status']}"
                f"{extra}")
    tally = (f"{report.get('regressions', 0)} regression(s), "
             f"{report.get('suspects', 0)} suspect(s), "
             f"{len(verdicts)} metric(s) gated")
    lines.append(f"  => {'FAIL' if not report.get('ok') else 'ok'}: "
                 f"{tally}")
    return "\n".join(lines)


def parse_threshold_overrides(specs: Iterable[str]) -> dict:
    """Parse ``PATTERN=FRACTION`` CLI specs into an overrides dict."""
    out: dict = {}
    for spec in specs:
        pattern, sep, frac = spec.partition("=")
        if not sep or not pattern:
            raise ValueError(
                f"bad --threshold {spec!r} (expected PATTERN=FRACTION, "
                f"e.g. 'host_seconds/*=0.5')")
        try:
            value = float(frac)
        except ValueError:
            raise ValueError(
                f"bad --threshold {spec!r}: {frac!r} is not a number")
        if value < 0:
            raise ValueError(
                f"bad --threshold {spec!r}: must be >= 0")
        out[pattern] = value
    return out
