"""Append-only bench history: the ``repro-bench-history/1`` entry.

One *entry* summarizes one benchmarking session — usually one
``repro-bench-host/3`` payload, optionally joined by ``repro-metrics/1``
telemetry artifacts from the same run — as a flat metric dict, stamped
with the git revision and a machine fingerprint so samples from
different commits/hosts never get silently compared::

    {"schema": "repro-bench-history/1",
     "recorded_unix": 1754640000.0,
     "git": {"sha": "575c311...", "dirty": false},
     "host": {"python": "3.11.7", "platform": "Linux-...",
              "machine": "x86_64", "cpu_count": 8},
     "fingerprint": "9ae2c41b17d4",
     "sources": ["repro-bench-host/3"],
     "metrics": {"warm_speedup": 2.1,
                 "host_seconds/warm": [3.2, 3.3], ...}}

Metric values are a number or a list of numbers (samples); recording
several payloads of the same kind into one entry accumulates samples,
which is what gives the sentinel's statistical tests real distributions
to work with.  ``benchmarks/history/history.jsonl`` holds one entry per
line, append-only — the longitudinal record the regression sentinel
(:mod:`repro.obs.sentinel`) and trend report (:mod:`repro.obs.trend`)
read.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Iterable, Optional

SCHEMA_TAG = "repro-bench-history/1"

#: the default longitudinal record, relative to the repo root
DEFAULT_HISTORY = Path("benchmarks") / "history" / "history.jsonl"


# ---------------------------------------------------------------------------
# provenance stamps


def git_stamp(cwd: str | os.PathLike | None = None) -> dict:
    """``{"sha": ..., "dirty": ...}`` of the working tree, tolerant of
    running outside a git checkout (both fields become ``None``)."""
    def _run(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", *args], cwd=cwd, timeout=10,
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout.decode(errors="replace").strip()

    sha = _run("rev-parse", "HEAD")
    status = _run("status", "--porcelain") if sha else None
    return {"sha": sha or None,
            "dirty": bool(status) if status is not None else None}


def host_stamp() -> dict:
    """The attributable facts of the machine running the benchmark."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def fingerprint(host: dict) -> str:
    """A short stable id of a host stamp — entries from the same
    machine/interpreter compare; entries from different ones don't."""
    canon = json.dumps(host, sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# metric extraction


def _put(metrics: dict, name: str, value) -> None:
    """Accumulate one sample under ``name`` (scalars become lists on the
    second sample)."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return
    if name not in metrics:
        metrics[name] = value
        return
    prior = metrics[name]
    if not isinstance(prior, list):
        prior = [prior]
    prior.append(value)
    metrics[name] = prior


def extract_metrics(payload: dict, metrics: Optional[dict] = None) -> dict:
    """Flatten one bench/telemetry payload into history metrics.

    Understands ``repro-bench-host/1|2|3`` (run wall-clocks, cache,
    parallel and per-engine-tier speedups, latency percentiles) and
    ``repro-metrics/1`` (per-stage totals, cell-latency percentiles,
    cache hit rates).  Unknown schemas contribute nothing (and an empty
    result is the caller's cue to reject the file).
    """
    out = metrics if metrics is not None else {}
    tag = str(payload.get("schema", ""))
    if tag.startswith("repro-bench-host/"):
        for name, rec in (payload.get("runs") or {}).items():
            if isinstance(rec, dict):
                _put(out, f"host_seconds/{name}", rec.get("seconds"))
        cache = payload.get("cache") or {}
        _put(out, "warm_speedup", cache.get("warm_speedup"))
        _put(out, "compile_speedup", cache.get("compile_speedup"))
        par = payload.get("parallel") or {}
        _put(out, "parallel_speedup", par.get("parallel_speedup"))
        # /3: the engine-tier speedups (source-JIT vs tree / vs the
        # closure tier); the seconds already travel via host_seconds/*
        for name, val in (payload.get("engines") or {}).items():
            if name.endswith("_speedup"):
                _put(out, name, val)
        base = payload.get("baseline") or {}
        _put(out, "end_to_end_speedup", base.get("end_to_end_speedup"))
        for run, lat in (payload.get("latency") or {}).items():
            if isinstance(lat, dict):
                for q in ("p50_s", "p95_s", "p99_s"):
                    _put(out, f"latency/{run}/{q}", lat.get(q))
    elif tag == "repro-metrics/1":
        summary = payload.get("summary") or {}
        for stage, st in (summary.get("stages") or {}).items():
            if isinstance(st, dict):
                _put(out, f"stage_seconds/{stage}", st.get("total_s"))
        for kind, slot in (summary.get("cache") or {}).items():
            if isinstance(slot, dict):
                _put(out, f"cache_hit_rate/{kind}",
                     slot.get("hit_rate"))
        for h in (payload.get("metrics") or {}).get("histograms", ()):
            if h.get("name") == "repro_cell_seconds" \
                    and not h.get("labels"):
                for q in ("p50", "p95", "p99"):
                    _put(out, f"cell_seconds/{q}", h.get(q))
    return out


# ---------------------------------------------------------------------------
# entries


def build_entry(payloads: Iterable[dict], *, note: Optional[str] = None,
                git: Optional[dict] = None, host: Optional[dict] = None,
                now: Optional[float] = None) -> dict:
    """Assemble one history entry from parsed payload dicts.

    Raises :class:`ValueError` when no payload yields a single metric —
    an empty entry would silently rot the history.
    """
    payloads = list(payloads)
    metrics: dict = {}
    sources: list[str] = []
    for p in payloads:
        before = len(metrics)
        extract_metrics(p, metrics)
        tag = str(p.get("schema", "?"))
        sources.append(tag)
        if len(metrics) == before and not any(
                isinstance(v, list) for v in metrics.values()):
            pass    # tolerated: a later payload may still contribute
    if not metrics:
        tags = ", ".join(sources) or "none"
        raise ValueError(
            f"no recordable metrics in the given payload(s) "
            f"(schemas: {tags}); expected repro-bench-host/2|3 or "
            f"repro-metrics/1 documents")
    host = host if host is not None else host_stamp()
    entry = {
        "schema": SCHEMA_TAG,
        "recorded_unix": float(now if now is not None else time.time()),
        "git": git if git is not None else git_stamp(),
        "host": host,
        "fingerprint": fingerprint(host),
        "sources": sources,
        "metrics": metrics,
    }
    if note:
        entry["note"] = note
    return entry


def validate_entry(entry) -> list[str]:
    """Shape-check one entry; returns violations (empty == valid)."""
    errs: list[str] = []
    if not isinstance(entry, dict):
        return ["$: entry must be an object"]
    if entry.get("schema") != SCHEMA_TAG:
        errs.append(f"$.schema: expected {SCHEMA_TAG!r}, "
                    f"got {entry.get('schema')!r}")
    if not isinstance(entry.get("recorded_unix"), (int, float)):
        errs.append("$.recorded_unix: must be a unix timestamp")
    git = entry.get("git")
    if not isinstance(git, dict):
        errs.append("$.git: must be an object")
    else:
        if not (git.get("sha") is None or isinstance(git["sha"], str)):
            errs.append("$.git.sha: must be a string or null")
        if not (git.get("dirty") is None
                or isinstance(git["dirty"], bool)):
            errs.append("$.git.dirty: must be a boolean or null")
    host = entry.get("host")
    if not isinstance(host, dict):
        errs.append("$.host: must be an object")
    else:
        for key in ("python", "platform", "cpu_count"):
            if key not in host:
                errs.append(f"$.host: missing {key!r}")
    fp = entry.get("fingerprint")
    if not (isinstance(fp, str) and fp):
        errs.append("$.fingerprint: must be a nonempty string")
    elif isinstance(host, dict) and fp != fingerprint(host):
        errs.append("$.fingerprint: does not match the host stamp")
    metrics = entry.get("metrics")
    if not (isinstance(metrics, dict) and metrics):
        errs.append("$.metrics: must be a nonempty object")
    else:
        for name, v in metrics.items():
            vals = v if isinstance(v, list) else [v]
            if not vals or not all(
                    isinstance(x, (int, float))
                    and not isinstance(x, bool) for x in vals):
                errs.append(f"$.metrics.{name}: must be a number or a "
                            f"nonempty list of numbers")
    return errs


def samples(entry: dict, metric: str) -> list[float]:
    """The sample list of one metric in one entry ([] when absent)."""
    v = (entry.get("metrics") or {}).get(metric)
    if v is None:
        return []
    return [float(x) for x in (v if isinstance(v, list) else [v])]


# ---------------------------------------------------------------------------
# the JSONL file


def append_entry(path: str | os.PathLike, entry: dict) -> None:
    """Append one entry to the history file (created on first use)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_history(path: str | os.PathLike) -> list[dict]:
    """Read every valid entry, oldest first; torn/invalid lines are
    skipped (append-only files on crashing machines have torn tails)."""
    p = Path(path)
    if not p.exists():
        return []
    entries: list[dict] = []
    for raw in p.read_text().splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and entry.get("schema") == SCHEMA_TAG:
            entries.append(entry)
    return entries


def metric_names(entries: Iterable[dict]) -> list[str]:
    """Every metric name appearing anywhere in the history, sorted."""
    names: set[str] = set()
    for e in entries:
        names.update((e.get("metrics") or {}).keys())
    return sorted(names)
