"""repro.obs — the longitudinal/forensic observability plane.

Where :mod:`repro.trace`/:mod:`repro.prof` observe the *simulated*
machine and :mod:`repro.telemetry` observes one run of the *host*
pipeline, this package watches runs **over time** and **explains**
them:

- :mod:`repro.obs.history` + :mod:`repro.obs.sentinel` — an append-only
  bench history (``repro-bench-history/1``) of ``repro-bench-host/2``
  and ``repro-metrics/1`` payloads, stamped with git SHA + machine
  fingerprint, gated by a statistical regression sentinel
  (Mann-Whitney / bootstrap CI with per-metric thresholds);
- :mod:`repro.obs.explain` — the cross-layer "why was this slow" join:
  host span time × simulated cycle categories × cache hit/miss ×
  worker queue delay, per sweep cell;
- :mod:`repro.obs.log` — structured JSONL logging with levels and
  telemetry-correlated ids, a true no-op while unconfigured;
- :mod:`repro.obs.flight` — the crash flight recorder: a bounded ring
  of recent log/span events dumped into fault reports.

CLI: ``python -m repro.obs record|check|report|explain``.
"""

from repro.obs.log import configure as configure_logging
from repro.obs.log import configure_from_env as configure_logging_from_env
from repro.obs.log import enabled as logging_enabled
from repro.obs.log import get_logger
from repro.obs.log import shutdown as shutdown_logging

__all__ = [
    "configure_logging",
    "configure_logging_from_env",
    "get_logger",
    "logging_enabled",
    "shutdown_logging",
]
