"""Structured JSONL logging for the repro harnesses.

One log record is one JSON object on one line::

    {"t": 1754640000.1, "level": "info", "subsystem": "validate",
     "event": "workload_done", "pid": 4242,
     "trace_id": "9f0c...", "span": "4242-17", "cell": 3,
     "fields": {"workload": "TRFD", "ok": true}}

Design rules, in order of importance:

- **Off is free.**  Logging is opt-in (``--log-level LEVEL`` on the
  sweep CLIs, or ``REPRO_LOG=LEVEL``); while off, every logger method is
  a single ``is None`` check — no allocation, no formatting, no I/O —
  so instrumented code paths behave exactly as uninstrumented ones and
  sweep JSON payloads stay byte-identical either way.
- **Correlated with telemetry.**  When a telemetry session is active,
  every record carries the session ``trace_id``, the innermost open
  span id, and the current sweep-cell index — the exact same identifiers
  the ``repro-metrics/1`` span log uses, so a log line joins against its
  span with no guessing.
- **Fork-safe.**  ``--jobs`` workers inherit the configured state; the
  sink is opened in append mode and every record is one ``write()`` of
  one line, so interleaved worker output stays line-atomic on POSIX.
- **Crash-context capture.**  Every record (regardless of level
  threshold) is also pushed into the :mod:`repro.obs.flight` ring
  buffer, which crash reports dump as their last-N-events context.

The default sink is ``<telemetry dir>/log.jsonl`` when a telemetry
session is active, else stderr; ``REPRO_LOG_FILE`` overrides either.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional, TextIO

#: level name -> numeric threshold (records below the configured
#: threshold are ring-buffered but not written)
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _LogState:
    """Per-process logging session (shared via fork with workers)."""

    __slots__ = ("level", "levelno", "path", "fh", "owns_fh")

    def __init__(self, level: str, levelno: int, path: Optional[str],
                 fh: TextIO, owns_fh: bool):
        self.level = level
        self.levelno = levelno
        self.path = path
        self.fh = fh
        self.owns_fh = owns_fh


_STATE: Optional[_LogState] = None


def enabled() -> bool:
    """True when logging is configured in this process."""
    return _STATE is not None


def level() -> Optional[str]:
    return _STATE.level if _STATE is not None else None


def configure(level: str = "info", path: str | os.PathLike | None = None,
              flight_capacity: int | None = None) -> None:
    """Start a logging session at ``level``, writing to ``path``.

    ``path=None`` writes to stderr.  Also enables the flight recorder
    (ring buffer of recent events) — the two are one feature: when you
    can log, crashes can explain themselves.  Raises :class:`ValueError`
    on an unknown level name.
    """
    global _STATE
    lvl = str(level).lower()
    if lvl not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r} (choose from "
            f"{', '.join(LEVELS)})")
    shutdown()
    if path is not None:
        p = os.fspath(path)
        os.makedirs(os.path.dirname(p) or ".", exist_ok=True)
        fh = open(p, "a", buffering=1)
        _STATE = _LogState(lvl, LEVELS[lvl], p, fh, owns_fh=True)
    else:
        _STATE = _LogState(lvl, LEVELS[lvl], None, sys.stderr,
                           owns_fh=False)
    os.environ["REPRO_LOG"] = lvl
    from repro.obs import flight

    if flight_capacity is not None:
        flight.enable(flight_capacity)
    else:
        flight.enable()


def configure_from_env() -> bool:
    """Join/start the session named by ``REPRO_LOG``, if any.

    An unknown level in the environment degrades to ``info`` (with a
    stderr note) rather than killing the harness.
    """
    lvl = os.environ.get("REPRO_LOG")
    if not lvl:
        return False
    if _STATE is not None and _STATE.level == lvl.lower():
        return True
    if lvl.lower() not in LEVELS:
        print(f"[repro.obs.log] unknown REPRO_LOG level {lvl!r}; "
              f"using 'info'", file=sys.stderr)
        lvl = "info"
    configure(lvl.lower(), os.environ.get("REPRO_LOG_FILE") or None)
    return True


def shutdown() -> None:
    """End the session (close an owned sink, disable the recorder)."""
    global _STATE
    st = _STATE
    _STATE = None
    os.environ.pop("REPRO_LOG", None)
    if st is not None and st.owns_fh:
        try:
            st.fh.close()
        except OSError:
            pass
    from repro.obs import flight

    flight.disable()


# ---------------------------------------------------------------------------
# loggers


class Logger:
    """A named, level-filtered emitter of structured records.

    Instances are cheap and process-wide (see :func:`get_logger`); every
    method is a no-op while logging is unconfigured.
    """

    __slots__ = ("subsystem",)

    def __init__(self, subsystem: str):
        self.subsystem = subsystem

    def debug(self, event: str, **fields) -> None:
        if _STATE is not None:
            self._emit("debug", 10, event, fields)

    def info(self, event: str, **fields) -> None:
        if _STATE is not None:
            self._emit("info", 20, event, fields)

    def warning(self, event: str, **fields) -> None:
        if _STATE is not None:
            self._emit("warning", 30, event, fields)

    def error(self, event: str, **fields) -> None:
        if _STATE is not None:
            self._emit("error", 40, event, fields)

    def _emit(self, level: str, levelno: int, event: str,
              fields: dict) -> None:
        st = _STATE
        if st is None:  # raced a shutdown
            return
        rec: dict = {
            "t": time.time(),
            "level": level,
            "subsystem": self.subsystem,
            "event": event,
            "pid": os.getpid(),
        }
        # correlation with the active telemetry session, if any: the
        # same trace id / span id / cell index the span log carries
        from repro.telemetry import spans as spanmod

        ts = spanmod._STATE
        if ts is not None:
            rec["trace_id"] = ts.trace_id
            if ts.stack:
                rec["span"] = ts.stack[-1]
            if ts.cell is not None:
                rec["cell"] = ts.cell
        if fields:
            rec["fields"] = fields
        from repro.obs import flight

        flight.record(rec)
        if levelno < st.levelno:
            return
        try:
            st.fh.write(json.dumps(rec, sort_keys=True, default=str)
                        + "\n")
        except (OSError, ValueError):
            pass    # a dead sink must never kill a sweep


_LOGGERS: dict[str, Logger] = {}


def get_logger(subsystem: str) -> Logger:
    """The process-wide logger named ``subsystem`` (created on first
    use).  Safe to call at import time: the logger itself holds no
    session state, so it works across configure/shutdown cycles."""
    lg = _LOGGERS.get(subsystem)
    if lg is None:
        lg = _LOGGERS[subsystem] = Logger(subsystem)
    return lg
