"""ASCII trend report over the bench history.

``python -m repro.obs report`` renders one sparkline row per metric:
the per-entry centers (median of each entry's samples) over time, scaled
to the metric's own min..max band, newest on the right::

    warm_speedup                  [.:==+*#%@]  3.71 -> 4.02  (+8.4%)
    host_seconds/cold             [@%#*+=::.]  5.12 -> 4.60  (-10.2%)

Pure text on purpose: it renders in CI logs, over ssh, and inside the
uploaded trend artifact without a plotting stack.
"""

from __future__ import annotations

import time
from fnmatch import fnmatchcase
from typing import Iterable, Optional, Sequence

from repro.obs import history as hist
from repro.obs.sentinel import median

#: the density ramp sparklines sample (terminal-safe ASCII, dark → bright;
#: space is reserved for missing values)
SPARK_RAMP = ".:-=+*#%@"

#: widest a sparkline gets before entries are right-truncated
MAX_WIDTH = 48


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render values as a density-ramp string, oldest first.

    A flat series renders mid-ramp; NaNs render as spaces.  ``width``
    caps the output by keeping the *newest* values.
    """
    vals = list(values)
    if width is not None and width > 0 and len(vals) > width:
        vals = vals[-width:]
    if not vals:
        return ""
    finite = [v for v in vals if v == v]    # drop NaN
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    mid = SPARK_RAMP[len(SPARK_RAMP) // 2]
    out = []
    for v in vals:
        if v != v:
            out.append(" ")
        elif span <= 0:
            out.append(mid)
        else:
            idx = int((v - lo) / span * (len(SPARK_RAMP) - 1))
            out.append(SPARK_RAMP[idx])
    return "".join(out)


def metric_series(entries: Sequence[dict], metric: str) -> list[float]:
    """Per-entry centers of one metric, oldest first; entries without
    the metric contribute NaN (a gap in the sparkline)."""
    series: list[float] = []
    for e in entries:
        xs = hist.samples(e, metric)
        series.append(median(xs) if xs else float("nan"))
    return series


def _fmt_val(v: float) -> str:
    if v != v:
        return "-"
    if v == 0:
        return "0"
    if abs(v) >= 100:
        return f"{v:.0f}"
    if abs(v) >= 0.01:
        return f"{v:.3g}"
    return f"{v:.2e}"


def render_trend(entries: Sequence[dict], *,
                 metrics: Optional[Iterable[str]] = None,
                 last: Optional[int] = None,
                 all_hosts: bool = False) -> str:
    """The full trend report: header + one sparkline row per metric."""
    entries = list(entries)
    if not entries:
        return "bench history is empty — nothing to report"
    fp = entries[-1].get("fingerprint")
    if not all_hosts:
        entries = [e for e in entries if e.get("fingerprint") == fp]
    if last is not None and last > 0:
        entries = entries[-last:]

    patterns = list(metrics) if metrics else None
    names = hist.metric_names(entries)
    if patterns:
        names = [n for n in names
                 if any(fnmatchcase(n, p) for p in patterns)]

    t0 = entries[0].get("recorded_unix")
    t1 = entries[-1].get("recorded_unix")
    span = ""
    if isinstance(t0, (int, float)) and isinstance(t1, (int, float)):
        def _day(t):
            return time.strftime("%Y-%m-%d", time.gmtime(t))
        span = f", {_day(t0)} .. {_day(t1)}"
    host_note = "all hosts" if all_hosts else f"host {fp or '-'}"
    lines = [f"bench trend: {len(entries)} entr"
             f"{'y' if len(entries) == 1 else 'ies'} ({host_note}{span})"]
    if not names:
        lines.append("  (no matching metrics)")
        return "\n".join(lines)
    width = min(MAX_WIDTH, len(entries))
    name_w = min(34, max(len(n) for n in names))
    for name in names:
        series = metric_series(entries, name)
        spark = sparkline(series, width=width)
        finite = [v for v in series if v == v]
        first, latest = (finite[0], finite[-1]) if finite \
            else (float("nan"), float("nan"))
        delta = ""
        if len(finite) >= 2 and abs(first) > 1e-12:
            delta = f"  ({(latest - first) / abs(first) * 100:+.1f}%)"
        lines.append(f"  {name:<{name_w}} [{spark}]  "
                     f"{_fmt_val(first)} -> {_fmt_val(latest)}{delta}")
    return "\n".join(lines)
