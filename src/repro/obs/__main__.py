"""The observability CLI: ``python -m repro.obs {record,check,report,explain}``.

``record PAYLOAD.json ...``
    Append one ``repro-bench-history/1`` entry — git SHA + machine
    fingerprint + the metrics extracted from the given
    ``repro-bench-host/2`` / ``repro-metrics/1`` payloads — to the
    append-only bench history (``benchmarks/history/history.jsonl``).

``check``
    Run the regression sentinel: gate the newest entry (or ``--current``
    payloads) against the same-host baseline with per-metric thresholds
    and statistical confirmation (Mann-Whitney / bootstrap CI).

``report``
    Render per-metric ASCII trend sparklines over the history.

``explain DIR``
    The cross-layer "why was this slow" join: per sweep cell, host span
    time x worker queue delay x cache hits/misses x (with ``--sweep``)
    the simulated cycle/degradation attribution.

Exit status (the shared sweep-CLI map):
    0  ok
    1  regression: the sentinel confirmed a degraded metric
    2  usage error (bad flag, unreadable/unrecognized input file)
    3  internal fault: the tool itself crashed
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import history as hist
from repro.obs import sentinel, trend


class _UsageError(Exception):
    """Bad input that argparse can't see (unreadable file, bad payload)."""


def _load_json(path: str) -> dict:
    p = Path(path)
    try:
        raw = p.read_text()
    except OSError as exc:
        raise _UsageError(f"{path}: {exc}") from exc
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise _UsageError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise _UsageError(f"{path}: expected a JSON object")
    return payload


def _build_current_entry(paths: list[str], note=None) -> dict:
    payloads = [_load_json(p) for p in paths]
    try:
        return hist.build_entry(payloads, note=note)
    except ValueError as exc:
        raise _UsageError(str(exc)) from exc


# ---------------------------------------------------------------------------
# subcommands


def _cmd_record(ns) -> int:
    entry = _build_current_entry(ns.payloads, note=ns.note)
    errs = hist.validate_entry(entry)
    if errs:        # means a bug in build_entry, not bad user input
        for e in errs:
            print(f"invalid entry: {e}", file=sys.stderr)
        return 3
    if ns.dry_run:
        json.dump(entry, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    hist.append_entry(ns.history, entry)
    n = len(hist.load_history(ns.history))
    sha = (entry["git"].get("sha") or "")[:10] or "?"
    print(f"recorded {len(entry['metrics'])} metric(s) at {sha} "
          f"(host {entry['fingerprint']}) -> {ns.history} "
          f"[{n} entr{'y' if n == 1 else 'ies'}]")
    return 0


def _cmd_check(ns) -> int:
    try:
        thresholds = sentinel.parse_threshold_overrides(
            ns.thresholds or ())
    except ValueError as exc:
        raise _UsageError(str(exc)) from exc
    entries = hist.load_history(ns.history)
    current = None
    if ns.current:
        current = _build_current_entry(ns.current)
    elif not entries:
        print(f"{ns.history}: empty or missing history — nothing to "
              f"check (record a baseline first)", file=sys.stderr)
        return 0
    report = sentinel.check_history(
        entries, current, thresholds=thresholds, alpha=ns.alpha,
        metrics=ns.metrics, all_hosts=ns.all_hosts, last=ns.last)
    if ns.as_json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        print(sentinel.render_check(report))
    return 0 if report["ok"] else 1


def _cmd_report(ns) -> int:
    entries = hist.load_history(ns.history)
    print(trend.render_trend(entries, metrics=ns.metrics,
                             last=ns.last, all_hosts=ns.all_hosts))
    return 0


def _cmd_explain(ns) -> int:
    from repro.obs import explain

    try:
        payload = explain.load_metrics(ns.dir)
    except (FileNotFoundError, ValueError) as exc:
        raise _UsageError(str(exc)) from exc
    except json.JSONDecodeError as exc:
        raise _UsageError(f"{ns.dir}: metrics.json is not valid JSON "
                          f"({exc})") from exc
    sweep = _load_json(ns.sweep) if ns.sweep else None
    rows = explain.correlate(payload, sweep)
    if ns.as_json:
        out = rows if ns.cell is None \
            else [r for r in rows if r["cell"] == ns.cell]
        json.dump(out, sys.stdout, indent=2)
        print()
    else:
        print(explain.render(rows, cell=ns.cell))
    return 0


# ---------------------------------------------------------------------------


def _add_history_arg(p) -> None:
    p.add_argument("--history", default=str(hist.DEFAULT_HISTORY),
                   metavar="FILE",
                   help=f"bench history JSONL "
                        f"(default: {hist.DEFAULT_HISTORY})")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="bench history, regression sentinel, trend report, "
                    "and cross-layer slow-cell attribution")
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("record",
                       help="append a history entry from bench payloads")
    p.add_argument("payloads", nargs="+", metavar="PAYLOAD",
                   help="repro-bench-host/2 and/or repro-metrics/1 "
                        "JSON files")
    _add_history_arg(p)
    p.add_argument("--note", default=None,
                   help="free-form note stored on the entry")
    p.add_argument("--dry-run", action="store_true",
                   help="print the entry instead of appending it")
    p.set_defaults(fn=_cmd_record)

    p = sub.add_parser("check", help="run the regression sentinel")
    _add_history_arg(p)
    p.add_argument("--current", nargs="+", metavar="PAYLOAD",
                   default=None,
                   help="gate these payloads instead of the newest "
                        "history entry")
    p.add_argument("--threshold", action="append", dest="thresholds",
                   metavar="PATTERN=FRAC",
                   help="override a gate threshold "
                        "(e.g. 'host_seconds/*=0.5'); repeatable")
    p.add_argument("--alpha", type=float,
                   default=sentinel.DEFAULT_ALPHA,
                   help="significance level of the confirmation tests "
                        "(default: %(default)s)")
    p.add_argument("--metric", action="append", dest="metrics",
                   metavar="PATTERN",
                   help="gate only matching metrics; repeatable")
    p.add_argument("--all-hosts", action="store_true",
                   help="compare across machine fingerprints (ratios "
                        "only is wise; wall clocks don't transfer)")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="use only the N newest baseline entries")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the verdict report as JSON")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("report", help="ASCII trend sparklines")
    _add_history_arg(p)
    p.add_argument("--metric", action="append", dest="metrics",
                   metavar="PATTERN",
                   help="show only matching metrics; repeatable")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="use only the N newest entries")
    p.add_argument("--all-hosts", action="store_true",
                   help="mix entries from every machine fingerprint")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("explain",
                       help="per-cell slow-cell attribution join")
    p.add_argument("dir", metavar="DIR",
                   help="telemetry session dir (or metrics.json path)")
    p.add_argument("--sweep", default=None, metavar="PAYLOAD",
                   help="the sweep's JSON payload (repro-experiment/1, "
                        "repro-validate/1 or repro-faults/1) to join "
                        "the simulated side")
    p.add_argument("--cell", type=int, default=None,
                   help="detail view of one cell index")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the joined rows as JSON")
    p.set_defaults(fn=_cmd_explain)

    ns = ap.parse_args(argv)
    try:
        return ns.fn(ns)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        return 0
    except Exception as exc:    # the shared map: 3 == tool crashed
        import traceback

        traceback.print_exc()
        print(f"internal fault: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3


if __name__ == "__main__":
    raise SystemExit(main())
