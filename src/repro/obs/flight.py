"""The flight recorder: a bounded ring of recent log/span events.

Crash reports are only as useful as their context.  When logging is
enabled (:func:`repro.obs.log.configure` enables the recorder as a side
effect), every structured log record — at *any* level, including ones
below the write threshold — and every completed telemetry span is
pushed into a bounded in-memory ring buffer.  When a workload crashes
or times out, :func:`repro.faults.harness.FaultReport.from_exception`
and the :class:`repro.engine.parallel.WorkerCrash` path dump the ring's
tail into the report's ``detail["flight_recorder"]``, so the report
carries the last N things the process did before dying.

While disabled (the default) the recorder is a module-level ``None``
and :func:`record` is a single ``is None`` check — nothing allocates,
so the zero-cost-when-off contract of the logging layer holds.

Forked ``--jobs`` workers inherit the parent's ring contents; that is
deliberate — the parent-side events leading up to the fan-out are
exactly the context a worker crash wants to show.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

#: how many events the ring holds by default
DEFAULT_CAPACITY = 64

#: how many trailing events a crash report carries
TAIL_EVENTS = 16

_RING: Optional[deque] = None


def enabled() -> bool:
    return _RING is not None


def enable(capacity: int = DEFAULT_CAPACITY) -> None:
    """Start recording (idempotent; re-enabling keeps existing events
    unless the capacity changed)."""
    global _RING
    if _RING is None or _RING.maxlen != capacity:
        old = list(_RING) if _RING is not None else []
        _RING = deque(old, maxlen=max(1, int(capacity)))
    from repro.telemetry import spans as spanmod

    spanmod.set_span_observer(_observe_span)


def disable() -> None:
    global _RING
    _RING = None
    from repro.telemetry import spans as spanmod

    spanmod.set_span_observer(None)


def record(event: dict) -> None:
    """Push one event (a JSON-shaped dict); no-op while disabled."""
    ring = _RING
    if ring is not None:
        ring.append(event)


def tail(n: int = TAIL_EVENTS) -> list[dict]:
    """The most recent ``n`` events, oldest first (empty if disabled)."""
    ring = _RING
    if ring is None:
        return []
    events = list(ring)
    return events[-n:] if n and n > 0 else events


def clear() -> None:
    if _RING is not None:
        _RING.clear()


def _observe_span(rec: dict) -> None:
    """Span-completion hook installed into :mod:`repro.telemetry.spans`.

    Records a compact summary of the closed span — enough to see the
    pipeline's recent shape in a crash tail without duplicating the
    whole span log.
    """
    ring = _RING
    if ring is None:
        return
    event: dict = {"kind": "span", "name": rec.get("name"),
                   "span": rec.get("id"), "pid": rec.get("pid"),
                   "duration_s": rec.get("duration_s")}
    if rec.get("cell") is not None:
        event["cell"] = rec["cell"]
    if rec.get("error"):
        event["error"] = rec["error"]
    attrs = rec.get("attrs")
    if attrs and "label" in attrs:
        event["label"] = attrs["label"]
    ring.append(event)
