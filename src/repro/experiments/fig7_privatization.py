"""Figure 7: data privatization vs expansion in MDG's major loop.

Two variants of the same parallelized loop:

- **privatization** — the distance workspace lives in loop-local
  (cluster-memory / cache) storage, one copy per processor;
- **expansion** — the same data expanded by one dimension and placed in
  global memory (``dr(j)`` → ``dr(j, iproc)``), paying global latency
  plus the extra addressing.

The paper measures the expanded variant at half the speed of the
privatized one.
"""

from __future__ import annotations

from repro.cedar.nodes import ParallelDo
from repro.experiments.common import direct_estimate
from repro.experiments.report import Table
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.machine.config import cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.restructurer.pipeline import Restructurer
from repro.workloads.perfect import PERFECT_PROGRAMS

#: work arrays of the MDG proxy loop
WORK_ARRAYS = ("dr", "r2")

PAPER_RATIO = 0.5  # expanded variant runs at half speed


def _strip_locals(sf: F.SourceFile, names: tuple[str, ...]) -> None:
    """Remove given names from every ParallelDo's loop-local declarations,
    so they resolve to the unit-level (shared) arrays instead."""
    for u in sf.units:
        for s in F.stmts_walk(u.body):
            if isinstance(s, ParallelDo):
                kept = []
                for decl in s.locals_:
                    if isinstance(decl, F.TypeDecl):
                        decl.entities = [e for e in decl.entities
                                         if e.name not in names]
                        if decl.entities:
                            kept.append(decl)
                    else:
                        kept.append(decl)
                s.locals_ = kept


def run(quick: bool = False) -> Table:
    machine = cedar_config1()
    p = PERFECT_PROGRAMS["MDG"]
    n = 32 if quick else p.default_n
    b = p.bindings(n)
    opts = RestructurerOptions.manual()

    # privatized variant: the manual restructuring as-is
    sf_priv, _ = Restructurer(opts).run(parse_program(p.source))
    priv = direct_estimate(sf_priv, p.entry, b, machine, "mdg-privatized")

    # expanded variant: same code, work arrays shared and global (the
    # extra expansion dimension's addressing is ~0.5 op per access, which
    # the estimator already charges through the subscript cost)
    sf_exp, _ = Restructurer(opts).run(parse_program(p.source))
    _strip_locals(sf_exp, WORK_ARRAYS)
    placements = {w: "global" for w in WORK_ARRAYS}
    exp = direct_estimate(sf_exp, p.entry, b, machine, "mdg-expanded",
                          placements=placements)

    t = Table(
        title="Figure 7: data privatization vs expansion in MDG "
              "(speed relative to the privatized variant)",
        columns=["variant", "paper speed", "measured speed"],
    )
    t.add("privatization", 1.0, 1.0)
    t.add("expansion", PAPER_RATIO, priv.total / exp.total)
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
