"""Picklable per-experiment cell for the parallel experiments driver.

One cell = one experiment (table/figure), optionally profiled and
crash-isolated, returning everything the parent needs to merge output
deterministically: the JSON table dict, the pre-rendered text table, and
the optional trace rendering — worker processes must not print.
"""

from __future__ import annotations

import json
import os

from repro.experiments import ALL_EXPERIMENTS


def run_experiment_cell(job: dict) -> dict:
    """Run one experiment; returns a JSON-shaped merge record.

    ``job`` keys: name, quick, trace (bool), profile (dir or None),
    timeout, isolate (bool).  Returns ``{"name", "table_dict", "text",
    "fault"}`` — ``fault`` set (and the others None) when the isolated
    run crashed or timed out.
    """
    name = job["name"]
    quick = job["quick"]

    def run_one():
        if not job["profile"]:
            return ALL_EXPERIMENTS[name](quick=quick)
        from repro.experiments.common import profiled
        from repro.prof.export import write_chrome_trace

        with profiled(name) as session:
            table = ALL_EXPERIMENTS[name](quick=quick)
        write_chrome_trace(
            session, os.path.join(job["profile"], f"{name}.trace.json"))
        with open(os.path.join(job["profile"],
                               f"{name}.profile.json"), "w") as fh:
            json.dump(session.to_profile_doc(quick=quick), fh, indent=2)
            fh.write("\n")
        return table

    if job["isolate"]:
        from repro.faults.harness import run_isolated

        table, fault = run_isolated(run_one, label=f"experiment {name}",
                                    timeout=job["timeout"])
        if fault is not None:
            return {"name": name, "table_dict": None, "text": None,
                    "fault": fault.to_dict()}
    else:
        table = run_one()

    text = table.render()
    if job["trace"] and table.meta.get("trace"):
        from repro.trace.report import TraceReport

        text += "\n\n" + TraceReport(table.title,
                                     table.meta["trace"]).render()
    return {"name": name, "table_dict": table.to_dict(), "text": text,
            "fault": None}
