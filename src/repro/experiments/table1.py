"""Table 1: speedups of automatically restructured linear-algebra routines
on Configuration 1 of the 32-processor Cedar.

Speedup = serial (scalar, data in one cluster's memory) time divided by
the automatically parallelized Cedar version's time, at the paper's data
sizes.  mprove's outlier comes from the serial version thrashing (its two
1000×1000 matrices exceed one cluster's physical memory) while the
parallel version's data fits in global memory.
"""

from __future__ import annotations

from repro.experiments.common import estimate_pair
from repro.experiments.report import Table
from repro.machine.config import cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.workloads.linalg import LINALG_ROUTINES

#: paper column (routine → (size, speedup))
PAPER = {
    "cg": (400, 163.0),
    "ludcmp": (1000, 9.2),
    "lubksb": (1000, 6.8),
    "sparse": (800, 29.0),
    "gaussj": (600, 10.0),
    "svbksb": (200, 32.0),
    "svdcmp": (200, 7.2),
    "mprove": (1000, 1079.0),
    "toeplz": (800, 1.3),
    "tridag": (800, 2.1),
}


def run(quick: bool = False) -> Table:
    """Regenerate Table 1.  ``quick`` shrinks sizes (for smoke tests)."""
    machine = cedar_config1()
    options = RestructurerOptions.automatic()
    t = Table(
        title="Table 1: speedups of automatically restructured linear "
              "algebra routines (Cedar Configuration 1)",
        columns=["routine", "size", "paper speedup", "measured speedup"],
    )
    t.meta["trace"] = {}
    for name, (size, paper) in PAPER.items():
        r = LINALG_ROUTINES[name]
        n = max(16, size // 8) if quick else size
        res = estimate_pair(r.source, r.entry, r.bindings(n),
                            machine, options)
        t.add(name, n, paper, res.speedup)
        t.meta["trace"][name] = res.trace_entry()
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
