"""Figure 6: effect of compiler-inserted prefetch instructions.

The paper: "an improvement of up to 100% in CG, TRFD exhibits only a 15%
gain, primarily because vector lengths are large in CG and small in TRFD.
In addition, the manually optimized version of TRFD has a high percentage
of its references privatized (diverted to cluster memory)" — prefetch
helps only global vector streams.

We time the restructured programs with the prefetch unit disabled and
enabled; the figure's bars are speeds relative to the no-prefetch run.
"""

from __future__ import annotations

from repro.experiments.common import restructured_estimate
from repro.experiments.report import Table
from repro.machine.config import cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.workloads.linalg import LINALG_ROUTINES
from repro.workloads.perfect import PERFECT_PROGRAMS

#: paper bar heights (speed relative to no-prefetch)
PAPER = {"cg": 2.0, "trfd": 1.15}


def run(quick: bool = False) -> Table:
    machine = cedar_config1()
    t = Table(
        title="Figure 6: effect of compiler-inserted prefetch "
              "(speed relative to no-prefetch)",
        columns=["program", "paper gain", "measured gain"],
    )

    cg = LINALG_ROUTINES["cg"]
    n = 100 if quick else cg.table1_size
    off, _, _ = restructured_estimate(cg.source, cg.entry, cg.bindings(n),
                                      machine,
                                      RestructurerOptions.automatic(),
                                      prefetch=False)
    on, _, _ = restructured_estimate(cg.source, cg.entry, cg.bindings(n),
                                     machine,
                                     RestructurerOptions.automatic(),
                                     prefetch=True)
    t.add("CG", PAPER["cg"], off.total / on.total)

    trfd = PERFECT_PROGRAMS["TRFD"]
    n = 24 if quick else trfd.default_n
    # the paper measured the *manually optimized* TRFD, whose references
    # are largely privatized — exactly what limits its prefetch gain
    opts = RestructurerOptions.manual()
    off, _, _ = restructured_estimate(trfd.source, trfd.entry,
                                      trfd.bindings(n), machine, opts,
                                      prefetch=False)
    on, _, _ = restructured_estimate(trfd.source, trfd.entry,
                                     trfd.bindings(n), machine, opts,
                                     prefetch=True)
    t.add("TRFD", PAPER["trfd"], off.total / on.total)
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
