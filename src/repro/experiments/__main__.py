"""Run every experiment and print the tables: ``python -m repro.experiments``.

``--quick`` shrinks data sizes for a fast smoke run; ``--json`` emits the
tables (plus cycle-attribution traces) as one JSON document on stdout;
``--trace`` appends the human-readable cycle/decision breakdown after
each table; ``--profile DIR`` additionally profiles every estimate and
writes, per experiment, a Perfetto-loadable ``<name>.trace.json`` and a
``repro-profile/1`` ``<name>.profile.json`` into DIR.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments import ALL_EXPERIMENTS

#: stamped into every --json payload; bump on incompatible shape changes
JSON_SCHEMA = "repro-experiment/1"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures")
    ap.add_argument("names", nargs="*",
                    help=f"experiments to run (default: all of "
                         f"{', '.join(ALL_EXPERIMENTS)})")
    ap.add_argument("--quick", action="store_true",
                    help="small data sizes (smoke run)")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit one JSON document instead of text tables")
    ap.add_argument("--trace", action="store_true",
                    help="append the cycle-attribution/decision trace "
                         "after each table")
    ap.add_argument("--profile", metavar="DIR", default=None,
                    help="profile every estimate; write per-experiment "
                         "trace.json (Perfetto) + profile.json into DIR")
    args = ap.parse_args(argv)

    names = args.names or list(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2

    if args.profile:
        os.makedirs(args.profile, exist_ok=True)

    def run_one(name: str):
        """Run one experiment, profiling (and writing artifacts) if asked."""
        if not args.profile:
            return ALL_EXPERIMENTS[name](quick=args.quick)
        from repro.experiments.common import profiled
        from repro.prof.export import write_chrome_trace

        with profiled(name) as session:
            table = ALL_EXPERIMENTS[name](quick=args.quick)
        write_chrome_trace(
            session, os.path.join(args.profile, f"{name}.trace.json"))
        with open(os.path.join(args.profile,
                               f"{name}.profile.json"), "w") as fh:
            json.dump(session.to_profile_doc(quick=args.quick), fh, indent=2)
            fh.write("\n")
        return table

    if args.as_json:
        payload = {
            "schema": JSON_SCHEMA,
            "quick": args.quick,
            "experiments": {},
        }
        for name in names:
            payload["experiments"][name] = run_one(name).to_dict()
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    for name in names:
        table = run_one(name)
        print(table.render())
        if args.trace and table.meta.get("trace"):
            from repro.trace.report import TraceReport

            print()
            print(TraceReport(table.title, table.meta["trace"]).render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
