"""Run every experiment and print the tables: ``python -m repro.experiments``.

``--quick`` shrinks data sizes for a fast smoke run; ``--json`` emits the
tables (plus cycle-attribution traces) as one JSON document on stdout;
``--trace`` appends the human-readable cycle/decision breakdown after
each table.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import ALL_EXPERIMENTS

#: stamped into every --json payload; bump on incompatible shape changes
JSON_SCHEMA = "repro-experiment/1"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures")
    ap.add_argument("names", nargs="*",
                    help=f"experiments to run (default: all of "
                         f"{', '.join(ALL_EXPERIMENTS)})")
    ap.add_argument("--quick", action="store_true",
                    help="small data sizes (smoke run)")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit one JSON document instead of text tables")
    ap.add_argument("--trace", action="store_true",
                    help="append the cycle-attribution/decision trace "
                         "after each table")
    args = ap.parse_args(argv)

    names = args.names or list(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2

    if args.as_json:
        payload = {
            "schema": JSON_SCHEMA,
            "quick": args.quick,
            "experiments": {},
        }
        for name in names:
            table = ALL_EXPERIMENTS[name](quick=args.quick)
            payload["experiments"][name] = table.to_dict()
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    for name in names:
        table = ALL_EXPERIMENTS[name](quick=args.quick)
        print(table.render())
        if args.trace and table.meta.get("trace"):
            from repro.trace.report import TraceReport

            print()
            print(TraceReport(table.title, table.meta["trace"]).render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
