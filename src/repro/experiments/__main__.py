"""Run every experiment and print the tables: ``python -m repro.experiments``.

``--quick`` shrinks data sizes for a fast smoke run; ``--json`` emits the
tables (plus cycle-attribution traces) as one JSON document on stdout;
``--trace`` appends the human-readable cycle/decision breakdown after
each table; ``--profile DIR`` additionally profiles every estimate and
writes, per experiment, a Perfetto-loadable ``<name>.trace.json`` and a
``repro-profile/1`` ``<name>.profile.json`` into DIR.

Resilience (repro.faults): ``--timeout SEC`` puts a wall-clock watchdog
around each experiment; ``--keep-going`` isolates crashes so one broken
experiment doesn't kill the run (failed experiments are reported as
structured faults); ``--journal FILE`` checkpoints completed experiments
to a JSONL file for resume.

Real-world sources: ``--source FILE.f`` ingests an on-disk Fortran 77
file instead of a named experiment — it is lint-gated through
``repro.lint`` (errors reject the file) and then estimated per program
unit, serial vs Cedar (see :mod:`repro.experiments.ingest`).

Exit status (shared with ``python -m repro.lint``):
    0  all requested experiments ran / source ingested clean
    1  ``--source`` file rejected by the linter (also reserved for
       regressions — used by ``repro.prof diff``)
    2  usage error (unknown experiment/flag, unreadable source)
    3  internal fault: an experiment crashed or exceeded its budget
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments import ALL_EXPERIMENTS

#: stamped into every --json payload; bump on incompatible shape changes
JSON_SCHEMA = "repro-experiment/1"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures")
    ap.add_argument("names", nargs="*",
                    help=f"experiments to run (default: all of "
                         f"{', '.join(ALL_EXPERIMENTS)})")
    ap.add_argument("--quick", action="store_true",
                    help="small data sizes (smoke run)")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit one JSON document instead of text tables")
    ap.add_argument("--trace", action="store_true",
                    help="append the cycle-attribution/decision trace "
                         "after each table")
    ap.add_argument("--profile", metavar="DIR", default=None,
                    help="profile every estimate; write per-experiment "
                         "trace.json (Perfetto) + profile.json into DIR")
    ap.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="wall-clock budget per experiment (watchdog)")
    ap.add_argument("--keep-going", action="store_true",
                    help="isolate crashes: report a failed experiment as "
                         "a structured fault and continue with the rest")
    ap.add_argument("--journal", metavar="FILE", default=None,
                    help="JSONL checkpoint of completed experiments; "
                         "rerun with the same file to resume (implies "
                         "result caching for finished names)")
    ap.add_argument("--source", metavar="FILE.f", default=None,
                    help="ingest an on-disk Fortran 77 file instead of "
                         "a named experiment: lint-gate it (exit 1 on "
                         "errors, diagnostics on stderr), restructure "
                         "it, and report per-unit serial vs Cedar "
                         "estimates")
    from repro.experiments.common import add_engine_args, configure_engine

    add_engine_args(ap)
    args = ap.parse_args(argv)
    jobs = configure_engine(args)

    if args.source is not None:
        if args.names:
            print("--source does not combine with experiment names",
                  file=sys.stderr)
            return 2
        from repro.experiments.ingest import run_source

        return run_source(args)

    names = args.names or list(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2

    if args.profile:
        os.makedirs(args.profile, exist_ok=True)

    from repro.engine.parallel import WorkerCrash, parallel_map
    from repro.experiments.worker import run_experiment_cell
    from repro.faults.harness import SweepJournal

    journal = SweepJournal(args.journal)
    fault_reports: list[dict] = []
    table_dicts: dict[str, dict] = {}
    texts: dict[str, str] = {}
    jobs_list: list[dict] = []

    for name in names:
        if args.journal and name in journal:
            table_dicts[name] = journal.payload(name)
            print(f"{name}: resumed from journal", file=sys.stderr)
            continue
        jobs_list.append({
            "name": name, "quick": args.quick, "trace": args.trace,
            "profile": args.profile, "timeout": args.timeout,
            # a parallel run always isolates: a crashing worker must
            # surface as a structured fault, not a broken pool
            "isolate": args.keep_going or bool(args.timeout) or jobs > 1,
        })

    hard_fault = False
    from repro.obs.log import get_logger

    log = get_logger("experiments")

    def merge(i: int, res) -> None:
        nonlocal hard_fault
        name = jobs_list[i]["name"]
        fd = res.to_fault_dict() if isinstance(res, WorkerCrash) \
            else res["fault"]
        if fd is not None:
            fault_reports.append(fd)
            cont = " -- continuing" if args.keep_going else ""
            print(f"{name}: FAULT ({fd['kind']}) {fd['message']}{cont}",
                  file=sys.stderr)
            log.warning("experiment_fault", name=name, kind=fd["kind"],
                        message=fd["message"])
            if not args.keep_going:
                hard_fault = True
            return
        texts[name] = res["text"]
        table_dicts[name] = res["table_dict"]
        journal.record(name, res["table_dict"])
        log.info("experiment_done", name=name)

    parallel_map(run_experiment_cell, jobs_list, jobs,
                 labels=[f"experiment {j['name']}" for j in jobs_list],
                 on_result=merge)
    from repro.experiments.common import finalize_telemetry

    finalize_telemetry("repro.experiments")
    if hard_fault:
        return 3

    if args.as_json:
        payload = {
            "schema": JSON_SCHEMA,
            "quick": args.quick,
            "experiments": table_dicts,
        }
        if fault_reports:
            payload["faults"] = fault_reports
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 3 if fault_reports else 0

    for name in names:
        if name in texts:
            print(texts[name])
            print()
        elif name in table_dicts:
            print(f"[{name}: resumed from journal — JSON payload only; "
                  f"rerun without --journal for the rendered table]")
            print()
    return 3 if fault_reports else 0


if __name__ == "__main__":
    raise SystemExit(main())
