"""Run every experiment and print the tables: ``python -m repro.experiments``.

``--quick`` shrinks data sizes for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures")
    ap.add_argument("names", nargs="*",
                    help=f"experiments to run (default: all of "
                         f"{', '.join(ALL_EXPERIMENTS)})")
    ap.add_argument("--quick", action="store_true",
                    help="small data sizes (smoke run)")
    args = ap.parse_args(argv)

    names = args.names or list(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        table = ALL_EXPERIMENTS[name](quick=args.quick)
        print(table.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
