"""Experiment drivers regenerating every table and figure of the paper.

- :mod:`repro.experiments.table1` — speedups of the automatically
  restructured linear-algebra routines (Table 1);
- :mod:`repro.experiments.table2` — Perfect Benchmarks proxies, automatic
  vs manually-improved, on the Alliant FX/80 and Cedar (Table 2);
- :mod:`repro.experiments.fig6_prefetch` — compiler-inserted prefetch in
  CG and TRFD (Figure 6);
- :mod:`repro.experiments.fig7_privatization` — privatization vs global
  expansion in MDG's major loop (Figure 7);
- :mod:`repro.experiments.fig8_partitioning` — global placement vs data
  partitioning in CG across 1-4 clusters (Figure 8);
- :mod:`repro.experiments.fig9_fusion` — inner-parallel vs outer-parallel
  vs fused FLO52 (Figure 9).

Every driver returns a :class:`repro.experiments.report.Table` carrying
paper values next to measured values; ``python -m repro.experiments``
prints them all.
"""

from repro.experiments.report import Table
from repro.experiments import (
    fig6_prefetch,
    fig7_privatization,
    fig8_partitioning,
    fig9_fusion,
    qcd_ablation,
    table1,
    table2,
)

ALL_EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "fig6": fig6_prefetch.run,
    "fig7": fig7_privatization.run,
    "fig8": fig8_partitioning.run,
    "fig9": fig9_fusion.run,
    "qcd": qcd_ablation.run,
}

__all__ = ["Table", "ALL_EXPERIMENTS"]
