"""The QCD footnote ablation (Table 2, footnote 1).

"A random number generator produces a dependence cycle in QCD which
serializes half of the computation.  The speedup value from the table
(1.8) is the result when both halves of the cycle are serialized.  If
only the lexically forward dependence is serialized with a critical
section, then a speedup of 4.5 is obtained.  If the dependence is not
serialized at all (for instance, if the random number is replaced with a
parallel random number generator), then a speedup of 20.8 is obtained.
Only when the cycle is completely serialized does the code pass the
Perfect Benchmarks validation test."

Three variants of the QCD proxy on Cedar:

- **serialized** — the restructurer's answer: the RNG loop stays serial
  (our critical-section pass *refuses* the order-sensitive seed
  recurrence), only the measurement loop parallelizes;
- **critical** — the validation-breaking hand variant: the RNG update is
  forced behind an unordered lock and the whole loop runs parallel (built
  by hand here, exactly as the authors did);
- **parallel-rng** — the seed recurrence replaced by a splittable
  per-iteration generator, making the loop fully parallel.
"""

from __future__ import annotations

from repro.cedar.nodes import LockStmt, ParallelDo, UnlockStmt
from repro.experiments.common import (direct_estimate, estimate_pair,
                                      serial_estimate)
from repro.experiments.report import Table
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.machine.config import cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.restructurer.pipeline import Restructurer
from repro.workloads.perfect import PERFECT_PROGRAMS

PAPER = {"serialized": 1.81, "critical": 4.5, "parallel-rng": 20.8}

#: the parallel-RNG rewrite: each iteration derives its own stream value
PARALLEL_RNG_SOURCE = """
      subroutine qcd(n, m, seed, link, action, plaq)
      integer n, m, seed
      real link(n), action, plaq(n)
      real wph(1024)
      real r, trial, dact
      integer i, k, si
      do i = 1, n
         si = mod((seed + i) * 16807, 2147483647)
         r = si * 4.6566e-10
         trial = link(i) + (r - 0.5) * 0.4
         dact = exp(trial * trial) - exp(link(i) * link(i))
         if (exp(-dact) .gt. r) then
            link(i) = trial
         end if
      end do
      do i = 1, n
         do k = 1, m
            wph(k) = 0.01 * k * link(i)
         end do
         plaq(i) = 0.0
         do k = 1, m
            plaq(i) = plaq(i) + link(i) * cos(wph(k))
         end do
      end do
      end
"""


def _critical_variant(source: str) -> F.SourceFile:
    """Hand-parallelize the RNG loop with the seed updates behind a lock —
    the variant the paper notes fails validation."""
    sf, _ = Restructurer(RestructurerOptions.manual()).run(
        parse_program(source))
    unit = sf.unit("qcd")
    for idx, s in enumerate(unit.body):
        if isinstance(s, F.DoLoop):
            # the (still serial) RNG loop: protect only the seed update —
            # "the lexically forward dependence" — with the lock, let the
            # Metropolis arithmetic run in parallel, and promote to XDOALL
            body: list[F.Stmt] = []
            for st in s.body:
                touches_seed = any(isinstance(n, F.Var) and n.name == "seed"
                                   for n in st.walk()) \
                    and not isinstance(st, F.IfBlock)
                if touches_seed:
                    body.append(LockStmt(name="rng"))
                    body.append(st)
                    body.append(UnlockStmt(name="rng"))
                else:
                    body.append(st)
            unit.body[idx] = ParallelDo(
                level="X", order="doall", var=s.var,
                start=s.start, end=s.end, step=s.step, body=body)
            break
    return sf


def run(quick: bool = False) -> Table:
    machine = cedar_config1()
    p = PERFECT_PROGRAMS["QCD"]
    n = 512 if quick else p.default_n
    b = p.bindings(n)

    serial = serial_estimate(p.source, p.entry, b, machine)

    # variant 1: the restructurer's fully-serialized-cycle answer
    res = estimate_pair(p.source, p.entry, b, machine,
                        RestructurerOptions.manual())
    serialized = res.speedup

    # variant 2: hand-built critical section (validation-breaking)
    sf_crit = _critical_variant(p.source)
    crit = direct_estimate(sf_crit, p.entry, b, machine, "qcd-critical")
    critical = serial.total / crit.total

    # variant 3: parallel RNG
    res3 = estimate_pair(PARALLEL_RNG_SOURCE, p.entry, b, machine,
                         RestructurerOptions.manual())
    parallel_rng = serial.total / res3.parallel.total

    t = Table(
        title="QCD footnote ablation: serializing the RNG dependence cycle "
              "(Cedar speedups vs serial)",
        columns=["variant", "paper speedup", "measured speedup",
                 "passes validation"],
    )
    t.add("serialized", PAPER["serialized"], serialized, "yes")
    t.add("critical", PAPER["critical"], critical, "no")
    t.add("parallel-rng", PAPER["parallel-rng"], parallel_rng, "no")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
