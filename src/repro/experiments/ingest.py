"""Real-world ingestion: ``python -m repro.experiments --source FILE.f``.

The front door for Fortran sources that are not one of the paper's
canned workloads.  The file is first lint-gated through
:mod:`repro.lint` — the same recovered diagnostic stream as
``python -m repro.lint`` — and rejected (exit 1, diagnostics on stderr)
if the linter finds errors.  A clean file is then run through the
restructurer, and every program unit is estimated serial vs Cedar the
same way the paper's tables are, with the unit's dummy arguments bound
to a common problem size (loop bounds the estimator cannot resolve fall
back to its usual 100-trip default).

The result is an ordinary :class:`repro.experiments.report.Table`, so
``--json`` output is ``repro-experiment/1``-shaped and validates with
``scripts/validate_experiment_json.py`` like any sweep payload.  The
full lint report (``repro-lint/1`` file record) rides along in
``meta["lint"]``.
"""

from __future__ import annotations

import json
import sys

from repro.experiments.report import Table

#: dummy-argument binding used for every unit (``--quick`` shrinks it)
DEFAULT_SIZE = 100
QUICK_SIZE = 24


def ingest_source(text: str, path: str, quick: bool = False,
                  faults=None):
    """Lint-gate then estimate ``text``; returns ``(table, report)``.

    ``table`` is ``None`` when the linter found errors — the caller
    decides how to render the failure (CLI prints the diagnostic
    stream and exits 1).  ``faults`` optionally degrades the simulated
    machine with a :class:`repro.faults.FaultPlan` (timing only; the
    restructuring itself is untouched).
    """
    from repro.experiments.common import (SpeedupResult,
                                          restructured_estimate,
                                          serial_estimate)
    from repro.lint.engine import lint_source
    from repro.machine.config import cedar_config1
    from repro.restructurer.options import RestructurerOptions

    report = lint_source(text, path=path)
    if report.error_count or report.ast is None:
        return None, report

    size = QUICK_SIZE if quick else DEFAULT_SIZE
    machine = cedar_config1()
    options = RestructurerOptions.automatic()
    t = Table(
        title=f"Ingested source {path} (Cedar Configuration 1, "
              f"args bound to {size})",
        columns=["unit", "kind", "serial cycles", "cedar cycles",
                 "speedup"],
    )
    t.meta["source"] = path
    t.meta["size"] = size
    t.meta["lint"] = report.to_dict()
    t.meta["trace"] = {}
    if faults is not None and faults.active:
        t.meta["fault_scenario"] = faults.name
        t.notes.append(f"fault scenario {faults.name!r} active: "
                       "cedar cycles reflect the degraded machine")
    if report.warning_count:
        t.notes.append(f"lint: {report.warning_count} warning(s) — "
                       f"run python -m repro.lint {path} for details")
    else:
        t.notes.append("lint: clean")
    for unit in report.ast.units:
        bindings = {a: float(size) for a in unit.args}
        try:
            ser = serial_estimate(text, unit.name, bindings, machine)
            par, _, rep = restructured_estimate(
                text, unit.name, bindings, machine, options,
                faults=faults)
        except Exception as exc:  # estimator limits, not user errors
            t.notes.append(f"unit {unit.name!r}: not estimable "
                           f"({type(exc).__name__}: {exc})")
            continue
        res = SpeedupResult(serial=ser, parallel=par, report=rep)
        t.add(unit.name, unit.kind, ser.total, par.total, res.speedup)
        t.meta["trace"][unit.name] = res.trace_entry()
    return t, report


def source_payload(table: Table, quick: bool) -> dict:
    """The ``repro-experiment/1`` JSON payload for one ingested source.

    Factored out so the ``--source --json`` CLI and the
    ``repro.server`` ``/restructure`` endpoint build the *same* object
    — their serialized outputs are byte-identical by construction.
    """
    from repro.experiments.__main__ import JSON_SCHEMA

    return {
        "schema": JSON_SCHEMA,
        "quick": quick,
        "experiments": {"source": table.to_dict()},
    }


def run_source(args) -> int:
    """CLI half of ``--source``; shares the 0/1/2/3 exit map with
    ``repro.lint`` (1 = lint findings, 2 = usage, 3 = internal fault)."""
    try:
        with open(args.source, "r", encoding="utf-8",
                  errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"cannot read {args.source}: {exc}", file=sys.stderr)
        return 2
    try:
        table, report = ingest_source(text, args.source,
                                      quick=args.quick)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"internal fault ingesting {args.source}: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
    if table is None:
        print(report.render(), file=sys.stderr)
        print(f"{args.source}: {report.error_count} error(s) — "
              f"not ingested", file=sys.stderr)
        return 1
    if args.as_json:
        json.dump(source_payload(table, args.quick), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(table.render())
        if report.warning_count:
            print()
            print(report.render())
    return 0
