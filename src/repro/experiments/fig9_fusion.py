"""Figure 9: combining multiple parallel loops into a single parallel loop
(FLO52).

Three program variants, timed on the Alliant FX/80 and on Cedar:

- **a** — inner loops parallel only (the first compiler version);
- **b** — the two outer loops parallelized (array privatization);
- **c** — the two outer loops fused into one parallel loop (replicating
  the scalar code between them).

The paper: a→c gains ~50% on the FX/80 but ~100% on Cedar, because SDOALL
startup (through global memory) dwarfs CDOALL startup — fewer, larger
spread loops win big on Cedar (§4.2.4).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import restructured_estimate
from repro.experiments.report import Table
from repro.machine.config import alliant_fx80, cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.workloads.perfect import PERFECT_PROGRAMS

#: paper bar heights, speed relative to variant a
PAPER = {
    "fx80": {"a": 1.0, "b": 1.3, "c": 1.5},
    "cedar": {"a": 1.0, "b": 1.5, "c": 2.0},
}


def _variant_options(variant: str) -> RestructurerOptions:
    manual = RestructurerOptions.manual()
    if variant == "a":
        # without array privatization the outer loops stay serial and only
        # the small inner loops run parallel
        return replace(manual, array_privatization=False, loop_fusion=False)
    if variant == "b":
        return replace(manual, loop_fusion=False)
    return manual  # c: fusion on


def run(quick: bool = False) -> Table:
    p = PERFECT_PROGRAMS["FLO52"]
    n = 32 if quick else p.default_n
    b = p.bindings(n)
    t = Table(
        title="Figure 9: combining multiple parallel loops into one "
              "(FLO52; speed relative to variant a)",
        columns=["machine", "variant", "paper speed", "measured speed"],
    )
    for label, machine in (("fx80", alliant_fx80()),
                           ("cedar", cedar_config1())):
        times = {}
        for v in ("a", "b", "c"):
            res, _, _ = restructured_estimate(
                p.source, p.entry, b, machine, _variant_options(v))
            times[v] = res.total
        for v in ("a", "b", "c"):
            t.add(label, v, PAPER[label][v], times["a"] / times[v])
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
