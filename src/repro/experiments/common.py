"""Shared machinery for the experiment drivers.

``estimate_pair`` runs one workload through the restructurer and the
performance estimator twice — the serial/scalar original and the
restructured parallel program — and reports the speedup, which is what
every table and figure of the paper plots.
"""

from __future__ import annotations

import argparse
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.engine import cached_parse, cached_restructure, configure
from repro.execmodel.perf import PerfEstimator, PerfResult
from repro.fortran import ast_nodes as F
from repro.machine.config import MachineConfig
from repro.prof.session import ProfileSession
from repro.restructurer.options import RestructurerOptions

#: the ProfileSession collecting estimates, when ``profiled()`` is active
_ACTIVE_SESSION: Optional[ProfileSession] = None


@contextmanager
def profiled(experiment: str):
    """Collect a :class:`ProfileSession` around an experiment driver.

    While active, every ``serial_estimate``/``restructured_estimate``
    call runs its estimator with profiling on (hardware counters + a
    per-CE timeline) and registers the result with the session.  Nesting
    is not supported — experiment drivers don't call each other.
    """
    global _ACTIVE_SESSION
    if _ACTIVE_SESSION is not None:
        raise RuntimeError("profiled() sessions do not nest")
    session = ProfileSession(experiment)
    _ACTIVE_SESSION = session
    try:
        yield session
    finally:
        _ACTIVE_SESSION = None


def _profiled_estimator_kwargs() -> dict:
    if _ACTIVE_SESSION is None:
        return {}
    return {"profile": True, "timeline": _ACTIVE_SESSION.new_timeline()}


def direct_estimate(sf: F.SourceFile, entry: str,
                    bindings: Mapping[str, float],
                    machine: MachineConfig, workload: str,
                    role: str = "parallel", **est_kwargs) -> PerfResult:
    """Estimate an already-built AST, visible to ``profiled()`` sessions.

    Drivers that construct estimators directly (placement sweeps,
    hand-built variants) route through here so their runs still land in
    an active profile session; without one this is a plain estimate.
    """
    prof_kwargs = _profiled_estimator_kwargs()
    est = PerfEstimator(sf, machine, **est_kwargs, **prof_kwargs)
    res = est.estimate(entry, bindings)
    if _ACTIVE_SESSION is not None:
        _ACTIVE_SESSION.add(workload, role, machine, res,
                            prof_kwargs["timeline"])
    return res


@dataclass
class SpeedupResult:
    """Serial vs restructured timing of one workload on one machine."""

    serial: PerfResult
    parallel: PerfResult
    report: object

    @property
    def speedup(self) -> float:
        return self.serial.total / max(self.parallel.total, 1e-9)

    def trace_entry(self) -> dict:
        """JSON-ready per-workload telemetry: speedup, the serial and
        parallel cycle breakdowns, and the restructurer's decision log."""
        entry: dict = {
            "speedup": self.speedup,
            "serial_cycles": self.serial.total,
            "parallel_cycles": self.parallel.total,
        }
        if self.serial.ledger is not None:
            entry["serial_breakdown"] = self.serial.ledger.to_dict()
        if self.parallel.ledger is not None:
            entry["parallel_breakdown"] = self.parallel.ledger.to_dict()
        events = getattr(self.report, "events", None)
        if events:
            entry["decisions"] = [e.to_dict() for e in events]
        return entry


def serial_estimate(source: str, entry: str,
                    bindings: Mapping[str, float],
                    machine: MachineConfig,
                    placements: Mapping[str, str] | None = None) -> PerfResult:
    """Estimate the original serial/scalar program (data in cluster
    memory — the paper's baseline)."""
    sf = cached_parse(source)  # estimation never mutates the tree
    prof_kwargs = _profiled_estimator_kwargs()
    est = PerfEstimator(sf, machine, prefetch=False, placements=placements,
                        serial_data_placement="cluster", **prof_kwargs)
    res = est.estimate(entry, bindings)
    if _ACTIVE_SESSION is not None:
        _ACTIVE_SESSION.add(entry, "serial", machine, res,
                            prof_kwargs["timeline"])
    return res


def restructured_estimate(source: str, entry: str,
                          bindings: Mapping[str, float],
                          machine: MachineConfig,
                          options: RestructurerOptions | None = None,
                          prefetch: bool = True,
                          placements: Mapping[str, str] | None = None,
                          faults=None,
                          ) -> tuple[PerfResult, F.SourceFile, object]:
    """Restructure then estimate; returns (result, cedar AST, report).

    ``faults`` is an optional :class:`repro.faults.FaultPlan` degrading
    the simulated machine (timing only — the restructuring itself and
    all numerics are untouched, so the cached front end is safe to share
    across fault scenarios).
    """
    cedar, report = cached_restructure(source, options)
    prof_kwargs = _profiled_estimator_kwargs()
    est = PerfEstimator(cedar, machine, prefetch=prefetch,
                        placements=placements, faults=faults, **prof_kwargs)
    res = est.estimate(entry, bindings)
    if _ACTIVE_SESSION is not None:
        _ACTIVE_SESSION.add(entry, "parallel", machine, res,
                            prof_kwargs["timeline"])
    return res, cedar, report


def estimate_pair(source: str, entry: str,
                  bindings: Mapping[str, float],
                  machine: MachineConfig,
                  options: RestructurerOptions | None = None,
                  prefetch: bool = True,
                  placements: Mapping[str, str] | None = None) -> SpeedupResult:
    """Serial + restructured estimates and their speedup."""
    ser = serial_estimate(source, entry, bindings, machine)
    par, _, report = restructured_estimate(
        source, entry, bindings, machine, options, prefetch, placements)
    return SpeedupResult(serial=ser, parallel=par, report=report)


def scale_bindings(bindings: Mapping[str, float], n: int,
                   size_keys: tuple[str, ...]) -> dict[str, float]:
    """Override the size symbols of a bindings dict (for sweeps)."""
    out = dict(bindings)
    for k in size_keys:
        if k in out:
            out[k] = n
    return out


# ---------------------------------------------------------------------------
# shared engine CLI flags (experiments / validate / faults)


def add_engine_args(ap: argparse.ArgumentParser) -> None:
    """Install the performance-layer flags every sweep harness shares.

    Defined once here so ``repro.experiments``, ``repro.validate`` and
    ``repro.faults`` cannot drift: same names, same defaults, same help.
    """
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="fan sweep cells out over N worker processes "
                         "(results are merged in deterministic order, so "
                         "JSON payloads are byte-identical to --jobs 1)")
    ap.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="on-disk compilation cache shared across "
                         "processes and invocations (default: "
                         "$REPRO_CACHE_DIR, else memory-only)")
    ap.add_argument("--telemetry", default=None, metavar="DIR",
                    help="host-side telemetry: write per-stage spans, "
                         "metrics and latency histograms into DIR as a "
                         "repro-metrics/1 artifact (default: "
                         "$REPRO_TELEMETRY, else off; off is a true "
                         "no-op and never changes sweep payloads)")
    ap.add_argument("--log-level", default=None, metavar="LEVEL",
                    choices=("debug", "info", "warning", "error"),
                    help="structured JSONL logging at LEVEL "
                         "(debug/info/warning/error) to "
                         "$REPRO_LOG_FILE, the telemetry dir's "
                         "log.jsonl, or stderr; enables the crash "
                         "flight recorder (default: $REPRO_LOG, else "
                         "off; off is a true no-op and never changes "
                         "sweep payloads)")
    from repro.execmodel.interp import ENGINES

    ap.add_argument("--engine", default=None, choices=ENGINES,
                    help="interpreter engine tier for every run this "
                         "harness executes: tree (reference walk), "
                         "compiled (closure lowering), source (cached "
                         "source-JIT; vectorizes eligible loop nests, "
                         "falls back per loop).  All tiers are "
                         "bit-identical on results (default: "
                         "$REPRO_ENGINE, else each harness's own "
                         "default)")


def configure_engine(ns: argparse.Namespace) -> int:
    """Apply the shared flags; returns the sanitized job count."""
    from repro import telemetry
    from repro.obs import log as obslog

    telemetry_dir = getattr(ns, "telemetry", None) \
        or os.environ.get("REPRO_TELEMETRY") or None
    if telemetry_dir:
        telemetry.configure(telemetry_dir)
    log_level = getattr(ns, "log_level", None)
    if log_level:
        from repro.telemetry import spans as spanmod

        log_file = os.environ.get("REPRO_LOG_FILE") or None
        if log_file is None and spanmod.current_dir() is not None:
            log_file = str(spanmod.current_dir() / "log.jsonl")
        obslog.configure(log_level, path=log_file)
    else:
        obslog.configure_from_env()    # forked/spawned workers join
    cache_dir = getattr(ns, "cache_dir", None) \
        or os.environ.get("REPRO_CACHE_DIR") or None
    configure(cache_dir=cache_dir)
    engine = getattr(ns, "engine", None)
    if engine:
        # exported so sweep worker processes (and any Interpreter built
        # without an explicit engine) inherit the selection
        os.environ["REPRO_ENGINE"] = engine
    return max(1, int(getattr(ns, "jobs", 1) or 1))


def finalize_telemetry(harness: str) -> None:
    """Merge this run's telemetry session, if one is active.

    The shared epilogue of every sweep CLI: flushes the parent shard,
    folds per-worker shards into ``DIR/metrics.json`` (plus the merged
    span log and Prometheus text), prints a one-line stderr note, and
    ends the structured-logging session.  A no-op when both
    ``--telemetry`` and ``--log-level`` are off.
    """
    import sys

    from repro import telemetry
    from repro.obs import log as obslog

    telemetry.finalize(
        harness=harness,
        echo=lambda msg: print(msg, file=sys.stderr))
    if obslog.enabled():
        obslog.get_logger("harness").info("finalized", harness=harness)
        obslog.shutdown()
