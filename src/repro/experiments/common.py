"""Shared machinery for the experiment drivers.

``estimate_pair`` runs one workload through the restructurer and the
performance estimator twice — the serial/scalar original and the
restructured parallel program — and reports the speedup, which is what
every table and figure of the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.execmodel.perf import PerfEstimator, PerfResult
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.machine.config import MachineConfig
from repro.restructurer.options import RestructurerOptions
from repro.restructurer.pipeline import Restructurer


@dataclass
class SpeedupResult:
    """Serial vs restructured timing of one workload on one machine."""

    serial: PerfResult
    parallel: PerfResult
    report: object

    @property
    def speedup(self) -> float:
        return self.serial.total / max(self.parallel.total, 1e-9)

    def trace_entry(self) -> dict:
        """JSON-ready per-workload telemetry: speedup, the serial and
        parallel cycle breakdowns, and the restructurer's decision log."""
        entry: dict = {
            "speedup": self.speedup,
            "serial_cycles": self.serial.total,
            "parallel_cycles": self.parallel.total,
        }
        if self.serial.ledger is not None:
            entry["serial_breakdown"] = self.serial.ledger.to_dict()
        if self.parallel.ledger is not None:
            entry["parallel_breakdown"] = self.parallel.ledger.to_dict()
        events = getattr(self.report, "events", None)
        if events:
            entry["decisions"] = [e.to_dict() for e in events]
        return entry


def serial_estimate(source: str, entry: str,
                    bindings: Mapping[str, float],
                    machine: MachineConfig,
                    placements: Mapping[str, str] | None = None) -> PerfResult:
    """Estimate the original serial/scalar program (data in cluster
    memory — the paper's baseline)."""
    sf = parse_program(source)
    est = PerfEstimator(sf, machine, prefetch=False, placements=placements,
                        serial_data_placement="cluster")
    return est.estimate(entry, bindings)


def restructured_estimate(source: str, entry: str,
                          bindings: Mapping[str, float],
                          machine: MachineConfig,
                          options: RestructurerOptions | None = None,
                          prefetch: bool = True,
                          placements: Mapping[str, str] | None = None,
                          ) -> tuple[PerfResult, F.SourceFile, object]:
    """Restructure then estimate; returns (result, cedar AST, report)."""
    sf = parse_program(source)
    opts = options or RestructurerOptions()
    cedar, report = Restructurer(opts).run(sf)
    est = PerfEstimator(cedar, machine, prefetch=prefetch,
                        placements=placements)
    return est.estimate(entry, bindings), cedar, report


def estimate_pair(source: str, entry: str,
                  bindings: Mapping[str, float],
                  machine: MachineConfig,
                  options: RestructurerOptions | None = None,
                  prefetch: bool = True,
                  placements: Mapping[str, str] | None = None) -> SpeedupResult:
    """Serial + restructured estimates and their speedup."""
    ser = serial_estimate(source, entry, bindings, machine)
    par, _, report = restructured_estimate(
        source, entry, bindings, machine, options, prefetch, placements)
    return SpeedupResult(serial=ser, parallel=par, report=report)


def scale_bindings(bindings: Mapping[str, float], n: int,
                   size_keys: tuple[str, ...]) -> dict[str, float]:
    """Override the size symbols of a bindings dict (for sweeps)."""
    out = dict(bindings)
    for k in size_keys:
        if k in out:
            out[k] = n
    return out
