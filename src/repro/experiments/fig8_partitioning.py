"""Figure 8: data partitioning in the Conjugate Gradient algorithm.

Speed of CG relative to a 1-cluster variant with its data in cluster
memory, for 1-4 clusters:

- **global placement** (solid curve): the automatic compilation puts the
  data in global memory.  One cluster gains ~1.6× from the higher global
  transfer rate + prefetch, but past two clusters the program saturates
  the global memory system and the curve flattens (~4 at 4 clusters).
- **data distribution** (dashed): half the references are localized to
  cluster memory; slower on one cluster, near-linear through four.
"""

from __future__ import annotations

from repro.experiments.common import direct_estimate
from repro.experiments.report import Table
from repro.fortran.parser import parse_program
from repro.machine.config import cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.restructurer.pipeline import Restructurer
from repro.workloads.linalg import LINALG_ROUTINES

#: paper series, speed relative to the 1-cluster cluster-memory variant
PAPER = {
    "global": {1: 1.6, 2: 3.1, 3: 3.8, 4: 4.1},
    "partitioned": {1: 1.35, 2: 2.6, 3: 3.9, 4: 5.0},
}

#: localizing the matrix (the bulk of the references) models the paper's
#: "50% of its data references localized to the cluster memory"
PARTITIONED_PLACEMENTS = {"a": "cluster"}


def run(quick: bool = False) -> Table:
    cg = LINALG_ROUTINES["cg"]
    n = 100 if quick else cg.table1_size
    b = cg.bindings(n)
    opts = RestructurerOptions.automatic()

    sf, _ = Restructurer(opts).run(parse_program(cg.source))

    # baseline: 1 cluster, data in cluster memory
    base_machine = cedar_config1().with_clusters(1)
    base = direct_estimate(sf, cg.entry, b, base_machine, "cg-1cluster",
                           placements={"a": "cluster", "b": "cluster",
                                       "x": "cluster", "r": "cluster",
                                       "p": "cluster", "q": "cluster"})

    t = Table(
        title="Figure 8: data partitioning in Conjugate Gradient "
              "(speed relative to 1-cluster, cluster-memory variant)",
        columns=["clusters", "global (paper)", "global (measured)",
                 "partitioned (paper)", "partitioned (measured)"],
    )
    for c in (1, 2, 3, 4):
        machine = cedar_config1().with_clusters(c)
        g = direct_estimate(sf, cg.entry, b, machine, f"cg-global-{c}cl")
        part = direct_estimate(sf, cg.entry, b, machine,
                               f"cg-partitioned-{c}cl",
                               placements=PARTITIONED_PLACEMENTS)
        t.add(c, PAPER["global"][c], base.total / g.total,
              PAPER["partitioned"][c], base.total / part.total)
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
