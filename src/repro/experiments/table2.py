"""Table 2: Perfect Benchmarks proxies — automatic vs manually-improved
speedups on the Alliant FX/80 and Cedar.

"Automatic" runs the baseline 1991 restructurer configuration;
"manual" switches on the hand-applied techniques of §4.1 (array
privatization, generalized induction variables, run-time dependence
tests, array/multi-statement reductions, critical sections,
interprocedural analysis + inlining, fusion).  The paper's headline: the
manual codes average 4.5× the automatic ones on the FX/80 and 17.2× on
Cedar.
"""

from __future__ import annotations

from repro.experiments.common import estimate_pair
from repro.experiments.report import Table
from repro.machine.config import alliant_fx80, cedar_config1, cedar_config2
from repro.restructurer.options import RestructurerOptions
from repro.workloads.perfect import PERFECT_PROGRAMS

ORDER = ["ARC2D", "FLO52", "BDNA", "DYFESM", "ADM", "MDG",
         "MG3D", "OCEAN", "TRACK", "TRFD", "QCD", "SPEC77"]


def run(quick: bool = False, n_override: int | None = None) -> Table:
    """Regenerate Table 2."""
    fx80 = alliant_fx80()
    t = Table(
        title="Table 2: Perfect Benchmarks proxies — speedups vs serial "
              "(automatic / manually improved)",
        columns=["program",
                 "fx80 auto", "cedar auto", "fx80 manual", "cedar manual",
                 "paper fx80 auto", "paper cedar auto",
                 "paper fx80 manual", "paper cedar manual"],
    )
    auto = RestructurerOptions.automatic()
    manual = RestructurerOptions.manual()
    fx80_auto = dict(auto.__dict__)
    ratios_fx = []
    ratios_cedar = []
    t.meta["trace"] = {}
    for name in ORDER:
        p = PERFECT_PROGRAMS[name]
        n = n_override or (max(16, p.default_n // 4) if quick else p.default_n)
        b = p.bindings(n)
        cells = {}
        for mach_label, machine, cfg in (
            ("fx80", fx80, None),
            ("cedar", cedar_config1(), None),
        ):
            for opt_label, opts in (("auto", auto), ("manual", manual)):
                res = estimate_pair(p.source, p.entry, b, machine, opts)
                cells[f"{mach_label} {opt_label}"] = res.speedup
                if mach_label == "cedar" and opt_label == "manual":
                    t.meta["trace"][name] = res.trace_entry()
        t.add(name,
              cells["fx80 auto"], cells["cedar auto"],
              cells["fx80 manual"], cells["cedar manual"],
              p.paper["fx80_auto"], p.paper["cedar_auto"],
              p.paper["fx80_manual"], p.paper["cedar_manual"])
        ratios_fx.append(cells["fx80 manual"] / max(cells["fx80 auto"], 1e-9))
        ratios_cedar.append(cells["cedar manual"]
                            / max(cells["cedar auto"], 1e-9))
    avg_fx = sum(ratios_fx) / len(ratios_fx)
    avg_cedar = sum(ratios_cedar) / len(ratios_cedar)
    t.notes.append(f"average manual improvement: FX/80 {avg_fx:.1f}x "
                   f"(paper 4.5x), Cedar {avg_cedar:.1f}x (paper 17.2x)")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
