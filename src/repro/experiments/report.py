"""Plain-text rendering of experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Table:
    """One experiment's output: a titled grid of rows."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: machine-readable side data (per-workload traces, breakdowns, ...)
    meta: dict = field(default_factory=dict)

    def add(self, *values: Any) -> None:
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    def row(self, key: Any) -> list[Any]:
        for r in self.rows:
            if r[0] == key:
                return r
        raise KeyError(key)

    def cell(self, key: Any, column: str):
        return self.row(key)[self.columns.index(column)]

    def to_dict(self) -> dict:
        """JSON-ready form: rows become {column: value} records."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(zip(self.columns, r)) for r in self.rows],
            "notes": list(self.notes),
            "meta": self.meta,
        }

    def render(self) -> str:
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                # pick precision by magnitude (sign excluded, so that
                # e.g. -123.4 and 123.4 round the same way)
                if abs(v) >= 100:
                    return f"{v:.0f}"
                if abs(v) >= 10:
                    return f"{v:.1f}"
                return f"{v:.2f}"
            return str(v)

        grid = [self.columns] + [[fmt(v) for v in r] for r in self.rows]
        widths = [max(len(row[i]) for row in grid)
                  for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        for j, row in enumerate(grid):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)
