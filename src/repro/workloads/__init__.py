"""Workloads: the paper's experimental programs.

- :mod:`repro.workloads.linalg` — the linear-algebra routines of Table 1
  (conjugate gradient plus Numerical-Recipes-style routines, rewritten in
  clean Fortran 77).
- :mod:`repro.workloads.perfect` — proxy kernels for the Perfect
  Benchmarks of Table 2; each embeds the parallelization obstacles the
  paper documents for that program (§4.1).
- :mod:`repro.workloads.synthetic` — small loops used by unit tests.
"""

from dataclasses import dataclass
from typing import Callable, Optional

from repro.workloads.linalg import LINALG_ROUTINES, LinalgRoutine
from repro.workloads.perfect import PERFECT_PROGRAMS, PerfectProgram

#: interpreter-friendly data sizes for differential validation — small
#: enough that every workload runs under the pure-Python interpreter in
#: well under a second, large enough that each parallel loop gets many
#: iterations per simulated processor
VALIDATE_N = {
    "cg": 24, "ludcmp": 24, "lubksb": 24, "sparse": 24, "gaussj": 24,
    "svbksb": 16, "svdcmp": 16, "mprove": 20, "toeplz": 20, "tridag": 24,
    "ARC2D": 16, "FLO52": 16, "BDNA": 16, "DYFESM": 16, "ADM": 16,
    "MDG": 16, "MG3D": 16, "OCEAN": 16, "TRACK": 16, "TRFD": 16,
    "QCD": 16, "SPEC77": 16,
}

#: workloads whose outputs are order-sensitive only up to a permutation
#: (unordered critical-section hit lists)
PERMUTATION_OK = frozenset({"TRACK"})


@dataclass(frozen=True)
class ValidationCase:
    """Uniform view of one workload for the translation validator."""

    name: str
    suite: str                    # "linalg" | "perfect"
    source: str
    entry: str
    make_args: Callable           # (n, rng) -> (args, aux)
    n: int                        # default validation size
    permutation_ok: bool = False
    verify: Optional[Callable] = None  # (n, aux, result) -> bool, if any


def validation_cases() -> dict[str, ValidationCase]:
    """Every workload as a :class:`ValidationCase`, keyed by name."""
    out: dict[str, ValidationCase] = {}
    for r in LINALG_ROUTINES.values():
        out[r.name] = ValidationCase(
            name=r.name, suite="linalg", source=r.source, entry=r.entry,
            make_args=r.make_args, n=VALIDATE_N.get(r.name, 16),
            permutation_ok=r.name in PERMUTATION_OK, verify=r.verify)
    for p in PERFECT_PROGRAMS.values():
        out[p.name] = ValidationCase(
            name=p.name, suite="perfect", source=p.source, entry=p.entry,
            make_args=p.make_args, n=VALIDATE_N.get(p.name, 16),
            permutation_ok=p.name in PERMUTATION_OK)
    return out


__all__ = ["LINALG_ROUTINES", "LinalgRoutine",
           "PERFECT_PROGRAMS", "PerfectProgram",
           "ValidationCase", "validation_cases",
           "VALIDATE_N", "PERMUTATION_OK"]
