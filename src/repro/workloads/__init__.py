"""Workloads: the paper's experimental programs.

- :mod:`repro.workloads.linalg` — the linear-algebra routines of Table 1
  (conjugate gradient plus Numerical-Recipes-style routines, rewritten in
  clean Fortran 77).
- :mod:`repro.workloads.perfect` — proxy kernels for the Perfect
  Benchmarks of Table 2; each embeds the parallelization obstacles the
  paper documents for that program (§4.1).
- :mod:`repro.workloads.synthetic` — small loops used by unit tests.
"""

from repro.workloads.linalg import LINALG_ROUTINES, LinalgRoutine
from repro.workloads.perfect import PERFECT_PROGRAMS, PerfectProgram

__all__ = ["LINALG_ROUTINES", "LinalgRoutine",
           "PERFECT_PROGRAMS", "PerfectProgram"]
