"""SVD back substitution (Table 1: size 200, speedup 32).

``x = V diag(1/w) U^T b`` — two fully parallel outer loops with
dot-product inner reductions; the near-ideal structure behind the high
speedup at a small size.
"""

from __future__ import annotations

import numpy as np

NAME = "svbksb"
ENTRY = "svbksb"
TABLE1_SIZE = 200
PAPER_SPEEDUP = 32.0
PASSES = 1.0

SOURCE = """
      subroutine svbksb(m, n, u, w, v, b, x, tmp)
      integer m, n
      real u(m, n), w(n), v(n, n), b(m), x(n), tmp(n)
      real s
      integer i, j, k
      do j = 1, n
         s = 0.0
         if (w(j) .ne. 0.0) then
            do i = 1, m
               s = s + u(i, j) * b(i)
            end do
            s = s / w(j)
         end if
         tmp(j) = s
      end do
      do j = 1, n
         s = 0.0
         do k = 1, n
            s = s + v(j, k) * tmp(k)
         end do
         x(j) = s
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    m = n
    a = rng.standard_normal((m, n)) + np.eye(n) * 2.0
    u, w, vt = np.linalg.svd(a)
    u = u[:, :n]
    v = vt.T
    xs = rng.standard_normal(n)
    b = a @ xs
    return (m, n, np.asfortranarray(u), w.copy(), np.asfortranarray(v),
            b.copy(), np.zeros(n), np.zeros(n)), (a, xs)


def bindings(n: int) -> dict:
    return {"n": n, "m": n}


def verify(n: int, aux, result) -> bool:
    a, xs = aux
    return bool(np.allclose(result["x"], xs,
                            atol=1e-4 * (1 + np.abs(xs).max())))
