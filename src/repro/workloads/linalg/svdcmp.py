"""Singular value decomposition via one-sided Jacobi sweeps
(Table 1: size 200, speedup 7.2).

The sweep/pair loops carry dependences (columns are rotated in place);
parallelism lives in the column-length inner loops (dot products and
rotation updates) — matching the paper's middling speedup.
"""

from __future__ import annotations

import numpy as np

NAME = "svdcmp"
ENTRY = "svdcmp"
TABLE1_SIZE = 200
PAPER_SPEEDUP = 7.2
PASSES = 12.0

SOURCE = """
      subroutine svdcmp(m, n, nsweep, a, w)
      integer m, n, nsweep
      real a(m, n), w(n)
      real alpha, beta, gamma, zeta, t, c, s, tmp
      integer sw, p, q, i
      do sw = 1, nsweep
         do p = 1, n - 1
            do q = p + 1, n
               alpha = 0.0
               beta = 0.0
               gamma = 0.0
               do i = 1, m
                  alpha = alpha + a(i, p) * a(i, p)
                  beta = beta + a(i, q) * a(i, q)
                  gamma = gamma + a(i, p) * a(i, q)
               end do
               if (abs(gamma) .gt. 1.0e-12 * sqrt(alpha * beta)) then
                  zeta = (beta - alpha) / (2.0 * gamma)
                  t = sign(1.0, zeta)
     &                / (abs(zeta) + sqrt(1.0 + zeta * zeta))
                  c = 1.0 / sqrt(1.0 + t * t)
                  s = c * t
                  do i = 1, m
                     tmp = a(i, p)
                     a(i, p) = c * tmp - s * a(i, q)
                     a(i, q) = s * tmp + c * a(i, q)
                  end do
               end if
            end do
         end do
      end do
      do q = 1, n
         gamma = 0.0
         do i = 1, m
            gamma = gamma + a(i, q) * a(i, q)
         end do
         w(q) = sqrt(gamma)
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    m = n
    a = rng.standard_normal((m, n))
    nsweep = 10
    return (m, n, nsweep, np.asfortranarray(a.copy()), np.zeros(n)), a


def bindings(n: int) -> dict:
    return {"n": n, "m": n, "nsweep": 10}


def verify(n: int, aux, result) -> bool:
    a0 = aux
    w = np.sort(result["w"])[::-1]
    ref = np.linalg.svd(a0, compute_uv=False)
    return bool(np.allclose(w, ref, atol=1e-3 * (1 + ref.max())))
