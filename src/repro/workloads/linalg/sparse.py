"""Sparse linear solver: conjugate gradient with CSR matvec
(Table 1: size 800, speedup 29).

The indirect subscripts ``x(col(k))`` defeat exact dependence testing on
reads, but reads never block parallelization; the outer matvec row loop
stays parallel with a privatized accumulator.
"""

from __future__ import annotations

import numpy as np

NAME = "sparse"
ENTRY = "sparsecg"
TABLE1_SIZE = 800
PAPER_SPEEDUP = 29.0
PASSES = 20.0

SOURCE = """
      subroutine spmv(n, rowptr, col, val, x, y)
      integer n
      integer rowptr(n + 1), col(*)
      real val(*), x(n), y(n)
      real s
      integer i, k
      do i = 1, n
         s = 0.0
         do k = rowptr(i), rowptr(i + 1) - 1
            s = s + val(k) * x(col(k))
         end do
         y(i) = s
      end do
      end

      subroutine sparsecg(n, niter, rowptr, col, val, b, x, r, p, q)
      integer n, niter
      integer rowptr(n + 1), col(*)
      real val(*), b(n), x(n), r(n), p(n), q(n)
      real rho, rhonew, alpha, beta, pq
      integer it, i
      do i = 1, n
         x(i) = 0.0
         r(i) = b(i)
         p(i) = b(i)
      end do
      rho = 0.0
      do i = 1, n
         rho = rho + r(i) * r(i)
      end do
      do it = 1, niter
         call spmv(n, rowptr, col, val, p, q)
         pq = 0.0
         do i = 1, n
            pq = pq + p(i) * q(i)
         end do
         alpha = rho / pq
         do i = 1, n
            x(i) = x(i) + alpha * p(i)
            r(i) = r(i) - alpha * q(i)
         end do
         rhonew = 0.0
         do i = 1, n
            rhonew = rhonew + r(i) * r(i)
         end do
         beta = rhonew / rho
         rho = rhonew
         do i = 1, n
            p(i) = r(i) + beta * p(i)
         end do
      end do
      end
"""


def make_csr(n: int, rng: np.random.Generator):
    """SPD pentadiagonal-ish sparse matrix in CSR (1-based indices)."""
    rowptr = np.zeros(n + 1, dtype=np.int64)
    cols: list[int] = []
    vals: list[float] = []
    band = 3
    rowptr[0] = 1
    dense = np.zeros((n, n))
    for i in range(n):
        for off in range(-band, band + 1):
            j = i + off
            if 0 <= j < n:
                v = 2.0 * band + 1.5 if off == 0 else -0.5
                cols.append(j + 1)
                vals.append(v)
                dense[i, j] = v
        rowptr[i + 1] = len(cols) + 1
    return (rowptr, np.array(cols, dtype=np.int64),
            np.array(vals), dense)


def make_args(n: int, rng: np.random.Generator):
    rowptr, col, val, dense = make_csr(n, rng)
    xs = rng.standard_normal(n)
    b = dense @ xs
    niter = min(2 * n, 50)
    return (n, niter, rowptr, col, val, b,
            np.zeros(n), np.zeros(n), np.zeros(n), np.zeros(n)), (dense, b, xs)


def bindings(n: int) -> dict:
    return {"n": n, "niter": min(2 * n, 50)}


def verify(n: int, aux, result) -> bool:
    dense, b, xs = aux
    x = result["x"]
    return bool(np.linalg.norm(dense @ x - b) / np.linalg.norm(b) < 1e-4)
