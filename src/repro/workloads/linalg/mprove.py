"""Iterative improvement of a linear solution (Table 1: size 1000,
speedup 1079).

The headline anomaly: the serial version holds **two** n×n matrices (the
original ``a`` and its factorization ``alud``) in one cluster's memory,
which pages/thrashes past size ≈800 on Cedar Configuration 1, while the
parallel version's data lives in the 64 MB global memory and fits —
hence a speedup far beyond the machine's processor count.
"""

from __future__ import annotations

import numpy as np

NAME = "mprove"
ENTRY = "mprove"
TABLE1_SIZE = 1000
PAPER_SPEEDUP = 1079.0
PASSES = 6.0

SOURCE = """
      subroutine mprove(n, a, alud, b, x, r)
      integer n
      real a(n, n), alud(n, n), b(n), x(n), r(n)
      real s
      integer i, j
      do i = 1, n
         s = -b(i)
         do j = 1, n
            s = s + a(i, j) * x(j)
         end do
         r(i) = s
      end do
      do i = 1, n
         s = r(i)
         do j = 1, i - 1
            s = s - alud(i, j) * r(j)
         end do
         r(i) = s
      end do
      do i = n, 1, -1
         s = r(i)
         do j = i + 1, n
            s = s - alud(i, j) * r(j)
         end do
         r(i) = s / alud(i, i)
      end do
      do i = 1, n
         x(i) = x(i) - r(i)
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    a = rng.standard_normal((n, n))
    a += np.eye(n) * (np.abs(a).sum(axis=1) + 1.0)
    # Doolittle LU of a (no pivoting; a is diagonally dominant)
    alud = a.copy()
    for k in range(n):
        alud[k + 1:, k] /= alud[k, k]
        alud[k + 1:, k + 1:] -= np.outer(alud[k + 1:, k], alud[k, k + 1:])
    xs = rng.standard_normal(n)
    b = a @ xs
    x = xs + rng.standard_normal(n) * 1e-4  # slightly wrong solution
    return (n, np.asfortranarray(a), np.asfortranarray(alud),
            b.copy(), x.copy(), np.zeros(n)), (a, b, xs, x.copy())


def bindings(n: int) -> dict:
    return {"n": n}


def verify(n: int, aux, result) -> bool:
    a, b, xs, x0 = aux
    x1 = result["x"]
    e0 = np.linalg.norm(x0 - xs)
    e1 = np.linalg.norm(x1 - xs)
    return bool(e1 < e0 * 0.5 or e1 < 1e-8)
