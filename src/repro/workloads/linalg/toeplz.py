"""Toeplitz system solver, Levinson-style recursion (Table 1: size 800,
speedup 1.3).

The outer order-recursion is inherently sequential and its update loop's
reflective subscripts (``x(j)`` vs ``x(k-j)``) defeat parallelization —
the paper's near-1 speedup.
"""

from __future__ import annotations

import numpy as np

NAME = "toeplz"
ENTRY = "toeplz"
TABLE1_SIZE = 800
PAPER_SPEEDUP = 1.3
PASSES = 2.0

SOURCE = """
      subroutine toeplz(n, r, x, y, g, h)
      integer n
      real r(2 * n - 1), x(n), y(n), g(n), h(n)
      real sxn, sd, sgn, shn, sgd, t1, t2
      integer k, j, m
      x(1) = y(1) / r(n)
      if (n .eq. 1) return
      g(1) = r(n - 1) / r(n)
      h(1) = r(n + 1) / r(n)
      do m = 1, n - 1
         sxn = -y(m + 1)
         sd = -r(n)
         do j = 1, m
            sxn = sxn + r(n + m + 1 - j) * x(j)
            sd = sd + r(n + m + 1 - j) * g(m - j + 1)
         end do
         x(m + 1) = sxn / sd
         do j = 1, m
            x(j) = x(j) - x(m + 1) * g(m - j + 1)
         end do
         if (m + 1 .lt. n) then
            sgn = -r(n - m - 1)
            shn = -r(n + m + 1)
            sgd = -r(n)
            do j = 1, m
               sgn = sgn + r(n + j - m - 1) * g(j)
               shn = shn + r(n + m + 1 - j) * h(j)
               sgd = sgd + r(n + j - m - 1) * h(m - j + 1)
            end do
            t1 = sgn / sgd
            t2 = shn / sd
            do j = 1, m
               g(j) = g(j) - t1 * h(m - j + 1)
               h(m + 1 - j) = h(m + 1 - j) - t2 * g(m + 1 - j)
            end do
            g(m + 1) = t1
            h(m + 1) = t2
         end if
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    c = rng.standard_normal(2 * n - 1) * 0.1
    c[n - 1] = 2.0 * n ** 0.5  # dominant diagonal
    # r holds the Toeplitz diagonals: T[i,j] = r(n + i - j)
    t = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            t[i, j] = c[(n - 1) + (i - j)]
    xs = rng.standard_normal(n)
    y = t @ xs
    return (n, c.copy(), np.zeros(n), y.copy(),
            np.zeros(n), np.zeros(n)), (t, xs)


def bindings(n: int) -> dict:
    return {"n": n}


def verify(n: int, aux, result) -> bool:
    t, xs = aux
    return bool(np.allclose(result["x"], xs,
                            atol=1e-3 * (1 + np.abs(xs).max())))
