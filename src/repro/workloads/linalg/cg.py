"""Conjugate Gradient (paper [23]; Table 1 row 1, size 400, speedup 163).

Dense symmetric positive-definite system.  The hot loops: the matrix-
vector product (outer loop parallel, inner loop a dot product), the
``dotproduct`` reductions the Cedar library parallelizes in two steps
(§3.3), and the vector updates.
"""

from __future__ import annotations

import numpy as np

NAME = "cg"
ENTRY = "cg"
TABLE1_SIZE = 400
PAPER_SPEEDUP = 163.0
PASSES = 25.0  # iterations stream the matrix repeatedly

SOURCE = """
      subroutine cg(n, niter, a, b, x, r, p, q)
      integer n, niter
      real a(n, n), b(n), x(n), r(n), p(n), q(n)
      real rho, rhonew, alpha, beta, pq, s
      integer it, i, j
      do i = 1, n
         x(i) = 0.0
         r(i) = b(i)
         p(i) = b(i)
      end do
      rho = 0.0
      do i = 1, n
         rho = rho + r(i) * r(i)
      end do
      do it = 1, niter
         do i = 1, n
            s = 0.0
            do j = 1, n
               s = s + a(i, j) * p(j)
            end do
            q(i) = s
         end do
         pq = 0.0
         do i = 1, n
            pq = pq + p(i) * q(i)
         end do
         alpha = rho / pq
         do i = 1, n
            x(i) = x(i) + alpha * p(i)
            r(i) = r(i) - alpha * q(i)
         end do
         rhonew = 0.0
         do i = 1, n
            rhonew = rhonew + r(i) * r(i)
         end do
         beta = rhonew / rho
         rho = rhonew
         do i = 1, n
            p(i) = r(i) + beta * p(i)
         end do
      end do
      end
"""


def make_inputs(n: int, rng: np.random.Generator):
    m = rng.standard_normal((n, n))
    a = (m @ m.T) / n + np.eye(n) * n * 0.1  # SPD, well conditioned
    xs = rng.standard_normal(n)
    b = a @ xs
    return a, b, xs


def make_args(n: int, rng: np.random.Generator):
    a, b, xs = make_inputs(n, rng)
    niter = min(2 * n, 60)
    return (n, niter, np.asfortranarray(a), b,
            np.zeros(n), np.zeros(n), np.zeros(n), np.zeros(n)), (a, b, xs)


def bindings(n: int) -> dict:
    return {"n": n, "niter": min(2 * n, 60)}


def verify(n: int, aux, result) -> bool:
    a, b, xs = aux
    x = result["x"]
    return bool(np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-4)
