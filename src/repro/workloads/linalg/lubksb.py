"""LU back substitution (Table 1: size 1000, speedup 6.8).

Both sweeps carry a recurrence on ``b`` in the outer loop; parallelism
comes from the inner dot-product reductions — hence a lower speedup than
the fully parallel routines.
"""

from __future__ import annotations

import numpy as np

NAME = "lubksb"
ENTRY = "lubksb"
TABLE1_SIZE = 1000
PAPER_SPEEDUP = 6.8
PASSES = 1.0

SOURCE = """
      subroutine lubksb(n, a, b)
      integer n
      real a(n, n), b(n)
      real s
      integer i, j
      do i = 1, n
         s = b(i)
         do j = 1, i - 1
            s = s - a(i, j) * b(j)
         end do
         b(i) = s
      end do
      do i = n, 1, -1
         s = b(i)
         do j = i + 1, n
            s = s - a(i, j) * b(j)
         end do
         b(i) = s / a(i, i)
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    a = rng.standard_normal((n, n))
    a += np.eye(n) * (np.abs(a).sum(axis=1) + 1.0)
    l = np.tril(a, -1) + np.eye(n)
    u = np.triu(a)
    xs = rng.standard_normal(n)
    b = (l @ (u @ xs))
    return (n, np.asfortranarray(a.copy()), b.copy()), (a, xs)


def bindings(n: int) -> dict:
    return {"n": n}


def verify(n: int, aux, result) -> bool:
    a, xs = aux
    return bool(np.allclose(result["b"], xs, atol=1e-5 * (1 + np.abs(xs).max())))
