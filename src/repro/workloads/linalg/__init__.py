"""Table 1 linear-algebra routines.

Each submodule defines one routine: its Fortran 77 source (rewritten from
the textbook algorithm — Numerical Recipes code is copyrighted), the data
size and speedup the paper reports, input builders, and a numpy-based
verifier used by the correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.linalg import (
    cg,
    gaussj,
    lubksb,
    ludcmp,
    mprove,
    sparse,
    svbksb,
    svdcmp,
    toeplz,
    tridag,
)


@dataclass(frozen=True)
class LinalgRoutine:
    """Descriptor of one Table 1 routine."""

    name: str
    source: str
    entry: str                     # subroutine to call / estimate
    table1_size: int
    paper_speedup: float
    make_args: Callable            # (n, rng) -> tuple of interpreter args
    bindings: Callable             # (n) -> {symbol: value} for the estimator
    verify: Callable               # (n, args_before, result) -> bool
    passes_over_data: float = 1.0  # rough data passes (paging model aid)


def _mk(mod) -> LinalgRoutine:
    return LinalgRoutine(
        name=mod.NAME, source=mod.SOURCE, entry=mod.ENTRY,
        table1_size=mod.TABLE1_SIZE, paper_speedup=mod.PAPER_SPEEDUP,
        make_args=mod.make_args, bindings=mod.bindings, verify=mod.verify,
        passes_over_data=getattr(mod, "PASSES", 1.0),
    )


LINALG_ROUTINES: dict[str, LinalgRoutine] = {
    m.NAME: _mk(m) for m in (
        cg, ludcmp, lubksb, sparse, gaussj,
        svbksb, svdcmp, mprove, toeplz, tridag,
    )
}
