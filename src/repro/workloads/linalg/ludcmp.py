"""LU decomposition, Doolittle form (Table 1: size 1000, speedup 9.2).

The outer ``k`` loop is sequential; the row/column update loops over
``j``/``i`` are parallel with dot-product inner reductions — the
structure behind the paper's moderate speedup.

Pivoting is omitted (inputs are made diagonally dominant) to keep the
loop structure clean — the NR version's pivot search adds a max-reduction
that the restructurer also handles, exercised separately in the tests.
"""

from __future__ import annotations

import numpy as np

NAME = "ludcmp"
ENTRY = "ludcmp"
TABLE1_SIZE = 1000
PAPER_SPEEDUP = 9.2
PASSES = 3.0

SOURCE = """
      subroutine ludcmp(n, a)
      integer n
      real a(n, n)
      real s
      integer i, j, k, m
      do k = 1, n
         do j = k, n
            s = a(k, j)
            do m = 1, k - 1
               s = s - a(k, m) * a(m, j)
            end do
            a(k, j) = s
         end do
         do i = k + 1, n
            s = a(i, k)
            do m = 1, k - 1
               s = s - a(i, m) * a(m, k)
            end do
            a(i, k) = s / a(k, k)
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    a = rng.standard_normal((n, n))
    a += np.eye(n) * (np.abs(a).sum(axis=1) + 1.0)  # diagonally dominant
    return (n, np.asfortranarray(a.copy())), a


def bindings(n: int) -> dict:
    return {"n": n}


def verify(n: int, aux, result) -> bool:
    a0 = aux
    lu = result["a"]
    l = np.tril(lu, -1) + np.eye(n)
    u = np.triu(lu)
    return bool(np.allclose(l @ u, a0, atol=1e-6 * np.abs(a0).max() * n))
