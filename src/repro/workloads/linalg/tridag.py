"""Tridiagonal solver, Thomas algorithm (Table 1: size 800, speedup 2.1).

Both sweeps are first-order recurrences; the forward sweep's coupled
``bet``/``u`` recursion resists the simple linear-recurrence library
idiom, so the routine stays near-serial — the paper's 2.1.
"""

from __future__ import annotations

import numpy as np

NAME = "tridag"
ENTRY = "tridag"
TABLE1_SIZE = 800
PAPER_SPEEDUP = 2.1
PASSES = 1.0

SOURCE = """
      subroutine tridag(n, a, b, c, r, u, gam)
      integer n
      real a(n), b(n), c(n), r(n), u(n), gam(n)
      real bet
      integer j
      bet = b(1)
      u(1) = r(1) / bet
      do j = 2, n
         gam(j) = c(j - 1) / bet
         bet = b(j) - a(j) * gam(j)
         u(j) = (r(j) - a(j) * u(j - 1)) / bet
      end do
      do j = n - 1, 1, -1
         u(j) = u(j) - gam(j + 1) * u(j + 1)
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    a = rng.standard_normal(n) * 0.3
    c = rng.standard_normal(n) * 0.3
    b = np.abs(rng.standard_normal(n)) + 2.0
    a[0] = 0.0
    c[-1] = 0.0
    t = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
    xs = rng.standard_normal(n)
    r = t @ xs
    return (n, a.copy(), b.copy(), c.copy(), r.copy(),
            np.zeros(n), np.zeros(n)), (t, xs)


def bindings(n: int) -> dict:
    return {"n": n}


def verify(n: int, aux, result) -> bool:
    t, xs = aux
    return bool(np.allclose(result["u"], xs,
                            atol=1e-4 * (1 + np.abs(xs).max())))
