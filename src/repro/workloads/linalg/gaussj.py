"""Gauss-Jordan elimination (Table 1: size 600, speedup 10).

The pivot row is hoisted into a shared temporary before the elimination
sweep — the style that lets the dependence tester prove the row loop
parallel (the raw ``a(i,j) -= f*a(k,j)`` form aliases row ``k``
symbolically).  Pivoting is omitted; inputs are diagonally dominant.
"""

from __future__ import annotations

import numpy as np

NAME = "gaussj"
ENTRY = "gaussj"
TABLE1_SIZE = 600
PAPER_SPEEDUP = 10.0
PASSES = 2.0

SOURCE = """
      subroutine gaussj(n, a, b, rowk)
      integer n
      real a(n, n), b(n), rowk(n)
      real piv, bk, f
      integer i, j, k
      do k = 1, n
         piv = 1.0 / a(k, k)
         do j = 1, n
            a(k, j) = a(k, j) * piv
            rowk(j) = a(k, j)
         end do
         b(k) = b(k) * piv
         bk = b(k)
         do i = 1, n
            if (i .ne. k) then
               f = a(i, k)
               do j = 1, n
                  a(i, j) = a(i, j) - f * rowk(j)
               end do
               b(i) = b(i) - f * bk
            end if
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    a = rng.standard_normal((n, n))
    a += np.eye(n) * (np.abs(a).sum(axis=1) + 1.0)
    xs = rng.standard_normal(n)
    b = a @ xs
    return (n, np.asfortranarray(a.copy()), b.copy(), np.zeros(n)), (a, xs)


def bindings(n: int) -> dict:
    return {"n": n}


def verify(n: int, aux, result) -> bool:
    a, xs = aux
    return bool(np.allclose(result["b"], xs,
                            atol=1e-4 * (1 + np.abs(xs).max())))
