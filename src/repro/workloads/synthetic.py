"""Small synthetic loops used by unit and integration tests."""

SAXPY = """
      subroutine saxpy(n, a, x, y)
      integer n
      real a, x(n), y(n)
      integer i
      do i = 1, n
         y(i) = y(i) + a * x(i)
      end do
      end
"""

PRIVATE_TEMP = """
      subroutine ptmp(n, a, b)
      integer n
      real a(n), b(n)
      real t
      integer i
      do i = 1, n
         t = b(i)
         a(i) = sqrt(t)
      end do
      end
"""

SCALAR_SUM = """
      subroutine ssum(n, a, total)
      integer n
      real a(n), total
      integer i
      do i = 1, n
         total = total + a(i)
      end do
      end
"""

STENCIL_2D = """
      subroutine sten(n, m, u, v)
      integer n, m
      real u(n, m), v(n, m)
      integer i, j
      do j = 2, m - 1
         do i = 2, n - 1
            v(i, j) = 0.25 * (u(i - 1, j) + u(i + 1, j)
     &                + u(i, j - 1) + u(i, j + 1))
         end do
      end do
      end
"""

CASCADE = """
      subroutine casc(n, a, b, c, d, e, f, g, h)
      integer n
      real a(n), b(n), c(n), d(n), e(n), f(n), g(n), h(n)
      integer i
      do i = 2, n
         c(i) = d(i) + e(i)
         g(i) = f(i) * h(i)
         b(i) = a(i) + b(i - 1)
      end do
      end
"""

TRIANGULAR_GIV = """
      subroutine tgiv(n, a)
      integer n
      real a(n * (n + 1) / 2)
      integer i, j, k
      k = 0
      do i = 1, n
         do j = 1, i
            k = k + 1
            a(k) = real(i) + 0.5 * real(j)
         end do
      end do
      end
"""

ALL_SOURCES = {
    "saxpy": SAXPY,
    "ptmp": PRIVATE_TEMP,
    "ssum": SCALAR_SUM,
    "sten": STENCIL_2D,
    "casc": CASCADE,
    "tgiv": TRIANGULAR_GIV,
}
