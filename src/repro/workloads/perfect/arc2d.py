"""ARC2D proxy: 2-D implicit fluid-dynamics sweeps.

The paper's best automatic result (8.7 FX/80, 13.5 Cedar): the sweep
loops are clean and the 1991 restructurer already parallelized them.
Manual improvement (10.6 / 20.8) came from larger-grain restructuring —
here, fusing the adjacent sweep loops.
"""

import numpy as np

NAME = "ARC2D"
ENTRY = "arc2d"
DEFAULT_N = 256
PAPER = {"fx80_auto": 8.7, "cedar_auto": 13.5,
         "fx80_manual": 10.6, "cedar_manual": 20.8}
TECHNIQUES = ("loop_fusion",)

SOURCE = """
      subroutine arc2d(nx, ny, nt, u, v, w)
      integer nx, ny, nt
      real u(nx, ny), v(nx, ny), w(nx, ny)
      integer t, i, j
      do t = 1, nt
         do j = 2, ny - 1
            do i = 2, nx - 1
               v(i, j) = 0.25 * (u(i - 1, j) + u(i + 1, j)
     &                   + u(i, j - 1) + u(i, j + 1))
            end do
         end do
         do j = 2, ny - 1
            do i = 2, nx - 1
               w(i, j) = v(i, j) * 0.9 + w(i, j) * 0.1
            end do
         end do
         do j = 2, ny - 1
            do i = 2, nx - 1
               u(i, j) = u(i, j) + 0.5 * (w(i, j) - u(i, j))
            end do
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    u = rng.standard_normal((n, n))
    v = np.zeros((n, n))
    w = np.zeros((n, n))
    nt = 5
    return (n, n, nt, np.asfortranarray(u), np.asfortranarray(v),
            np.asfortranarray(w)), None


def bindings(n: int) -> dict:
    return {"nx": n, "ny": n, "nt": 5}
