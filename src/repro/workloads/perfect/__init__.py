"""Proxy kernels for the Perfect Benchmarks programs of Table 2.

The real suite is large proprietary applications; each proxy here is a
compact Fortran 77 kernel embedding the *parallelization obstacles* the
paper documents for that program (§4.1) — so the automatic configuration
of the restructurer fails on it in the same way the 1991 KAP did, and the
"manual" (aggressive) configuration unlocks it through the same
techniques.  Table 2's auto-vs-manual structure is therefore reproduced
by construction of the same compiler decisions, not by curve fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.perfect import (
    adm,
    arc2d,
    bdna,
    dyfesm,
    flo52,
    mdg,
    mg3d,
    ocean,
    qcd,
    spec77,
    track,
    trfd,
)


@dataclass(frozen=True)
class PerfectProgram:
    """Descriptor of one Table 2 proxy."""

    name: str
    source: str
    entry: str
    paper: dict                # auto/manual speedups on fx80/cedar
    techniques: tuple[str, ...]  # §4.1 techniques the manual version needs
    make_args: Callable        # (n, rng) -> (args, aux)
    bindings: Callable         # (n) -> {symbol: value}
    default_n: int


def _mk(mod) -> PerfectProgram:
    return PerfectProgram(
        name=mod.NAME, source=mod.SOURCE, entry=mod.ENTRY,
        paper=mod.PAPER, techniques=tuple(mod.TECHNIQUES),
        make_args=mod.make_args, bindings=mod.bindings,
        default_n=mod.DEFAULT_N,
    )


PERFECT_PROGRAMS: dict[str, PerfectProgram] = {
    m.NAME: _mk(m) for m in (
        arc2d, flo52, bdna, dyfesm, adm, mdg,
        mg3d, ocean, track, trfd, qcd, spec77,
    )
}
