"""DYFESM proxy: explicit finite-element structural dynamics.

Auto 3.9/2.2 → manual 10.3/11.4: the element loop gathers nodal data into
private element arrays, computes, then scatters forces back through an
index map — an **array-element reduction** (``f(ix(..)) += ...``) plus
**array privatization** of the element workspace.
"""

import numpy as np

NAME = "DYFESM"
ENTRY = "dyfesm"
DEFAULT_N = 2048
PAPER = {"fx80_auto": 3.9, "cedar_auto": 2.2,
         "fx80_manual": 10.3, "cedar_manual": 11.4}
TECHNIQUES = ("array_privatization", "array_reductions")

SOURCE = """
      subroutine dyfesm(ne, nn, ix, xn, f)
      integer ne, nn
      integer ix(4, ne)
      real xn(nn), f(nn)
      real xe(4), fe(4)
      real vol
      integer e, k
      do e = 1, ne
         do k = 1, 4
            xe(k) = xn(ix(k, e))
         end do
         vol = (xe(1) + xe(2) + xe(3) + xe(4)) * 0.25
         do k = 1, 4
            fe(k) = (xe(k) - vol) * 2.0
         end do
         do k = 1, 4
            f(ix(k, e)) = f(ix(k, e)) + fe(k)
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    ne = n
    nn = max(16, n // 16)  # many elements share few nodes (real meshes)
    ix = np.zeros((4, ne), dtype=np.int64, order="F")
    for e in range(ne):
        for k in range(4):
            ix[k, e] = (e + k * 2) % nn + 1
    xn = rng.standard_normal(nn)
    return (ne, nn, ix, xn, np.zeros(nn)), None


def bindings(n: int) -> dict:
    return {"ne": n, "nn": max(16, n // 16)}
