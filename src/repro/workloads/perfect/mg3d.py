"""MG3D proxy: 3-D seismic migration.

Auto 1.5/0.9 → manual 13.3/48.8: depth-extrapolation loops call a
per-trace filter routine (**inlining/interprocedural** needed) and use
large per-trace workspaces (**array privatization**).  The very large
manual Cedar speedup reflects the big data set exceeding one cluster's
memory in the serial run.
"""

import numpy as np

NAME = "MG3D"
ENTRY = "mg3d"
DEFAULT_N = 256
PAPER = {"fx80_auto": 1.5, "cedar_auto": 0.9,
         "fx80_manual": 13.3, "cedar_manual": 48.8}
TECHNIQUES = ("inline_expansion", "interprocedural", "array_privatization")

SOURCE = """
      subroutine filtrc(m, tin, tout)
      integer m
      real tin(m), tout(m)
      integer k
      tout(1) = tin(1)
      do k = 2, m
         tout(k) = 0.7 * tin(k) + 0.3 * tin(k - 1)
      end do
      end

      subroutine mg3d(nt, m, nz, trace, image)
      integer nt, m, nz
      real trace(m, nt), image(m, nt)
      real tw(1024), tf(1024)
      integer iz, it, k
      do iz = 1, nz
         do it = 1, nt
            do k = 1, m
               tw(k) = trace(k, it) * 0.99
            end do
            call filtrc(m, tw, tf)
            do k = 1, m
               image(k, it) = image(k, it) + tf(k)
               trace(k, it) = tf(k)
            end do
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    m = n
    nt = n
    nz = 3
    trace = rng.standard_normal((m, nt))
    return (nt, m, nz, np.asfortranarray(trace),
            np.zeros((m, nt), order="F")), None


def bindings(n: int) -> dict:
    return {"nt": n, "m": n, "nz": 3}
