"""SPEC77 proxy: spectral global weather model.

Auto 2.4/2.4 → manual 10.2/15.7: the spectral-transform loops accumulate
Fourier coefficients with **multiple accumulation statements per
statement group** (§4.1.3 names SPEC77 among the programs needing the
parallel-reduction transformation) over privatizable work arrays.
"""

import numpy as np

NAME = "SPEC77"
ENTRY = "spec77"
DEFAULT_N = 256
PAPER = {"fx80_auto": 2.4, "cedar_auto": 2.4,
         "fx80_manual": 10.2, "cedar_manual": 15.7}
TECHNIQUES = ("array_privatization", "array_reductions",
              "multi_stmt_reductions")

SOURCE = """
      subroutine spec77(nlat, nwave, grid, cosw, sinw,
     &                  coefa, coefb, flux)
      integer nlat, nwave
      real grid(nlat, nwave), cosw(nlat, nwave), sinw(nlat, nwave)
      real coefa(nwave), coefb(nwave), flux(nlat)
      real gw(1024)
      integer i, k
      do i = 1, nlat
         do k = 1, nwave
            gw(k) = grid(i, k) * (1.0 + 0.01 * i)
         end do
         do k = 1, nwave
            coefa(k) = coefa(k) + gw(k) * cosw(i, k)
            coefb(k) = coefb(k) + gw(k) * sinw(i, k)
         end do
      end do
      do i = 1, nlat
         flux(i) = 0.0
         do k = 1, nwave
            flux(i) = flux(i) + grid(i, k) * grid(i, k)
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    nlat = n
    nwave = n
    grid = rng.standard_normal((nlat, nwave))
    cosw = np.cos(np.outer(np.arange(1, nlat + 1),
                           np.arange(1, nwave + 1)) * 0.01)
    sinw = np.sin(np.outer(np.arange(1, nlat + 1),
                           np.arange(1, nwave + 1)) * 0.01)
    return (nlat, nwave, np.asfortranarray(grid), np.asfortranarray(cosw),
            np.asfortranarray(sinw), np.zeros(nwave), np.zeros(nwave),
            np.zeros(nlat)), None


def bindings(n: int) -> dict:
    return {"nlat": n, "nwave": n}
