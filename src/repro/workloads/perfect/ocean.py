"""OCEAN proxy: 2-D ocean circulation via spectral methods.

Auto 1.4/0.7 → manual 8.9/16.7.  Two documented obstacles (§4.1.4,
§4.1.5):

- 65% of serial time in loops indexing 1-D arrays with *linearized*
  subscripts ``wk(i + lda*(j-1))`` — only a **run-time dependence test**
  proves the ``j`` iterations disjoint;
- a multiplicative (geometric) **generalized induction variable** in the
  wave-amplitude loop whose recognition unlocked a 15.8× loop speedup.
"""

import numpy as np

NAME = "OCEAN"
ENTRY = "ocean"
DEFAULT_N = 256
PAPER = {"fx80_auto": 1.4, "cedar_auto": 0.7,
         "fx80_manual": 8.9, "cedar_manual": 16.7}
TECHNIQUES = ("runtime_dependence_test", "generalized_induction")

SOURCE = """
      subroutine ocean(ni, nj, lda, decay, wk, d, wave)
      integer ni, nj, lda
      real decay
      real wk(*), d(ni), wave(ni, nj)
      real amp
      integer i, j
      do j = 1, nj
         do i = 1, ni
            wk(i + lda * (j - 1)) = wk(i + lda * (j - 1)) * 0.5 + d(i)
         end do
      end do
      amp = 1.0
      do j = 1, nj
         amp = amp * decay
         do i = 1, ni
            wave(i, j) = wave(i, j) * amp + wk(i + lda * (j - 1))
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    ni = n
    nj = n
    lda = n  # rows exactly adjacent: parallel-safe, provable only at run time
    wk = rng.standard_normal(lda * nj)
    d = rng.standard_normal(ni)
    wave = rng.standard_normal((ni, nj))
    return (ni, nj, lda, 0.98, wk, d, np.asfortranarray(wave)), None


def bindings(n: int) -> dict:
    return {"ni": n, "nj": n, "lda": n, "decay": 0.98}
