"""ADM proxy: pseudospectral air-pollution model.

Auto 1.2/0.6 → manual 7.1/10.1: the column loop calls a smoothing
subroutine per column; without **inline expansion / interprocedural
analysis** the call is opaque and the loop stays serial (on Cedar the
parallel overhead even made it *slower* than serial — auto 0.6).
"""

import numpy as np

NAME = "ADM"
ENTRY = "adm"
DEFAULT_N = 256
PAPER = {"fx80_auto": 1.2, "cedar_auto": 0.6,
         "fx80_manual": 7.1, "cedar_manual": 10.1}
TECHNIQUES = ("inline_expansion", "interprocedural", "array_privatization")

SOURCE = """
      subroutine smooth(m, qcol, wcol)
      integer m
      real qcol(m), wcol(m)
      integer k
      wcol(1) = qcol(1)
      wcol(m) = qcol(m)
      do k = 2, m - 1
         wcol(k) = 0.25 * qcol(k - 1) + 0.5 * qcol(k)
     &             + 0.25 * qcol(k + 1)
      end do
      end

      subroutine adm(n, m, q, p)
      integer n, m
      real q(m, n), p(m, n)
      real qcol(1024), wcol(1024)
      integer i, k
      do i = 1, n
         do k = 1, m
            qcol(k) = q(k, i)
         end do
         call smooth(m, qcol, wcol)
         do k = 1, m
            p(k, i) = wcol(k) * 2.0 - q(k, i)
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    m = n
    q = rng.standard_normal((m, n))
    return (n, m, np.asfortranarray(q),
            np.zeros((m, n), order="F")), None


def bindings(n: int) -> dict:
    return {"n": n, "m": n}
