"""TRACK proxy: missile-tracking with shared observation tables.

Auto 1.0/0.4 → manual 4.0/5.2: the candidate-matching loop is parallel
except for appending hits to a shared list (``nhit = nhit + 1`` /
``hits(nhit) = i``) — an **unordered critical section** (§4.1.6); the
automatic restructurer serializes the whole loop (and on Cedar the
attempt cost made it 2.5× slower than serial).
"""

import numpy as np

NAME = "TRACK"
ENTRY = "track"
DEFAULT_N = 4096
PAPER = {"fx80_auto": 1.0, "cedar_auto": 0.4,
         "fx80_manual": 4.0, "cedar_manual": 5.2}
TECHNIQUES = ("critical_sections", "doacross")

SOURCE = """
      subroutine track(n, m, obs, tgt, thresh, hits, nhit)
      integer n, m, nhit
      real obs(n), tgt(m), thresh
      integer hits(n)
      real d, best
      integer i, k
      do i = 1, n
         best = 1.0e30
         do k = 1, m
            d = abs(obs(i) - tgt(k))
            if (d .lt. best) best = d
         end do
         if (best .lt. thresh) then
            nhit = nhit + 1
            hits(nhit) = i
         end if
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    m = 64
    obs = rng.standard_normal(n) * 10.0
    tgt = rng.standard_normal(m) * 10.0
    return (n, m, obs, tgt, 0.5, np.zeros(n, dtype=np.int64), 0), None


def bindings(n: int) -> dict:
    return {"n": n, "m": 64, "thresh": 0.5}
