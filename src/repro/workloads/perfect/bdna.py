"""BDNA proxy: molecular dynamics of DNA with water.

Auto 1.9/1.8 → manual 5.6/8.5: the paper lists BDNA under **array
privatization** and **parallel reductions** — the outer particle loop
computes per-particle work arrays and accumulates multi-statement energy
sums.
"""

import numpy as np

NAME = "BDNA"
ENTRY = "bdna"
DEFAULT_N = 256
PAPER = {"fx80_auto": 1.9, "cedar_auto": 1.8,
         "fx80_manual": 5.6, "cedar_manual": 8.5}
TECHNIQUES = ("array_privatization", "multi_stmt_reductions")

SOURCE = """
      subroutine bdna(n, x, y, z, fx, e)
      integer n
      real x(n), y(n), z(n), fx(n), e
      real dx(1024), dy(1024), dz(1024), r2(1024)
      real s
      integer i, j
      do i = 1, n
         do j = 1, n
            dx(j) = x(i) - x(j)
            dy(j) = y(i) - y(j)
            dz(j) = z(i) - z(j)
            r2(j) = dx(j) * dx(j) + dy(j) * dy(j) + dz(j) * dz(j) + 0.1
         end do
         s = 0.0
         do j = 1, n
            s = s + dx(j) / r2(j)
         end do
         fx(i) = s
         do j = 1, n
            e = e + 1.0 / r2(j)
            e = e + 0.5 / (r2(j) * r2(j))
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    z = rng.standard_normal(n)
    return (n, x, y, z, np.zeros(n), 0.0), None


def bindings(n: int) -> dict:
    return {"n": n}
