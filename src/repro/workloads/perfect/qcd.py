"""QCD proxy: lattice gauge theory Monte Carlo.

Auto 1.1/0.5 → manual 2.0/1.81: the linear-congruential random number
generator forms a true dependence cycle through the accept/reject logic
("a random number generator produces a dependence cycle which serializes
half of the computation").  The feedback from the acceptance step back
into the seed keeps even loop distribution from splitting the cycle, so
only the independent measurement loop parallelizes — both versions stay
near serial, with the automatic Cedar attempt slower than serial.
"""

import numpy as np

NAME = "QCD"
ENTRY = "qcd"
DEFAULT_N = 4096
PAPER = {"fx80_auto": 1.1, "cedar_auto": 0.5,
         "fx80_manual": 2.0, "cedar_manual": 1.81}
TECHNIQUES = ("critical_sections", "array_privatization")

SOURCE = """
      subroutine qcd(n, m, seed, link, action, plaq)
      integer n, m, seed
      real link(n), action, plaq(n)
      real wph(1024)
      real r, trial, dact
      integer i, k
      do i = 1, n
         seed = mod(seed * 16807, 2147483647)
         r = seed * 4.6566e-10
         trial = link(i) + (r - 0.5) * 0.4
         dact = exp(trial * trial) - exp(link(i) * link(i))
         if (exp(-dact) .gt. r) then
            link(i) = trial
            seed = seed + i
         end if
      end do
      do i = 1, n
         do k = 1, m
            wph(k) = 0.01 * k * link(i)
         end do
         plaq(i) = 0.0
         do k = 1, m
            plaq(i) = plaq(i) + link(i) * cos(wph(k))
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    link = rng.standard_normal(n) * 0.1
    return (n, 6, 12345, link, 0.0, np.zeros(n)), None


def bindings(n: int) -> dict:
    return {"n": n, "m": 6, "seed": 12345}
