"""TRFD proxy: two-electron integral transformation.

Auto 2.2/0.8 → manual 16.0/43.2: the packed-triangle index ``k`` is a
**triangular generalized induction variable** (§4.1.4, "in the program
TRFD, we found generalized induction variables of the second type") —
``k = k + 1`` inside ``do i / do j = 1, i``.  Replacing it by its closed
form (and knowing it is strictly monotonic, so writes through it never
collide) parallelizes the transformation loops.
"""

import numpy as np

NAME = "TRFD"
ENTRY = "trfd"
DEFAULT_N = 128
PAPER = {"fx80_auto": 2.2, "cedar_auto": 0.8,
         "fx80_manual": 16.0, "cedar_manual": 43.2}
TECHNIQUES = ("generalized_induction", "interprocedural")

SOURCE = """
      subroutine xpair(k, xi, xj, s, xij)
      integer k
      real xi, xj, s, xij(*)
      k = k + 1
      xij(k) = xi * xj + s * 0.001
      end

      subroutine trfd(n, x, xij, v, xrsiq)
      integer n
      real x(n), xij(n * (n + 1) / 2), v(n), xrsiq(n * (n + 1) / 2)
      real s
      integer i, j, k, m
      k = 0
      do i = 1, n
         do j = 1, i
            s = 0.0
            do m = 1, n
               s = s + x(m) * v(m) * (0.1 * i + 0.2 * j)
            end do
            call xpair(k, x(i), x(j), s, xij)
         end do
      end do
      k = 0
      do i = 1, n
         do j = 1, i
            k = k + 1
            xrsiq(k) = xij(k) * 2.0 + v(i) * v(j)
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    x = rng.standard_normal(n)
    v = rng.standard_normal(n)
    tri = n * (n + 1) // 2
    return (n, x, np.zeros(tri), v, np.zeros(tri)), None


def bindings(n: int) -> dict:
    return {"n": n}
