"""MDG proxy: molecular dynamics of liquid water.

Auto 1.0/1.0 → manual 7.3/20.6: "in MDG, very little speedup is possible
without [the parallel reduction transformation]" — the pair-interaction
loop accumulates forces into array elements with multiple statements and
needs its distance workspace privatized.  This is also the Figure 7 loop
(privatized workspace vs globally expanded workspace).
"""

import numpy as np

NAME = "MDG"
ENTRY = "mdg"
DEFAULT_N = 256
PAPER = {"fx80_auto": 1.0, "cedar_auto": 1.0,
         "fx80_manual": 7.3, "cedar_manual": 20.6}
TECHNIQUES = ("array_privatization", "array_reductions",
              "multi_stmt_reductions", "critical_sections")

SOURCE = """
      subroutine mdg(n, x, f, epot)
      integer n
      real x(n), f(n), epot
      real dr(1024), r2(1024)
      integer i, j
      do i = 1, n
         do j = 1, n
            dr(j) = x(i) - x(j)
            r2(j) = dr(j) * dr(j) + 0.2
         end do
         do j = 1, n
            f(j) = f(j) + dr(j) / r2(j)
            f(j) = f(j) - dr(j) / (r2(j) * r2(j))
            epot = epot + 1.0 / r2(j)
            epot = epot - 0.5 / (r2(j) * r2(j) * r2(j))
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    x = rng.standard_normal(n)
    return (n, x, np.zeros(n), 0.0), None


def bindings(n: int) -> dict:
    return {"n": n}
