"""FLO52 proxy: transonic-flow multigrid smoother — the Figure 9 program.

The major routine is two outer loops, each a sequence of *small* inner
loops communicating through a work array, with loop-invariant scalar code
between the outer loops.  Without array privatization the outer loops
cannot run parallel (the work array carries false dependences), so the
automatic version parallelizes only the small inner loops (Figure 9
variant a).  Array privatization makes the outer loops SDOALLs (variant
b); fusing them — replicating the scalar code between — yields one big
parallel loop (variant c).
"""

import numpy as np

NAME = "FLO52"
ENTRY = "flo52"
DEFAULT_N = 256
PAPER = {"fx80_auto": 9.0, "cedar_auto": 5.5,
         "fx80_manual": 14.6, "cedar_manual": 15.3}
TECHNIQUES = ("array_privatization", "loop_fusion")

SOURCE = """
      subroutine flo52(n, m, nt, q, f, g)
      integer n, m, nt
      real q(n, m), f(n, m), g(n, m)
      real fw(1024)
      real scale
      integer t, i, j
      do t = 1, nt
         do j = 2, m - 1
            do i = 1, n
               fw(i) = q(i, j) * 0.5 + q(i, j - 1) * 0.25
     &                 + q(i, j + 1) * 0.25
            end do
            do i = 2, n - 1
               f(i, j) = fw(i + 1) - 2.0 * fw(i) + fw(i - 1)
            end do
         end do
         scale = 1.0 / (4.0 + 0.01 * t)
         do j = 2, m - 1
            do i = 2, n - 1
               g(i, j) = q(i, j) - scale * f(i, j)
            end do
         end do
      end do
      end
"""


def make_args(n: int, rng: np.random.Generator):
    q = rng.standard_normal((n, n))
    f = np.zeros((n, n))
    g = np.zeros((n, n))
    nt = 4
    return (n, n, nt, np.asfortranarray(q), np.asfortranarray(f),
            np.asfortranarray(g)), None


def bindings(n: int) -> dict:
    return {"n": n, "m": n, "nt": 4}
