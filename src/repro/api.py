"""Top-level convenience API.

These helpers tie the front end, restructurer, and unparsers together for
the common "parallelize this Fortran 77 text" use case.  Heavier workflows
(choosing machine models, running experiments) use the subpackages directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.unparse import unparse as _unparse_f77

if TYPE_CHECKING:  # pragma: no cover
    from repro.restructurer.options import RestructurerOptions
    from repro.restructurer.pipeline import RestructureReport


def parse_source(source: str) -> F.SourceFile:
    """Parse Fortran 77 source text into an AST."""
    return parse_program(source)


def unparse_f77(node: F.Node) -> str:
    """Render an AST back to fixed-form Fortran 77 text."""
    return _unparse_f77(node)


def unparse_cedar(node: F.Node) -> str:
    """Render an AST (possibly containing Cedar nodes) to Cedar Fortran."""
    from repro.cedar.unparse import unparse_cedar as _uc

    return _uc(node)


def restructure(sf: F.SourceFile, options: "RestructurerOptions | None" = None,
                trace: Any = None,
                ) -> tuple[F.SourceFile, "RestructureReport"]:
    """Run the Cedar restructurer on a parsed source file.

    Returns the transformed AST (containing Cedar Fortran nodes) and a
    report describing what each pass did.  ``trace`` may be any object
    with an ``emit(event)`` method (e.g. :class:`repro.trace.TraceRecorder`)
    to observe planner/pass decisions as they happen; the complete trace
    is also available afterwards on ``report.events``.
    """
    from repro.restructurer.pipeline import Restructurer

    return Restructurer(options, trace=trace).run(sf)


def restructure_source(source: str,
                       options: "RestructurerOptions | None" = None,
                       trace: Any = None,
                       ) -> tuple[str, Any]:
    """Parse, restructure, and unparse: fortran77 text → Cedar Fortran text."""
    sf = parse_source(source)
    cedar_ast, report = restructure(sf, options, trace=trace)
    return unparse_cedar(cedar_ast), report
