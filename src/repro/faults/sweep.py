"""The degradation oracle: sweep a fault matrix, assert graceful decay.

For every (workload × fault scenario) pair the oracle runs the full
stack — restructure, estimate under the injected :class:`FaultPlan`,
interpret — and asserts the contract of the chaos layer:

``monotone``
    a faulted machine is never *faster* than the healthy one;
``attributed``
    the cycle ledger still sums to the estimate exactly, with the
    degradation visible in the ``fault``/memory categories — injection
    degrades attribution, it never breaks the accounting identity;
``bounded``
    the slowdown stays under the plan's analytic
    :meth:`~repro.faults.plan.FaultPlan.degradation_bound` — degradation
    is graceful, not a cliff;
``numerics_identical``
    interpreting the restructured program is bit-identical run-to-run
    under fault configuration — faults live strictly in the timing
    layer, they cannot perturb a single computed value;
``recovery_ok``
    interpreting with only the *surviving* processor count still matches
    the sequential baseline within validation tolerances — the
    self-scheduled work redistributes, results stay correct;
``no_deadlock``
    every faulted estimate completes to a finite total (each run is
    additionally watchdogged — a hang becomes a harness fault, not a
    stuck sweep).

The result is a ``repro-faults/1`` JSON payload
(``schemas/faults.schema.json``; semantic checks in
``scripts/validate_experiment_json.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.engine import cached_restructure
from repro.errors import ReproError
from repro.execmodel.perf import PerfEstimator
from repro.faults.harness import FaultReport, run_isolated
from repro.faults.plan import FaultPlan, all_scenarios
from repro.machine.config import cedar_config1
from repro.validate.differential import compare_outputs, run_baseline
from repro.workloads import validation_cases

SCHEMA_TAG = "repro-faults/1"

#: workloads the oracle sweeps: loop-parallel linalg routines, Perfect
#: proxies with critical-section obstacles, and the synthetic ``cascade``
#: recurrence (the only case that restructures to DOACROSS, so the
#: lost-sync fault class is exercised end-to-end)
SWEEP_WORKLOADS = ("tridag", "cg", "sparse", "TRFD", "MDG", "cascade")
QUICK_WORKLOADS = ("tridag", "cg", "TRFD", "cascade")

#: estimator problem sizes (larger than the interpreter's VALIDATE_N so
#: parallel loops have many chunks to redistribute)
ESTIMATE_N = {"linalg": 64, "perfect": 24, "synthetic": 96}
ESTIMATE_N_QUICK = {"linalg": 32, "perfect": 16, "synthetic": 48}

#: worker counts a loop can actually run at (cluster/spread/cross
#: levels, clipped by trip counts) — the analytic bound must hold at
#: every one of them
_BOUND_WORKER_COUNTS = (1, 2, 3, 4, 8, 16, 32)

CHECKS = ("monotone", "attributed", "bounded", "numerics_identical",
          "recovery_ok", "no_deadlock")


@dataclass
class FaultRun:
    """Outcome of one workload × scenario oracle cell."""

    workload: str
    scenario: str
    healthy_cycles: float = 0.0
    faulted_cycles: float = 0.0
    fault_cycles: float = 0.0         # ledger "fault" category
    degradation: float = 1.0          # faulted / healthy
    bound: float = 1.0                # analytic ceiling on degradation
    injected_faults: int = 0
    sync_retries: int = 0
    survivors: int = 0                # surviving workers out of 8
    checks: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.checks.get(c, False) for c in CHECKS)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scenario": self.scenario,
            "healthy_cycles": self.healthy_cycles,
            "faulted_cycles": self.faulted_cycles,
            "fault_cycles": self.fault_cycles,
            "degradation": self.degradation,
            "bound": self.bound,
            "injected_faults": self.injected_faults,
            "sync_retries": self.sync_retries,
            "survivors": self.survivors,
            "checks": dict(self.checks),
            "ok": self.ok,
        }


class _WorkloadHarness:
    """Per-workload shared state: parsed+restructured once, baseline
    interpreted once, faulted estimates run per scenario."""

    def __init__(self, case, estimate_n: int, seed: int = 3):
        self.case = case
        self.seed = seed
        self.cfg = cedar_config1()
        # default-options restructure through the compilation cache (the
        # cedar program is read-only downstream — estimator + interpreter)
        self.cedar, _ = cached_restructure(case.source)
        registry = _bindings_registry(case)
        self.bindings = registry(estimate_n)
        self.healthy = self._estimate(None)
        self.baseline_out = run_baseline(case, seed)
        self._interp_cache: dict[int, dict] = {}

    def _estimate(self, plan: Optional[FaultPlan]):
        est = PerfEstimator(self.cedar, self.cfg, faults=plan)
        res = est.estimate(self.case.entry, self.bindings)
        return res, est.fault_injector

    def estimate(self, plan: FaultPlan):
        return self._estimate(plan if plan.active else None)

    def interpret(self, processors: int) -> dict:
        """Interpret the restructured program (cached per P)."""
        if processors not in self._interp_cache:
            from repro.execmodel.interp import Interpreter

            rng = np.random.default_rng(self.seed)
            args, _ = self.case.make_args(self.case.n, rng)
            interp = Interpreter(self.cedar, processors=processors)
            self._interp_cache[processors] = interp.call(
                self.case.entry, *args)
        return self._interp_cache[processors]

    def interpret_fresh(self, processors: int) -> dict:
        """Interpret again with a fresh interpreter (no cache)."""
        from repro.execmodel.interp import Interpreter

        rng = np.random.default_rng(self.seed)
        args, _ = self.case.make_args(self.case.n, rng)
        return Interpreter(self.cedar, processors=processors).call(
            self.case.entry, *args)


def _cascade_args(n, rng):
    arrs = [rng.standard_normal(n) for _ in range(8)]
    return (n, *arrs), None


def _synthetic_cases() -> dict:
    """Synthetic oracle-only cases (not part of the validation suite)."""
    from repro.workloads import ValidationCase
    from repro.workloads.synthetic import CASCADE

    return {
        "cascade": ValidationCase(
            name="cascade", suite="synthetic", source=CASCADE,
            entry="casc", make_args=_cascade_args, n=24),
    }


def _bindings_registry(case) -> Callable:
    if case.suite == "linalg":
        from repro.workloads import LINALG_ROUTINES

        return LINALG_ROUTINES[case.name].bindings
    if case.suite == "synthetic":
        return lambda n: {"n": n}
    from repro.workloads import PERFECT_PROGRAMS

    return PERFECT_PROGRAMS[case.name].bindings


def _outputs_identical(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    for k in a:
        xa, xb = np.asarray(a[k]), np.asarray(b[k])
        if xa.shape != xb.shape or not np.array_equal(xa, xb):
            return False
    return True


def run_cell(harness: _WorkloadHarness, plan: FaultPlan) -> FaultRun:
    """Run one oracle cell: estimate + interpret under one plan."""
    case = harness.case
    healthy_res, _ = harness.healthy
    run = FaultRun(workload=case.name, scenario=plan.name)
    run.healthy_cycles = healthy_res.total
    run.bound = max(plan.degradation_bound(p)
                    for p in _BOUND_WORKER_COUNTS)
    survivors = plan.survivors(8)
    run.survivors = len(survivors)

    res, injector = harness.estimate(plan)
    run.faulted_cycles = res.total
    run.fault_cycles = res.ledger.fault if res.ledger is not None else 0.0
    run.degradation = res.total / max(healthy_res.total, 1e-9)
    if injector is not None:
        run.injected_faults = injector.injected_faults
        run.sync_retries = injector.sync_retries

    # -- timing invariants --------------------------------------------------
    run.checks["no_deadlock"] = math.isfinite(res.total) and res.total > 0.0
    run.checks["monotone"] = (
        res.total >= healthy_res.total * (1.0 - 1e-9))
    ledger_ok = (res.ledger is not None
                 and abs(res.ledger.total() - res.cycles)
                 <= 1e-6 * max(res.cycles, 1.0))
    if not plan.active:
        # inactive plan: bit-identical cycles, zero fault attribution
        ledger_ok = (ledger_ok and res.total == healthy_res.total
                     and run.fault_cycles == 0.0)
    run.checks["attributed"] = ledger_ok
    run.checks["bounded"] = (
        res.total <= healthy_res.total * run.bound + 1.0)

    # -- functional invariants ----------------------------------------------
    # faults are timing-only: two runs under the fault configuration must
    # be *bit-identical* (nothing can leak from the plan into values)
    out_a = harness.interpret(8)
    out_b = harness.interpret_fresh(8)
    run.checks["numerics_identical"] = _outputs_identical(out_a, out_b)
    # recovery: with only the surviving CEs executing, results still
    # match the sequential baseline within validation tolerances
    out_surv = harness.interpret(max(len(survivors), 1))
    divergences = compare_outputs(
        harness.baseline_out, out_surv,
        permutation_ok=case.permutation_ok,
        processors=len(survivors), seed=harness.seed)
    run.checks["recovery_ok"] = not divergences
    return run


def _resolve_plans(quick: bool,
                   scenarios: Sequence[str] | None) -> dict[str, FaultPlan]:
    """The scenario matrix — shared by the driver and its workers so a
    forked worker reconstructs exactly the parent's plan objects."""
    if scenarios is not None:
        from repro.faults.plan import scenario as _scenario

        return {s: _scenario(s) for s in scenarios}
    return all_scenarios(quick=quick)


def run_sweep(workloads: Sequence[str] | None = None,
              scenarios: Sequence[str] | None = None, *,
              quick: bool = False,
              timeout: Optional[float] = None,
              journal=None,
              progress: Optional[Callable[[str], None]] = None,
              jobs: int = 1) -> dict:
    """Run the fault matrix; returns the ``repro-faults/1`` payload.

    Each cell runs crash-isolated under ``timeout``; a crashed or hung
    cell becomes a :class:`FaultReport` in the payload (and fails the
    sweep) instead of killing it.  ``journal`` is an optional
    :class:`repro.faults.harness.SweepJournal` for checkpoint/resume.

    ``jobs`` fans workloads out over worker processes (the harness — one
    restructure + healthy baseline per workload — is the natural unit of
    shared state).  Serial and parallel runs share one code path and one
    deterministic merge order, so payloads are byte-identical.
    """
    say = progress or (lambda msg: None)
    names = list(workloads if workloads is not None
                 else (QUICK_WORKLOADS if quick else SWEEP_WORKLOADS))
    plans = _resolve_plans(quick, scenarios)
    scenario_names = list(plans)

    cases = validation_cases()
    cases.update(_synthetic_cases())
    unknown = [n for n in names if n not in cases]
    if unknown:
        raise ReproError(f"unknown workload(s): {', '.join(unknown)}")

    from repro.engine.parallel import WorkerCrash, parallel_map
    from repro.faults.worker import run_fault_workload

    jobs_list = []
    for wname in names:
        done = [s for s in scenario_names
                if journal is not None and f"{wname}:{s}" in journal]
        jobs_list.append({
            "workload": wname, "quick": quick, "timeout": timeout,
            "scenario_override": (list(scenarios)
                                  if scenarios is not None else None),
            "skip": done,
        })

    runs: list[dict] = []
    faults: list[dict] = []
    from repro.obs.log import get_logger

    log = get_logger("faults.sweep")

    def merge(i: int, res) -> None:
        wname = jobs_list[i]["workload"]
        if isinstance(res, WorkerCrash):
            faults.append(res.to_fault_dict())
            say(f"[{wname}] FAULT (internal) {res.message}")
            log.warning("workload_crash", workload=wname,
                        message=res.message.splitlines()[0]
                        if res.message else "")
            return
        if res["baseline_fault"] is not None:
            fd = res["baseline_fault"]
            faults.append(fd)
            say(f"[{wname}] FAULT ({fd['kind']}) {fd['message']}")
            log.warning("baseline_fault", workload=wname,
                        kind=fd["kind"], message=fd["message"])
            return
        for cell in res["cells"]:
            key = f"{wname}:{cell['scenario']}"
            if cell.get("resumed"):
                runs.append(journal.payload(key))
                say(f"[{key}] resumed from journal")
                continue
            if cell["fault"] is not None:
                fd = cell["fault"]
                faults.append(fd)
                say(f"[{key}] FAULT ({fd['kind']}) {fd['message']}")
                continue
            rd = cell["run"]
            if journal is not None:
                journal.record(key, rd)
            runs.append(rd)
            status = "ok" if rd["ok"] else (
                "FAIL " + ",".join(c for c in CHECKS
                                   if not rd["checks"].get(c)))
            say(f"[{key}] x{rd['degradation']:.3f} "
                f"(bound x{rd['bound']:.2f}) {status}")
            log.info("cell_done", workload=wname,
                     scenario=cell["scenario"], ok=rd["ok"],
                     degradation=rd["degradation"])

    parallel_map(run_fault_workload, jobs_list, jobs,
                 labels=[f"{j['workload']} baseline" for j in jobs_list],
                 on_result=merge)

    expected = len(names) * len(plans)
    n_ok = sum(1 for r in runs if r["ok"])
    return {
        "schema": SCHEMA_TAG,
        "quick": quick,
        "machine": "cedar_config1",
        "workloads": names,
        "scenarios": {s: p.to_dict() for s, p in plans.items()},
        "runs": runs,
        "faults": faults,
        "summary": {
            "cells_expected": expected,
            "cells_run": len(runs),
            "ok": n_ok,
            "failed": len(runs) - n_ok,
            "harness_faults": len(faults),
            "checks_failed": {
                c: sum(1 for r in runs if not r["checks"].get(c, False))
                for c in CHECKS
            },
        },
    }
