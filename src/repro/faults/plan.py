"""Deterministic fault-injection plans (the chaos layer's spec).

A :class:`FaultPlan` is a frozen, pure-literal description of how the
simulated Cedar machine is degraded during one estimate: which CEs die
and when, per-CE and per-cluster clock slowdowns, memory-bank
degradation/outage, lost-synchronization retries, and a disabled
prefetch unit.  Each fault class maps onto a hardware behavior the paper
argues Cedar's self-scheduled microtasking tolerates:

=====================  ====================================================
fault class            Cedar feature it stresses
=====================  ====================================================
``dead_ces``           self-scheduling: surviving CEs drain the chunk queue
``ce_slowdown``        load imbalance across asymmetric processors
``cluster_slowdown``   a slow cluster under SDOALL/XDOALL spreading
``memory_degradation`` contended memory banks (latency inflation)
``bandwidth_factor``   global-network/GM saturation (Figure 8's ceiling)
``lost_sync_rate``     DOACROSS await/advance cascade re-signalling
``prefetch_disabled``  §2.2.3 prefetch unit taken offline
``helper_delay``       helper tasks (mtskstart) arriving late
=====================  ====================================================

Determinism: everything is derived from the plan's ``seed`` through
*stateless, index-keyed* draws (:meth:`FaultPlan.sync_lost`), so the same
plan produces the same degradation regardless of call order or process.
An inactive (default) plan is a guaranteed no-op: every injection site
short-circuits, keeping healthy results bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace

from repro.errors import FaultInjectionError


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic machine-degradation scenario."""

    name: str = "healthy"
    seed: int = 0

    # -- CE loss / asymmetry -------------------------------------------------
    #: worker tracks (self-scheduling slots) that retire; a dying CE
    #: finishes its in-flight chunk, then stops taking work
    dead_ces: tuple[int, ...] = ()
    #: cycle (relative to loop start) at which dead CEs stop; 0.0 means
    #: they never pick up work at all
    death_cycle: float = 0.0
    #: per-CE clock slowdown factors as (worker, factor >= 1) pairs
    ce_slowdown: tuple[tuple[int, float], ...] = ()
    #: whole-machine clock degradation (a slow cluster), factor >= 1
    cluster_slowdown: float = 1.0

    # -- memory system -------------------------------------------------------
    #: latency multiplier (>= 1) on cluster/global element access —
    #: contended or degraded memory banks
    memory_degradation: float = 1.0
    #: fraction (0 < f <= 1) of the global network/GM bandwidth left —
    #: a partial bank outage lowers the Figure 8 saturation ceiling
    bandwidth_factor: float = 1.0
    #: take the vector prefetch unit offline (global streams fall back
    #: to the un-prefetched pipelined path)
    prefetch_disabled: bool = False

    # -- synchronization / tasking -------------------------------------------
    #: probability (0..1) that one await/advance signal is lost and must
    #: be re-sent; drawn deterministically per signal index
    lost_sync_rate: float = 0.0
    #: extra cycles before a helper task (mtskstart) picks up a thread
    helper_delay: float = 0.0

    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        if self.cluster_slowdown < 1.0:
            raise FaultInjectionError(
                f"cluster_slowdown must be >= 1, got {self.cluster_slowdown}")
        if self.memory_degradation < 1.0:
            raise FaultInjectionError(
                f"memory_degradation must be >= 1, "
                f"got {self.memory_degradation}")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise FaultInjectionError(
                f"bandwidth_factor must be in (0, 1], "
                f"got {self.bandwidth_factor}")
        if not 0.0 <= self.lost_sync_rate <= 1.0:
            raise FaultInjectionError(
                f"lost_sync_rate must be in [0, 1], "
                f"got {self.lost_sync_rate}")
        if self.death_cycle < 0.0 or self.helper_delay < 0.0:
            raise FaultInjectionError("death_cycle and helper_delay "
                                      "must be >= 0")
        if any(w < 0 for w in self.dead_ces):
            raise FaultInjectionError("dead_ces must be worker indices >= 0")
        for w, f in self.ce_slowdown:
            if w < 0 or f < 1.0:
                raise FaultInjectionError(
                    f"ce_slowdown entries need worker >= 0 and "
                    f"factor >= 1, got ({w}, {f})")

    # -- activity ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether this plan degrades anything at all."""
        return (bool(self.dead_ces) or bool(self.ce_slowdown)
                or self.cluster_slowdown > 1.0
                or self.memory_degradation > 1.0
                or self.bandwidth_factor < 1.0
                or self.prefetch_disabled
                or self.lost_sync_rate > 0.0
                or self.helper_delay > 0.0)

    @property
    def degrades_workers(self) -> bool:
        """Whether worker tracks themselves die or slow down (the
        faults the self-scheduled chunk deal has to recover from)."""
        return (bool(self.dead_ces) or bool(self.ce_slowdown)
                or self.cluster_slowdown > 1.0)

    @property
    def degrades_scheduling(self) -> bool:
        """Whether the self-scheduling event simulation is affected."""
        return self.degrades_workers or self.lost_sync_rate > 0.0

    # -- deterministic per-site queries ---------------------------------------

    def survivors(self, p: int) -> list[int]:
        """Worker tracks still alive out of ``p``.

        CE 0's death is ignored when the plan would kill *every* worker:
        the cluster's master CE is restarted by the OS, so the chunk
        queue always drains — the model cannot deadlock by construction.
        """
        dead = {w for w in self.dead_ces if w < p}
        if len(dead) >= p:
            dead.discard(min(dead))
        return [w for w in range(p) if w not in dead]

    def speed_factor(self, worker: int) -> float:
        """Clock-slowdown multiplier (>= 1) for one worker track."""
        per_ce = dict(self.ce_slowdown).get(worker, 1.0)
        return self.cluster_slowdown * per_ce

    def max_speed_factor(self, p: int) -> float:
        return max((self.speed_factor(w) for w in self.survivors(p)),
                   default=self.cluster_slowdown)

    def sync_lost(self, index: int) -> bool:
        """Whether signal number ``index`` is lost (stateless draw).

        Keyed on ``(seed, index)`` through :class:`random.Random`'s
        string seeding (SHA-512 based, stable across processes), so the
        answer never depends on call order.
        """
        if self.lost_sync_rate <= 0.0:
            return False
        if self.lost_sync_rate >= 1.0:
            return True
        rng = random.Random(f"{self.seed}:sync:{index}")
        return rng.random() < self.lost_sync_rate

    # -- degradation bound ----------------------------------------------------

    def degradation_bound(self, p: int) -> float:
        """Conservative multiplier bounding the faulted completion time.

        A faulted loop on ``p`` workers may take at most
        ``bound * healthy_total`` cycles: work redistributes over the
        survivors (``p / len(survivors)``), every cycle may be stretched
        by the worst surviving clock factor and the memory degradation,
        saturation stalls inflate by ``1 / bandwidth_factor``, every
        lost signal is re-sent exactly once (factor ``1 + rate``), and a
        disabled prefetch unit inflates global streams by at most 3x
        (the pipelined-fallback vs prefetched cost ratio on both Cedar
        configurations).  A late helper task delays each spread/cross
        loop by ``helper_delay`` on top of its startup; since SDOALL/
        XDOALL startup is at least ~200 cycles on every configuration,
        that inflates an affected loop by at most ``helper_delay / 200``
        of its healthy time.  A 1.25 slack term absorbs scheduling-edge
        effects (partial tail chunks landing on a slow CE).
        """
        n_survive = max(len(self.survivors(p)), 1)
        bound = (p / n_survive) * self.max_speed_factor(p) \
            * self.memory_degradation / self.bandwidth_factor \
            * (1.0 + self.lost_sync_rate)
        if self.prefetch_disabled:
            bound *= 3.0
        if self.helper_delay > 0.0:
            bound *= 1.0 + self.helper_delay / 200.0
        return bound * 1.25 + 1e-9

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        d = asdict(self)
        d["dead_ces"] = list(self.dead_ces)
        d["ce_slowdown"] = [list(pair) for pair in self.ce_slowdown]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        kwargs = dict(d)
        unknown = set(kwargs) - set(cls.__dataclass_fields__)
        if unknown:
            raise FaultInjectionError(
                f"unknown FaultPlan field(s): {', '.join(sorted(unknown))}")
        if "dead_ces" in kwargs:
            kwargs["dead_ces"] = tuple(int(w) for w in kwargs["dead_ces"])
        if "ce_slowdown" in kwargs:
            kwargs["ce_slowdown"] = tuple(
                (int(w), float(f)) for w, f in kwargs["ce_slowdown"])
        return cls(**kwargs)

    def renamed(self, name: str) -> "FaultPlan":
        return replace(self, name=name)

    @classmethod
    def sample(cls, seed: int, max_dead: int = 3) -> "FaultPlan":
        """A randomized-but-deterministic chaos plan for property tests."""
        rng = random.Random(f"faultplan:{seed}")
        dead = tuple(sorted(rng.sample(range(8), rng.randint(0, max_dead))))
        slow = tuple((w, round(1.0 + rng.random() * 2.0, 3))
                     for w in rng.sample(range(8), rng.randint(0, 2)))
        return cls(
            name=f"sampled-{seed}", seed=seed,
            dead_ces=dead,
            death_cycle=round(rng.random() * 500.0, 1),
            ce_slowdown=slow,
            cluster_slowdown=round(1.0 + rng.random(), 3),
            memory_degradation=round(1.0 + rng.random() * 3.0, 3),
            bandwidth_factor=round(0.25 + rng.random() * 0.75, 3),
            prefetch_disabled=rng.random() < 0.5,
            lost_sync_rate=round(rng.random() * 0.5, 3),
            helper_delay=round(rng.random() * 1000.0, 1),
        )


#: the named fault matrix the degradation oracle sweeps — pure-literal
#: specs, one per fault class plus a combined chaos scenario.  Keyed by
#: scenario name; every entry is a kwargs dict for :class:`FaultPlan`.
SCENARIO_SPECS: dict[str, dict] = {
    "healthy": {},
    "dead-ce": {"dead_ces": (1,), "seed": 11},
    "dead-ce-late": {"dead_ces": (1, 3), "death_cycle": 400.0, "seed": 12},
    "slow-ce": {"ce_slowdown": ((2, 3.0),), "seed": 13},
    "slow-cluster": {"cluster_slowdown": 1.5, "seed": 14},
    "bank-degraded": {"memory_degradation": 2.0, "seed": 15},
    "bank-outage": {"memory_degradation": 4.0, "bandwidth_factor": 0.25,
                    "seed": 16},
    "lost-sync": {"lost_sync_rate": 0.25, "seed": 17},
    "no-prefetch": {"prefetch_disabled": True, "seed": 18},
    "late-helpers": {"helper_delay": 800.0, "seed": 19},
    "chaos": {"dead_ces": (1,), "ce_slowdown": ((2, 2.0),),
              "cluster_slowdown": 1.25, "memory_degradation": 1.5,
              "bandwidth_factor": 0.5, "lost_sync_rate": 0.1,
              "prefetch_disabled": True, "seed": 20},
}

#: the fast CI subset of the matrix (chaos-smoke job)
QUICK_SCENARIOS = ("healthy", "dead-ce", "slow-cluster", "bank-outage",
                   "lost-sync", "chaos")


def scenario(name: str) -> FaultPlan:
    """Build the named scenario from :data:`SCENARIO_SPECS`."""
    if name not in SCENARIO_SPECS:
        raise FaultInjectionError(
            f"unknown fault scenario {name!r} "
            f"(known: {', '.join(sorted(SCENARIO_SPECS))})")
    return FaultPlan(name=name, **SCENARIO_SPECS[name])


def all_scenarios(quick: bool = False) -> dict[str, FaultPlan]:
    names = QUICK_SCENARIOS if quick else tuple(SCENARIO_SPECS)
    return {n: scenario(n) for n in names}
