"""Hardened-harness toolkit: watchdogs, crash isolation, checkpoints.

Three small pieces the experiment/validation sweeps compose so that one
misbehaving workload — a crash, a livelock, a runaway estimate — degrades
a sweep instead of killing it:

- :func:`watchdog` — a wall-clock guard that turns a hang into a
  :class:`~repro.errors.BudgetExceededError`: SIGALRM on the POSIX main
  thread (interrupts even blocking C calls), a ``threading.Timer`` +
  async-exception fallback everywhere else (worker threads, platforms
  without SIGALRM), so timeouts fire in every calling context;
- :func:`run_isolated` — runs one workload, converting any exception or
  timeout into a structured :class:`FaultReport` so the sweep continues;
- :class:`SweepJournal` — an append-only JSONL checkpoint of completed
  work items, letting an interrupted sweep resume where it stopped.

Everything here is deliberately dependency-free (stdlib only).  The
timer fallback delivers its timeout between Python bytecodes, so it
cannot interrupt a single long-blocking C call the way SIGALRM can —
but a Python-level livelock (the failure mode sweeps actually hit) is
caught on every path.
"""

from __future__ import annotations

import json
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

from repro.errors import BudgetExceededError, ReproError
from repro.obs.log import get_logger

#: exception classes the harness never swallows — programming errors and
#: interpreter-session control flow must propagate
_NEVER_ISOLATE = (KeyboardInterrupt, SystemExit, MemoryError)

_LOG = get_logger("faults.harness")


@dataclass
class FaultReport:
    """Structured record of one isolated workload failure."""

    label: str                       # work-item name ("TRFD", "cg@config2")
    kind: str                        # "timeout" | "error" | "internal"
    error_type: str                  # exception class name
    message: str
    elapsed_s: float = 0.0
    traceback: str = ""              # trimmed traceback text
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed_s": self.elapsed_s,
            "traceback": self.traceback,
            "detail": self.detail,
        }

    @classmethod
    def from_exception(cls, label: str, exc: BaseException,
                       elapsed_s: float = 0.0) -> "FaultReport":
        if isinstance(exc, BudgetExceededError):
            kind = "timeout"
        elif isinstance(exc, ReproError):
            kind = "error"       # a modelled, expected failure mode
        else:
            kind = "internal"    # unexpected: a bug in the harness/models
        tb = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        # keep the tail — the raising frame — and bound the payload
        if len(tb) > 4000:
            tb = "...\n" + tb[-4000:]
        report = cls(label=label, kind=kind,
                     error_type=type(exc).__name__,
                     message=str(exc), elapsed_s=elapsed_s, traceback=tb)
        # when the flight recorder is on (logging enabled), the report
        # carries the last-N-events context of the dying process
        from repro.obs import flight

        events = flight.tail()
        if events:
            report.detail["flight_recorder"] = events
        return report


def _async_exc_supported() -> bool:
    """Whether the interpreter exposes ``PyThreadState_SetAsyncExc``."""
    try:
        import ctypes

        return hasattr(ctypes, "pythonapi") \
            and hasattr(ctypes.pythonapi, "PyThreadState_SetAsyncExc")
    except Exception:  # pragma: no cover - non-CPython
        return False


_HAS_ASYNC_EXC = _async_exc_supported()


@contextmanager
def _timer_watchdog(seconds: float, deadline_msg: str) -> Iterator[None]:
    """The ``threading.Timer`` fallback guard (any thread, any platform).

    A daemon timer delivers :class:`BudgetExceededError` into the
    *calling* thread via ``PyThreadState_SetAsyncExc``; the exception
    surfaces at the next bytecode boundary.  Disarming is race-free: the
    timer and the exit path share a lock, and a timeout that fires after
    the block already completed is cleared before it can leak into
    unrelated code.  Nested guards each own an independent timer, so an
    inner timeout leaves the outer one armed.
    """
    import ctypes

    tid = threading.get_ident()
    lock = threading.Lock()
    state = {"armed": True, "fired": False}
    # the C API raises a *class* (it instantiates with no args), so the
    # label/budget text rides in a per-guard subclass's __str__ — the
    # error is self-describing wherever it is caught
    exc_cls = type("WatchdogTimeout", (BudgetExceededError,), {
        "__str__": lambda self: (Exception.__str__(self) if self.args
                                 else deadline_msg)})

    def _fire() -> None:
        with lock:
            if not state["armed"]:
                return
            state["fired"] = True
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(tid), ctypes.py_object(exc_cls))

    timer = threading.Timer(seconds, _fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()
        with lock:
            state["armed"] = False
            if state["fired"]:
                # fired after the block finished but (possibly) before
                # delivery: clear the pending exception (None -> NULL)
                ctypes.pythonapi.PyThreadState_SetAsyncExc(
                    ctypes.c_ulong(tid), None)


@contextmanager
def watchdog(seconds: Optional[float],
             label: str = "work item") -> Iterator[None]:
    """Raise :class:`BudgetExceededError` if the block runs too long.

    Uses ``SIGALRM`` on the POSIX main thread (interrupts blocking C
    calls); everywhere else — worker threads, platforms without SIGALRM
    — a ``threading.Timer`` async-exception fallback fires at the next
    bytecode boundary, so the guard is armed in every calling context.
    ``seconds=None`` or ``<= 0`` disables the guard.  Nested watchdogs
    restore the outer alarm on exit.
    """
    if not seconds or seconds <= 0:
        yield
        return
    deadline = f"{label} exceeded its {seconds:g}s wall-clock budget"

    use_alarm = (hasattr(signal, "SIGALRM")
                 and threading.current_thread() is threading.main_thread())
    if not use_alarm:
        if _HAS_ASYNC_EXC:
            with _timer_watchdog(seconds, deadline):
                yield
        else:  # pragma: no cover - non-CPython without SIGALRM
            yield
        return

    def _fire(signum, frame):
        raise BudgetExceededError(deadline)

    try:
        prev_handler = signal.signal(signal.SIGALRM, _fire)
        prev_delay = signal.getitimer(signal.ITIMER_REAL)[0]
    except ValueError:          # raced a main-thread check: fall back
        if _HAS_ASYNC_EXC:
            with _timer_watchdog(seconds, deadline):
                yield
        else:  # pragma: no cover - non-CPython without SIGALRM
            yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev_handler)
        if prev_delay > 0.0:    # re-arm an enclosing watchdog
            signal.setitimer(signal.ITIMER_REAL, prev_delay)


def run_isolated(fn: Callable[[], Any], label: str,
                 timeout: Optional[float] = None,
                 ) -> tuple[Any, Optional[FaultReport]]:
    """Run ``fn`` under crash isolation and an optional watchdog.

    Returns ``(result, None)`` on success and ``(None, FaultReport)`` on
    any exception or timeout — the caller's sweep loop keeps going either
    way.  ``KeyboardInterrupt``/``SystemExit``/``MemoryError`` always
    propagate.
    """
    t0 = time.monotonic()
    try:
        with watchdog(timeout, label):
            return fn(), None
    except _NEVER_ISOLATE:
        raise
    except BaseException as exc:  # noqa: BLE001 — isolation is the point
        report = FaultReport.from_exception(
            label, exc, elapsed_s=time.monotonic() - t0)
        _LOG.warning("isolated_fault", label=label, kind=report.kind,
                     error_type=report.error_type,
                     message=report.message,
                     elapsed_s=report.elapsed_s)
        return None, report


class SweepJournal:
    """Append-only JSONL checkpoint of a sweep's completed work items.

    Each line is ``{"key": ..., "payload": ...}``; on resume, items whose
    key is already journaled are skipped and their payloads replayed.  A
    corrupt trailing line (killed mid-write) is ignored, so resume is
    always safe.  ``path=None`` disables journaling (every call is a
    cheap no-op and nothing touches the filesystem).
    """

    def __init__(self, path: str | Path | None):
        self.path = Path(path) if path else None
        self._done: dict[str, Any] = {}
        self._needs_newline = False
        if self.path is not None and self.path.exists():
            text = self.path.read_text()
            # a writer killed mid-line leaves no trailing newline; the
            # next record must start on a fresh line or it would be
            # glued onto (and lost with) the torn one
            self._needs_newline = bool(text) and not text.endswith("\n")
            for raw in text.splitlines():
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    entry = json.loads(raw)
                    self._done[entry["key"]] = entry.get("payload")
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue    # torn tail line from an interrupted run

    def __contains__(self, key: str) -> bool:
        return key in self._done

    def payload(self, key: str) -> Any:
        return self._done.get(key)

    @property
    def completed(self) -> list[str]:
        return list(self._done)

    def record(self, key: str, payload: Any = None) -> None:
        """Checkpoint one finished work item (flushed immediately)."""
        self._done[key] = payload
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            if self._needs_newline:     # seal a torn tail line first
                fh.write("\n")
                self._needs_newline = False
            fh.write(json.dumps({"key": key, "payload": payload}) + "\n")
            fh.flush()

    def clear(self) -> None:
        self._done.clear()
        if self.path is not None and self.path.exists():
            self.path.unlink()
