"""Picklable per-workload cell for the parallel fault-sweep driver.

One cell = one workload's full scenario row: the harness (restructure +
healthy estimate + sequential baseline) is built once, then every
non-journaled scenario runs crash-isolated against it.  Workers return
JSON-shaped records only — printing and journaling stay in the parent
so serial and parallel sweeps emit byte-identical payloads.
"""

from __future__ import annotations


def run_fault_workload(job: dict) -> dict:
    """Run one workload row of the fault matrix.

    ``job`` keys: workload, quick (bool), timeout, scenario_override
    (list of scenario names or None), skip (scenario names already in
    the parent's journal).  Returns::

        {"workload": str,
         "baseline_fault": fault-dict | None,
         "cells": [{"scenario": str, "resumed": True}
                   | {"scenario": str, "run": run-dict, "fault": None}
                   | {"scenario": str, "run": None, "fault": fault-dict},
                   ...]}

    Cells appear in scenario-matrix order; journaled scenarios become
    ``resumed`` placeholders the parent replaces from its journal.
    """
    from repro.faults.harness import run_isolated
    from repro.faults.sweep import (ESTIMATE_N, ESTIMATE_N_QUICK,
                                    _resolve_plans, _synthetic_cases,
                                    _WorkloadHarness, run_cell)
    from repro.workloads import validation_cases

    wname = job["workload"]
    quick = job["quick"]
    timeout = job["timeout"]
    skip = set(job["skip"])
    plans = _resolve_plans(quick, job["scenario_override"])
    sizes = ESTIMATE_N_QUICK if quick else ESTIMATE_N

    cases = validation_cases()
    cases.update(_synthetic_cases())
    case = cases[wname]

    harness, fr = run_isolated(
        lambda: _WorkloadHarness(case, estimate_n=sizes[case.suite]),
        label=f"{wname} baseline", timeout=timeout)
    if fr is not None:
        return {"workload": wname, "baseline_fault": fr.to_dict(),
                "cells": []}

    cells: list[dict] = []
    for sname, plan in plans.items():
        if sname in skip:
            cells.append({"scenario": sname, "resumed": True})
            continue
        cell, fr = run_isolated(
            lambda plan=plan: run_cell(harness, plan),
            label=f"{wname}:{sname}", timeout=timeout)
        if fr is not None:
            cells.append({"scenario": sname, "run": None,
                          "fault": fr.to_dict()})
        else:
            cells.append({"scenario": sname, "run": cell.to_dict(),
                          "fault": None})
    return {"workload": wname, "baseline_fault": None, "cells": cells}
