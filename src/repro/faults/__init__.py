"""repro.faults — deterministic fault injection & graceful degradation.

The chaos layer: seeded, reproducible machine-degradation plans
(:class:`FaultPlan`) injected into the machine models through one
:class:`FaultInjector` per estimate, a hardened-harness toolkit
(watchdogs, crash isolation, checkpoint journals — :mod:`.harness`), and
a degradation oracle (``python -m repro.faults sweep``) asserting that a
faulted machine *degrades* — slower, attributed, bounded — but never
*diverges*: numerics stay bit-identical to the healthy run.

Only the plan/injector layer is exported here; the harness and sweep are
imported by the CLIs on demand (they pull in the experiment stack).
"""

from repro.faults.inject import DEGRADED_PLACEMENTS, FaultInjector
from repro.faults.plan import (QUICK_SCENARIOS, SCENARIO_SPECS, FaultPlan,
                               all_scenarios, scenario)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "DEGRADED_PLACEMENTS",
    "SCENARIO_SPECS",
    "QUICK_SCENARIOS",
    "scenario",
    "all_scenarios",
]
