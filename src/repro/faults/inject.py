"""Mutable per-estimate fault-injection state shared by the machine models.

A :class:`FaultInjector` wraps one :class:`~repro.faults.plan.FaultPlan`
with the small amount of mutable bookkeeping the injection sites need: a
monotone signal index for the deterministic lost-sync draws and counters
of what was actually injected (for reports and assertions).  One injector
serves one estimate; the models it is handed to never mutate anything
else, so healthy-plan injectors are shared-safe no-ops.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan

#: latency tiers the memory-degradation fault applies to — private/cache
#: traffic stays clean (the fault models contended *banks*, not the CE's
#: own cache)
DEGRADED_PLACEMENTS = ("cluster", "global")


class FaultInjector:
    """Shared injection state for one estimate under one plan."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        #: next DOACROSS signal index (keys the stateless lost-sync draw)
        self.sync_index = 0
        #: what actually happened, for reports
        self.injected_faults = 0
        self.sync_retries = 0
        self.fault_cycles = 0.0

    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.plan.active

    @property
    def degrades_scheduling(self) -> bool:
        return self.plan.degrades_scheduling

    def note(self, cycles: float, events: int = 1) -> None:
        """Record that ``cycles`` of degradation were injected."""
        self.fault_cycles += cycles
        self.injected_faults += events

    # -- memory --------------------------------------------------------------

    def memory_extra(self, placement: str, healthy_cost: float) -> float:
        """Extra cycles a degraded bank adds on top of ``healthy_cost``."""
        if self.plan.memory_degradation <= 1.0 \
                or placement not in DEGRADED_PLACEMENTS:
            return 0.0
        extra = healthy_cost * (self.plan.memory_degradation - 1.0)
        if extra > 0.0:
            self.note(extra)
        return extra

    def bandwidth_capacity(self, capacity: float) -> float:
        """Sustainable global bandwidth left after a partial bank outage."""
        return capacity * self.plan.bandwidth_factor

    @property
    def prefetch_disabled(self) -> bool:
        return self.plan.prefetch_disabled

    # -- synchronization -----------------------------------------------------

    def sync_retry(self, resend_cost: float) -> float:
        """Cost of re-sending this signal if it was lost (0.0 otherwise).

        Consumes one signal index; each lost signal is re-sent exactly
        once (the retry itself is assumed reliable), so the penalty per
        cascade op is bounded by one extra ``resend_cost``.
        """
        i = self.sync_index
        self.sync_index += 1
        if not self.plan.sync_lost(i):
            return 0.0
        self.sync_retries += 1
        self.note(resend_cost)
        return resend_cost

    # -- tasking -------------------------------------------------------------

    def helper_delay(self) -> float:
        d = self.plan.helper_delay
        if d > 0.0:
            self.note(d)
        return d
