"""Chaos-layer CLI: ``python -m repro.faults``.

``python -m repro.faults sweep [--quick]``
    Run the degradation oracle over the fault matrix (workloads ×
    scenarios), asserting monotone / attributed / bounded degradation
    with bit-identical numerics.  ``--json`` (or ``-o FILE``) emits the
    ``repro-faults/1`` payload.

``python -m repro.faults list``
    Print the scenario matrix (name, fault classes, parameters).

Exit status (shared CLI convention):
    0  every oracle cell passed
    1  a degradation invariant was violated
    2  usage error (unknown scenario/workload/flag)
    3  internal fault: a cell crashed or exceeded its wall-clock budget
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.faults.plan import QUICK_SCENARIOS, SCENARIO_SPECS, scenario


def _cmd_list(ns: argparse.Namespace) -> int:
    from repro.faults.plan import FaultPlan

    width = max(len(n) for n in SCENARIO_SPECS)
    defaults = FaultPlan().to_dict()
    for name in SCENARIO_SPECS:
        plan = scenario(name)
        knobs = {k: v for k, v in plan.to_dict().items()
                 if k not in ("name", "seed") and v != defaults[k]}
        quick = "*" if name in QUICK_SCENARIOS else " "
        desc = ", ".join(f"{k}={v}" for k, v in knobs.items()) or "no-op"
        print(f"{quick} {name:<{width}}  {desc}")
    print("\n(* = in the --quick subset)")
    return 0


def _cmd_sweep(ns: argparse.Namespace) -> int:
    from repro.experiments.common import configure_engine
    from repro.faults.harness import SweepJournal
    from repro.faults.sweep import run_sweep

    jobs = configure_engine(ns)
    journal = SweepJournal(ns.journal) if ns.journal else None
    progress = (lambda msg: print(msg, file=sys.stderr)) \
        if not ns.as_json or ns.output else (lambda msg: None)
    try:
        payload = run_sweep(
            workloads=ns.workloads or None,
            scenarios=ns.scenarios or None,
            quick=ns.quick, timeout=ns.timeout,
            journal=journal, progress=progress, jobs=jobs)
    except ReproError as exc:
        print(f"repro.faults: {exc}", file=sys.stderr)
        return 2
    finally:
        from repro.experiments.common import finalize_telemetry

        finalize_telemetry("repro.faults sweep")

    if ns.output:
        with open(ns.output, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if ns.as_json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        s = payload["summary"]
        print(f"fault sweep: {s['cells_run']}/{s['cells_expected']} cells, "
              f"{s['ok']} ok, {s['failed']} failed, "
              f"{s['harness_faults']} harness fault(s)")
        for r in payload["runs"]:
            if not r["ok"]:
                bad = ", ".join(c for c, v in r["checks"].items() if not v)
                print(f"  FAIL {r['workload']}:{r['scenario']} "
                      f"x{r['degradation']:.3f} (bound x{r['bound']:.2f}) "
                      f"-- {bad}")

    if payload["faults"]:
        return 3
    return 0 if payload["summary"]["failed"] == 0 else 1


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="deterministic fault injection: scenario matrix and "
                    "the graceful-degradation oracle")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sweep", help="run the degradation oracle")
    p.add_argument("--quick", action="store_true",
                   help="CI subset: fewer workloads/scenarios, small sizes")
    p.add_argument("--workloads", nargs="+", metavar="W",
                   help="override the workload list")
    p.add_argument("--scenarios", nargs="+", metavar="S",
                   choices=sorted(SCENARIO_SPECS),
                   help="override the scenario list")
    p.add_argument("--timeout", type=float, default=120.0, metavar="SEC",
                   help="wall-clock budget per cell (default 120; "
                        "0 disables)")
    p.add_argument("--journal", metavar="FILE", default=None,
                   help="JSONL checkpoint; rerun with the same file to "
                        "resume an interrupted sweep")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the repro-faults/1 JSON payload on stdout")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the JSON payload to FILE")
    from repro.experiments.common import add_engine_args

    add_engine_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("list", help="print the fault-scenario matrix")
    p.set_defaults(func=_cmd_list)

    ns = ap.parse_args(argv)
    try:
        return ns.func(ns)
    except BrokenPipeError:
        sys.stderr.close()
        return 0
    except Exception as exc:  # noqa: BLE001 — CLI boundary
        print(f"repro.faults: internal fault: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    raise SystemExit(main())
