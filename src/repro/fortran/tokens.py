"""Token kinds and the Token record produced by the fixed-form lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENT = auto()       # identifiers and keywords (Fortran has no reserved words)
    INT = auto()         # integer literal
    REAL = auto()        # real literal (single precision)
    DOUBLE = auto()      # double-precision literal (d exponent)
    STRING = auto()      # character literal
    LOGICAL = auto()     # .true. / .false.
    OP = auto()          # operator, including dot-operators like .and.
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    COLON = auto()
    EQUALS = auto()
    NEWLINE = auto()     # end of a logical statement line
    LABEL = auto()       # numeric statement label (columns 1-5)
    RAW = auto()         # verbatim text (the body of a FORMAT statement)
    EOF = auto()


#: Dot-delimited operators, longest-match order.
DOT_OPERATORS = (
    ".neqv.", ".eqv.", ".and.", ".not.", ".or.",
    ".lt.", ".le.", ".eq.", ".ne.", ".gt.", ".ge.",
)

#: Dot-delimited logical constants.
DOT_CONSTANTS = (".true.", ".false.")

#: Multi-character symbolic operators, longest first.
SYMBOL_OPERATORS = ("**", "//", "+", "-", "*", "/")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the canonical text: identifiers and dot-operators are
    lower-cased; literals keep their spelling.
    """

    kind: TokenKind
    value: str
    line: int
    col: int

    def is_ident(self, *names: str) -> bool:
        """True if this token is an identifier equal to one of ``names``."""
        return self.kind is TokenKind.IDENT and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.col})"
