"""Diagnostics for the Fortran front end: records, codes, and the sink.

The linter-grade front end never loses an error's location and never
stops at the first problem.  Both properties are enforced here:

- :class:`Diagnostic` *requires* a 1-based line and column — constructing
  one without a real location raises, so a location-free diagnostic is a
  bug that cannot ship silently;
- :class:`DiagnosticSink` collects the full stream.  Without a sink the
  lexer/parser keep their historical fail-fast contract (raise
  :class:`~repro.errors.LexError` / :class:`~repro.errors.ParseError` on
  the first error); with one, errors are recorded and recovery continues
  at the next statement boundary, so one bad card no longer hides the
  rest of the file.

Every code is registered in :data:`CODES` with a short slug; ``F``-codes
are errors, ``W``-codes are warnings.  The numbering groups by origin:
``F0xx`` lexical, ``F1xx`` syntactic, ``F2xx`` semantic lint rules,
``W2xx`` fixed-form layout traps, ``W3xx`` style/portability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import LexError, ParseError

#: every diagnostic code the front end can emit, with a short slug.
#: F = error, W = warning.  The slug is stable and machine-matchable.
CODES: dict[str, str] = {
    # lexical (F0xx)
    "F001": "unexpected-character",
    "F002": "unterminated-literal",
    "F003": "malformed-label",
    "F004": "orphan-continuation",
    "F005": "bad-dot-sequence",
    # syntactic (F1xx)
    "F101": "syntax-error",
    "F102": "statement-outside-unit",
    "F103": "missing-end",
    "F104": "unbalanced-block",
    "F105": "invalid-statement",
    # semantic lint rules (F2xx)
    "F201": "undefined-label",
    "F202": "duplicate-label",
    # fixed-form layout traps (W2xx)
    "W201": "tab-in-label-field",
    "W202": "text-past-column-72",
    "W203": "unlabeled-format",
    # style / portability (W3xx)
    "W301": "do-ends-on-executable",
    "W302": "unreferenced-format",
}

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One front-end finding, always carrying a real source location."""

    code: str
    message: str
    line: int
    col: int
    severity: str = "error"
    #: the raw text of the offending source line, when available
    source_line: Optional[str] = None

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"bad severity {self.severity!r}")
        if not (isinstance(self.line, int) and self.line >= 1):
            raise ValueError(
                f"diagnostic {self.code} has no source line: {self.line!r}")
        if not (isinstance(self.col, int) and self.col >= 1):
            raise ValueError(
                f"diagnostic {self.code} has no source column: {self.col!r}")

    @property
    def slug(self) -> str:
        return CODES[self.code]

    def render(self, path: str = "<source>") -> str:
        """``path:line:col: severity: message [code]`` plus a caret excerpt."""
        head = (f"{path}:{self.line}:{self.col}: {self.severity}: "
                f"{self.message} [{self.code}]")
        if self.source_line is None:
            return head
        excerpt = self.source_line.rstrip("\n")
        caret = " " * (self.col - 1) + "^"
        return f"{head}\n  {excerpt}\n  {caret}"

    def to_dict(self) -> dict:
        d = {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity,
            "message": self.message,
            "line": self.line,
            "col": self.col,
        }
        if self.source_line is not None:
            d["excerpt"] = self.source_line.rstrip("\n")
        return d


class DiagnosticSink:
    """Collects the diagnostic stream of one front-end run.

    ``max_errors`` caps runaway cascades (a malformed file can derail
    recovery into reporting every remaining line); past the cap further
    *errors* are counted but not stored.  Warnings are never capped —
    they are cheap and bounded by the line count.
    """

    def __init__(self, source: str = "", max_errors: int = 100):
        self._source_lines = source.splitlines()
        self.max_errors = max_errors
        self.diagnostics: list[Diagnostic] = []
        self.suppressed_errors = 0

    # -- recording -----------------------------------------------------

    def _source_line(self, line: int) -> Optional[str]:
        if 1 <= line <= len(self._source_lines):
            return self._source_lines[line - 1]
        return None

    def emit(self, diag: Diagnostic) -> None:
        if diag.severity == "error" and self.error_count >= self.max_errors:
            self.suppressed_errors += 1
            return
        self.diagnostics.append(diag)

    def error(self, code: str, message: str, line: int, col: int) -> None:
        self.emit(Diagnostic(code=code, message=message, line=line, col=col,
                             severity="error",
                             source_line=self._source_line(line)))

    def warning(self, code: str, message: str, line: int, col: int) -> None:
        self.emit(Diagnostic(code=code, message=message, line=line, col=col,
                             severity="warning",
                             source_line=self._source_line(line)))

    # -- queries -------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def error_count(self) -> int:
        return len(self.errors)

    @property
    def ok(self) -> bool:
        return self.error_count == 0 and self.suppressed_errors == 0

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics in source order (line, then column)."""
        return sorted(self.diagnostics,
                      key=lambda d: (d.line, d.col, d.code))

    def render(self, path: str = "<source>") -> str:
        parts = [d.render(path) for d in self.sorted()]
        if self.suppressed_errors:
            parts.append(f"{path}: note: {self.suppressed_errors} further "
                         f"error(s) suppressed after the first "
                         f"{self.max_errors}")
        return "\n".join(parts)


class _RaisingSink(DiagnosticSink):
    """Fail-fast adapter: the historical no-sink contract.

    The lexer/parser report everything through a sink; when the caller
    did not supply one, this adapter turns the *first error* back into
    the matching exception (LexError for F0xx, ParseError otherwise)
    while silently dropping warnings — exactly the pre-linter behavior.
    """

    def __init__(self, source: str = ""):
        super().__init__(source)

    def emit(self, diag: Diagnostic) -> None:
        super().emit(diag)
        if diag.severity == "error":
            cls = LexError if diag.code.startswith("F0") else ParseError
            raise cls(diag.message, diag.line, diag.col)
