"""Fortran 77 front end: fixed-form lexer, parser, AST, symbol tables, unparser.

The front end accepts the Fortran 77 subset used by the paper's workloads,
extended with the Fortran 90 vector (array-section) operations that the Cedar
restructurer accepted on input (see paper §3.1).

Public entry points::

    from repro.fortran import parse_program, unparse
    unit_file = parse_program(source_text)
    text = unparse(unit_file)

Error handling comes in two flavors: the calls above fail fast on the
first error, while passing a :class:`DiagnosticSink` collects every
problem as a :class:`Diagnostic` (with source location and stable code)
and recovers at statement boundaries — the contract ``repro.lint``
builds on.
"""

from repro.fortran.diagnostics import CODES, Diagnostic, DiagnosticSink
from repro.fortran.ast_nodes import ast_diff, ast_equal
from repro.fortran.lexer import Lexer, lex_source, strip_format_spec
from repro.fortran.parser import Parser, parse_program
from repro.fortran.unparse import unparse
from repro.fortran.symtab import SymbolTable, build_symbol_table

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticSink",
    "Lexer",
    "Parser",
    "SymbolTable",
    "ast_diff",
    "ast_equal",
    "build_symbol_table",
    "lex_source",
    "parse_program",
    "strip_format_spec",
    "unparse",
]
