"""Fortran 77 front end: fixed-form lexer, parser, AST, symbol tables, unparser.

The front end accepts the Fortran 77 subset used by the paper's workloads,
extended with the Fortran 90 vector (array-section) operations that the Cedar
restructurer accepted on input (see paper §3.1).

Public entry points::

    from repro.fortran import parse_program, unparse
    unit_file = parse_program(source_text)
    text = unparse(unit_file)
"""

from repro.fortran.lexer import Lexer, lex_source
from repro.fortran.parser import Parser, parse_program
from repro.fortran.unparse import unparse
from repro.fortran.symtab import SymbolTable, build_symbol_table

__all__ = [
    "Lexer",
    "lex_source",
    "Parser",
    "parse_program",
    "unparse",
    "SymbolTable",
    "build_symbol_table",
]
