"""AST node definitions for the Fortran 77 front end.

Nodes are plain dataclasses.  Child traversal is generic: any field whose
value is a ``Node`` or a list of ``Node`` is a child.  Two traversal helpers
are provided: :class:`Visitor` (read-only, dispatches on class name) and
:class:`Transformer` (rebuilds, a method may return a replacement node, a
list of nodes for statement positions, or ``None`` to keep recursing).

Expression nodes produced by the *parser* use :class:`Apply` for any
``name(...)`` form; :func:`repro.fortran.symtab.build_symbol_table` resolves
these into :class:`ArrayRef` or :class:`FuncCall` once declarations are known.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


# ---------------------------------------------------------------------------
# base machinery
# ---------------------------------------------------------------------------

def _iter_nodes(value: Any) -> Iterator["Node"]:
    """Yield Nodes inside arbitrarily nested lists/tuples."""
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_nodes(item)


def _clone_value(value: Any) -> Any:
    """Deep-copy Nodes inside arbitrarily nested lists/tuples."""
    if isinstance(value, Node):
        return value.clone()
    if isinstance(value, list):
        return [_clone_value(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_clone_value(v) for v in value)
    return value


@dataclass
class Node:
    """Base class of all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (descending into nested lists/tuples,
        e.g. IfBlock's (condition, body) arms)."""
        for f in dataclasses.fields(self):
            yield from _iter_nodes(getattr(self, f.name))

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for c in self.children():
            yield from c.walk()

    def clone(self) -> "Node":
        """Deep copy of the subtree (including nested list/tuple fields)."""
        kwargs: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            kwargs[f.name] = _clone_value(getattr(self, f.name))
        return type(self)(**kwargs)


class Visitor:
    """Read-only traversal with per-class dispatch (``visit_<ClassName>``)."""

    def visit(self, node: Node) -> Any:
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Any:
        for c in node.children():
            self.visit(c)
        return None


class Transformer:
    """Rebuilding traversal.

    ``visit_<ClassName>`` may return:

    - a Node — replaces the original;
    - a list of Nodes — splices in statement-list positions;
    - ``None`` — keep the node and transform its children.
    """

    def visit(self, node: Node) -> Node | list[Node]:
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            result = method(node)
            if result is not None:
                return result
        return self.generic_transform(node)

    def generic_transform(self, node: Node) -> Node:
        for f in dataclasses.fields(node):
            setattr(node, f.name, self._transform_value(getattr(node, f.name),
                                                        f.name))
        return node

    def _transform_value(self, v: Any, field_name: str) -> Any:
        if isinstance(v, Node):
            new = self.visit(v)
            if isinstance(new, list):
                raise TypeError(
                    f"cannot splice a statement list into field {field_name!r}")
            return new
        if isinstance(v, list):
            out: list[Any] = []
            for item in v:
                if isinstance(item, Node):
                    new = self.visit(item)
                    if isinstance(new, list):
                        out.extend(new)
                    else:
                        out.append(new)
                elif isinstance(item, (list, tuple)):
                    out.append(self._transform_value(item, field_name))
                else:
                    out.append(item)
            return out
        if isinstance(v, tuple):
            return tuple(self._transform_value(item, field_name)
                         if isinstance(item, (Node, list, tuple)) else item
                         for item in v)
        return v


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    """Base class of expression nodes."""


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class RealLit(Expr):
    value: float
    double: bool = False

    def text(self) -> str:
        s = repr(self.value)
        if self.double:
            s = s.replace("e", "d")
            if "d" not in s:
                s += "d0"
        return s


@dataclass
class LogicalLit(Expr):
    value: bool


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class Var(Expr):
    """A scalar variable reference (or whole-array reference in calls)."""
    name: str


@dataclass
class Star(Expr):
    """The ``*`` placeholder in I/O control lists (list-directed format,
    default unit) — e.g. both stars of ``write(*, *)``."""


@dataclass
class RangeExpr(Expr):
    """An array-section subscript ``lo:hi[:stride]`` (Fortran 90 subset).

    ``lo``/``hi`` of ``None`` mean the array's declared bound.
    """
    lo: Optional[Expr]
    hi: Optional[Expr]
    stride: Optional[Expr] = None


@dataclass
class Apply(Expr):
    """Unresolved ``name(args)`` — array reference or function call."""
    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class ArrayRef(Expr):
    """A subscripted array reference; subscripts may be RangeExpr sections."""
    name: str
    subscripts: list[Expr] = field(default_factory=list)

    def is_section(self) -> bool:
        return any(isinstance(s, RangeExpr) for s in self.subscripts)


@dataclass
class FuncCall(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)
    intrinsic: bool = False


@dataclass
class BinOp(Expr):
    op: str  # '+', '-', '*', '/', '**', '//', '.and.', '.or.', relationals
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    op: str  # '-', '+', '.not.'
    operand: Expr


# ---------------------------------------------------------------------------
# type specifications
# ---------------------------------------------------------------------------

@dataclass
class TypeSpec(Node):
    """A Fortran type: integer, real, doubleprecision, logical, character."""
    base: str
    char_len: Optional[Expr] = None  # for character*N

    def __str__(self) -> str:
        if self.base == "character" and self.char_len is not None:
            return f"character*{unparse_len(self.char_len)}"
        return self.base


def unparse_len(e: Expr) -> str:
    if isinstance(e, IntLit):
        return str(e.value)
    return "(*)"


@dataclass
class DimSpec(Node):
    """One array dimension: ``lower:upper`` (lower defaults to 1).

    ``upper`` of ``None`` encodes an assumed-size ``*`` bound.
    """
    lower: Optional[Expr]
    upper: Optional[Expr]


@dataclass
class EntityDecl(Node):
    """One declared entity within a type/DIMENSION statement."""
    name: str
    dims: list[DimSpec] = field(default_factory=list)


# ---------------------------------------------------------------------------
# specification statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    """Base class of statements; ``label`` is the numeric statement label."""
    label: Optional[int] = field(default=None, kw_only=True)
    line: Optional[int] = field(default=None, kw_only=True)


@dataclass
class TypeDecl(Stmt):
    type: TypeSpec = None  # type: ignore[assignment]
    entities: list[EntityDecl] = field(default_factory=list)


@dataclass
class DimensionStmt(Stmt):
    entities: list[EntityDecl] = field(default_factory=list)


@dataclass
class CommonStmt(Stmt):
    """``COMMON /name/ a, b(10), ...`` — blank common has name ''. """
    block: str = ""
    entities: list[EntityDecl] = field(default_factory=list)


@dataclass
class ParameterStmt(Stmt):
    """``PARAMETER (name = const-expr, ...)``."""
    defs: list[tuple[str, Expr]] = field(default_factory=list)


@dataclass
class DataStmt(Stmt):
    """``DATA var-list / value-list /`` (flat subset)."""
    names: list[Expr] = field(default_factory=list)
    values: list[Expr] = field(default_factory=list)


@dataclass
class EquivalenceStmt(Stmt):
    groups: list[list[Expr]] = field(default_factory=list)


@dataclass
class ImplicitStmt(Stmt):
    """Only ``IMPLICIT NONE`` is modelled; default implicit rules otherwise."""
    none: bool = True


@dataclass
class ExternalStmt(Stmt):
    names: list[str] = field(default_factory=list)


@dataclass
class IntrinsicStmt(Stmt):
    names: list[str] = field(default_factory=list)


@dataclass
class SaveStmt(Stmt):
    """``SAVE [list]`` — entries may be names or ``/block/`` common names;
    an empty list is the bare ``SAVE`` (save everything)."""
    names: list[str] = field(default_factory=list)


@dataclass
class EntryStmt(Stmt):
    """``ENTRY name [(dummy-args)]`` — an alternate entry point.

    Parsed into a typed node that unparses faithfully; the restructurer
    treats units containing ENTRY as opaque (no entry-point splitting).
    """
    name: str = ""
    args: list[str] = field(default_factory=list)


@dataclass
class FormatStmt(Stmt):
    """``FORMAT (spec)`` — the spec is kept as raw text (including the
    outer parentheses) with whitespace outside quotes removed, because
    edit descriptors do not tokenize under expression rules."""
    spec: str = "()"


# ---------------------------------------------------------------------------
# executable statements
# ---------------------------------------------------------------------------

@dataclass
class Assign(Stmt):
    target: Expr = None  # type: ignore[assignment]  # Var | ArrayRef
    value: Expr = None  # type: ignore[assignment]


@dataclass
class DoLoop(Stmt):
    """A sequential DO loop (``do_label`` is the terminal label, if labeled)."""
    var: str = ""
    start: Expr = None  # type: ignore[assignment]
    end: Expr = None  # type: ignore[assignment]
    step: Optional[Expr] = None
    body: list[Stmt] = field(default_factory=list)
    do_label: Optional[int] = None


@dataclass
class IfBlock(Stmt):
    """Block IF: ``if (c) then ... [else if ...] [else ...] end if``.

    ``arms`` is a list of (condition, body); the final arm's condition is
    ``None`` for ELSE.
    """
    arms: list[tuple[Optional[Expr], list[Stmt]]] = field(default_factory=list)


@dataclass
class LogicalIf(Stmt):
    """One-statement logical IF: ``if (c) stmt``."""
    cond: Expr = None  # type: ignore[assignment]
    stmt: Stmt = None  # type: ignore[assignment]


@dataclass
class Goto(Stmt):
    target: int = 0


@dataclass
class ComputedGoto(Stmt):
    targets: list[int] = field(default_factory=list)
    index: Expr = None  # type: ignore[assignment]


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class CallStmt(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    pass


@dataclass
class StopStmt(Stmt):
    message: Optional[str] = None


@dataclass
class PrintStmt(Stmt):
    """``print *, items`` / ``write(*,*) items`` — modelled as list output."""
    items: list[Expr] = field(default_factory=list)


@dataclass
class ReadStmt(Stmt):
    """``read *, items`` — consumes from the interpreter's input queue."""
    items: list[Expr] = field(default_factory=list)


@dataclass
class IoControl(Node):
    """One entry of an I/O control list: ``keyword=value`` or positional.

    Label-valued controls (``ERR=``, ``END=``, ``FMT=100``) carry an
    :class:`IntLit`; ``*`` carries :class:`Star`.
    """
    keyword: Optional[str]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IoStmt(Stmt):
    """A general I/O statement, parsed faithfully but executed nowhere.

    ``kind`` is one of open/close/read/write/print/rewind/backspace/
    endfile/inquire.  The simple list-directed forms keep their legacy
    nodes (``read *,`` → :class:`ReadStmt`, ``print *,``/``write(*,*)``
    → :class:`PrintStmt`) so the interpreter's surface is unchanged;
    everything else — unit numbers, format labels, ERR=/END=/IOSTAT=
    branches — lands here as a typed node that unparses back exactly.
    """
    kind: str = "read"
    controls: list[IoControl] = field(default_factory=list)
    items: list[Expr] = field(default_factory=list)


@dataclass
class AssignLabelStmt(Stmt):
    """``ASSIGN label TO var`` (F77 assigned-GOTO machinery)."""
    target: int = 0
    var: str = ""


@dataclass
class AssignedGoto(Stmt):
    """``GOTO var [, (labels)]`` — jump through an ASSIGNed variable."""
    var: str = ""
    targets: list[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# program units
# ---------------------------------------------------------------------------

@dataclass
class ProgramUnit(Node):
    name: str = ""
    args: list[str] = field(default_factory=list)
    specs: list[Stmt] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass
class MainProgram(ProgramUnit):
    @property
    def kind(self) -> str:
        return "program"


@dataclass
class Subroutine(ProgramUnit):
    @property
    def kind(self) -> str:
        return "subroutine"


@dataclass
class Function(ProgramUnit):
    result_type: Optional[TypeSpec] = None

    @property
    def kind(self) -> str:
        return "function"


@dataclass
class SourceFile(Node):
    """A whole source file: one or more program units."""
    units: list[ProgramUnit] = field(default_factory=list)

    def unit(self, name: str) -> ProgramUnit:
        for u in self.units:
            if u.name == name:
                return u
        raise KeyError(name)


# ---------------------------------------------------------------------------
# small helpers used across the package
# ---------------------------------------------------------------------------

def intlit(v: int) -> IntLit:
    return IntLit(int(v))


def one() -> IntLit:
    return IntLit(1)


def var(name: str) -> Var:
    return Var(name)


def is_const_int(e: Expr, value: int | None = None) -> bool:
    """True if ``e`` is an integer literal (optionally equal to ``value``)."""
    if not isinstance(e, IntLit):
        return False
    return value is None or e.value == value


def stmts_walk(stmts: list[Stmt]) -> Iterator[Node]:
    """Walk every node under a statement list."""
    for s in stmts:
        yield from s.walk()


#: fields that are layout artifacts, not program structure
_EQUAL_IGNORED = frozenset({"line"})


def ast_equal(a: Any, b: Any) -> bool:
    """Structural equality of two ASTs, ignoring source-line stamps.

    Statement labels *are* compared (they are program structure: GOTO
    targets, FORMAT references); the ``line`` field is not, since
    unparsing renumbers every line.  This is the round-trip oracle's
    comparison: ``ast_equal(parse(src), parse(unparse(parse(src))))``.
    """
    if isinstance(a, Node) or isinstance(b, Node):
        if type(a) is not type(b):
            return False
        for f in dataclasses.fields(a):
            if f.name in _EQUAL_IGNORED:
                continue
            if not ast_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    if isinstance(a, (list, tuple)) or isinstance(b, (list, tuple)):
        if isinstance(a, (list, tuple)) != isinstance(b, (list, tuple)):
            return False
        if len(a) != len(b):
            return False
        return all(ast_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)  # NaN-tolerant
    return a == b


def ast_diff(a: Any, b: Any, path: str = "$") -> Optional[str]:
    """First structural difference between two ASTs, as a path string.

    Returns ``None`` when :func:`ast_equal` would return True; otherwise
    a human-readable pointer like ``$.units[0].body[2].value.op`` — the
    fuzzer's round-trip oracle reports this on failure.
    """
    if isinstance(a, Node) or isinstance(b, Node):
        if type(a) is not type(b):
            return (f"{path}: {type(a).__name__} != {type(b).__name__}")
        for f in dataclasses.fields(a):
            if f.name in _EQUAL_IGNORED:
                continue
            d = ast_diff(getattr(a, f.name), getattr(b, f.name),
                         f"{path}.{f.name}")
            if d is not None:
                return d
        return None
    if isinstance(a, (list, tuple)) or isinstance(b, (list, tuple)):
        if isinstance(a, (list, tuple)) != isinstance(b, (list, tuple)):
            return f"{path}: {type(a).__name__} != {type(b).__name__}"
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            d = ast_diff(x, y, f"{path}[{i}]")
            if d is not None:
                return d
        return None
    if isinstance(a, float) and isinstance(b, float):
        if a == b or (a != a and b != b):
            return None
        return f"{path}: {a!r} != {b!r}"
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None
