"""Symbol tables and Apply-resolution for parsed program units.

:func:`build_symbol_table` walks a program unit's specification statements,
records every declared entity (type, array bounds, COMMON membership,
PARAMETER constants), applies Fortran's implicit typing rules to the rest,
and rewrites every unresolved :class:`Apply` expression into either an
:class:`ArrayRef` (name declared as an array) or a :class:`FuncCall`
(intrinsic or external).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SemanticError
from repro.fortran import ast_nodes as F
from repro.fortran.intrinsics import is_intrinsic


@dataclass
class ArrayBounds:
    """Declared bounds of one array dimension (exprs; lower defaults 1)."""
    lower: F.Expr
    upper: Optional[F.Expr]  # None = assumed-size '*'


@dataclass
class Symbol:
    """One name in a program unit's scope."""

    name: str
    type: str = "real"               # integer|real|doubleprecision|logical|character
    dims: list[ArrayBounds] = field(default_factory=list)
    is_parameter: bool = False
    param_value: Optional[F.Expr] = None
    is_dummy: bool = False           # dummy argument of the unit
    common_block: Optional[str] = None
    is_external: bool = False
    is_function: bool = False
    char_len: Optional[F.Expr] = None
    saved: bool = False
    # Cedar placement annotation filled in by the globalization pass:
    placement: Optional[str] = None  # 'global' | 'cluster' | None (=default)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


def _implicit_type(name: str) -> str:
    return "integer" if name[0] in "ijklmn" else "real"


class SymbolTable:
    """Scope of one program unit."""

    def __init__(self, unit: F.ProgramUnit):
        self.unit = unit
        self.symbols: dict[str, Symbol] = {}
        self.implicit_none = False
        self.equivalences: list[list[F.Expr]] = []
        self.common_blocks: dict[str, list[str]] = {}

    # -- access ---------------------------------------------------------

    def lookup(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name)

    def get(self, name: str) -> Symbol:
        sym = self.symbols.get(name)
        if sym is None:
            if self.implicit_none:
                raise SemanticError(f"undeclared name {name!r} under IMPLICIT NONE")
            sym = Symbol(name=name, type=_implicit_type(name))
            self.symbols[name] = sym
        return sym

    def is_array(self, name: str) -> bool:
        sym = self.symbols.get(name)
        return sym is not None and sym.is_array

    def arrays(self) -> list[Symbol]:
        return [s for s in self.symbols.values() if s.is_array]

    def declare(self, name: str) -> Symbol:
        if name not in self.symbols:
            self.symbols[name] = Symbol(name=name, type=_implicit_type(name))
        return self.symbols[name]

    # -- construction -----------------------------------------------------

    def _record_entity(self, ent: F.EntityDecl, type_: str | None,
                       char_len: Optional[F.Expr] = None) -> None:
        sym = self.declare(ent.name)
        if type_ is not None:
            sym.type = type_
            sym.char_len = char_len
        if ent.dims:
            if sym.dims:
                raise SemanticError(f"array {ent.name!r} dimensioned twice")
            sym.dims = [
                ArrayBounds(d.lower if d.lower is not None else F.IntLit(1), d.upper)
                for d in ent.dims
            ]


def build_symbol_table(unit: F.ProgramUnit) -> SymbolTable:
    """Build the scope for ``unit`` and resolve its Apply nodes in place."""
    st = SymbolTable(unit)
    for a in unit.args:
        sym = st.declare(a)
        sym.is_dummy = True
    if isinstance(unit, F.Function):
        fsym = st.declare(unit.name)
        fsym.is_function = True
        if unit.result_type is not None:
            fsym.type = unit.result_type.base

    for spec in unit.specs:
        if isinstance(spec, F.ImplicitStmt):
            st.implicit_none = spec.none
        elif isinstance(spec, F.TypeDecl):
            for ent in spec.entities:
                st._record_entity(ent, spec.type.base, spec.type.char_len)
        elif isinstance(spec, F.DimensionStmt):
            for ent in spec.entities:
                st._record_entity(ent, None)
        elif isinstance(spec, F.CommonStmt):
            names = st.common_blocks.setdefault(spec.block, [])
            for ent in spec.entities:
                st._record_entity(ent, None)
                st.symbols[ent.name].common_block = spec.block
                names.append(ent.name)
        elif isinstance(spec, F.ParameterStmt):
            for name, value in spec.defs:
                sym = st.declare(name)
                sym.is_parameter = True
                sym.param_value = value
        elif isinstance(spec, F.ExternalStmt):
            for name in spec.names:
                sym = st.declare(name)
                sym.is_external = True
                sym.is_function = True
        elif isinstance(spec, F.SaveStmt):
            for name in spec.names:
                st.declare(name).saved = True
        elif isinstance(spec, F.EquivalenceStmt):
            st.equivalences.extend(spec.groups)

    _ApplyResolver(st).resolve_unit(unit)
    return st


class _ApplyResolver(F.Transformer):
    """Rewrites Apply nodes into ArrayRef or FuncCall using the scope."""

    def __init__(self, st: SymbolTable):
        self.st = st

    def resolve_unit(self, unit: F.ProgramUnit) -> None:
        for group in (unit.specs, unit.body):
            for i, stmt in enumerate(group):
                new = self.visit(stmt)
                if isinstance(new, list):
                    raise SemanticError("resolver cannot splice statements")
                group[i] = new

    def visit_Apply(self, node: F.Apply):
        args = []
        for a in node.args:
            new = self.visit(a)
            assert isinstance(new, F.Expr)
            args.append(new)
        sym = self.st.lookup(node.name)
        if sym is not None and sym.is_array:
            return F.ArrayRef(node.name, args)
        # statement functions are not modelled; anything non-array is a call
        if is_intrinsic(node.name) and not (sym is not None and sym.is_external):
            return F.FuncCall(node.name, args, intrinsic=True)
        fsym = self.st.declare(node.name)
        fsym.is_function = True
        return F.FuncCall(node.name, args, intrinsic=False)


def resolve_source_file(sf: F.SourceFile) -> dict[str, SymbolTable]:
    """Build and return symbol tables for every unit of a source file."""
    return {u.name: build_symbol_table(u) for u in sf.units}
