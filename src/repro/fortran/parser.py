"""Recursive-descent parser for the Fortran 77 subset.

Statements are parsed one logical line at a time; block structure (labeled
DO termination, DO/END DO, block IF) is reconstructed with an explicit frame
stack, which naturally supports several nested DO loops sharing one terminal
label (``do 100 i`` / ``do 100 j`` / ``100 continue``).

The parser produces :class:`repro.fortran.ast_nodes.SourceFile`; any
``name(...)`` form in an expression becomes the unresolved :class:`Apply`
node, later resolved against the symbol table.

Two error contracts coexist:

- **fail-fast** (the default, no sink): the first error raises
  :class:`~repro.errors.ParseError`, always carrying a source line and
  column — the historical contract every existing caller relies on;
- **panic-mode recovery** (a :class:`~repro.fortran.diagnostics.DiagnosticSink`
  supplied): every error is recorded as a :class:`Diagnostic` and parsing
  resumes at the next statement boundary, so one bad card no longer hides
  the rest of the file.  Malformed program units are repaired where
  possible (open blocks force-closed at END, a missing END closes the
  unit at EOF) so a partial AST is still produced.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.fortran import ast_nodes as F
from repro.fortran.diagnostics import DiagnosticSink, _RaisingSink
from repro.fortran.lexer import lex_source
from repro.fortran.tokens import Token, TokenKind

_TYPE_KEYWORDS = {"integer", "real", "logical", "character", "doubleprecision"}

_RELATIONAL = {".lt.", ".le.", ".eq.", ".ne.", ".gt.", ".ge."}

#: I/O statement keywords that take a parenthesized control list
_IO_CONTROL_KEYWORDS = {"open", "close", "inquire"}
#: file-positioning statements: control list or a bare unit expression
_IO_POSITION_KEYWORDS = {"rewind", "backspace", "endfile"}


def _fail(code: str, message: str, line: int | None,
          col: int | None) -> None:
    """Raise a :class:`ParseError` stamped with a diagnostic code."""
    exc = ParseError(message, line, col)
    exc.code = code
    raise exc


class _StmtTokens:
    """Cursor over the tokens of one logical statement."""

    def __init__(self, toks: list[Token]):
        self.toks = toks
        self.pos = 0

    # -- cursor primitives -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        i = self.pos + offset
        if i < len(self.toks):
            return self.toks[i]
        last = self.toks[-1] if self.toks else Token(TokenKind.NEWLINE, "", 1, 1)
        return Token(TokenKind.NEWLINE, "", last.line, last.col)

    def next(self) -> Token:
        t = self.peek()
        self.pos += 1
        return t

    def at_end(self) -> bool:
        return self.pos >= len(self.toks)

    def expect(self, kind: TokenKind, value: str | None = None) -> Token:
        t = self.peek()
        if t.kind is not kind or (value is not None and t.value != value):
            want = value or kind.name
            _fail("F101", f"expected {want}, found {t.value!r}",
                  t.line, t.col)
        return self.next()

    def expect_ident(self, *names: str) -> Token:
        t = self.peek()
        if t.kind is not TokenKind.IDENT or (names and t.value not in names):
            _fail("F101",
                  f"expected identifier {'/'.join(names) or ''}, "
                  f"found {t.value!r}", t.line, t.col)
        return self.next()

    def accept_ident(self, *names: str) -> Optional[Token]:
        t = self.peek()
        if t.kind is TokenKind.IDENT and t.value in names:
            return self.next()
        return None

    def accept(self, kind: TokenKind, value: str | None = None) -> Optional[Token]:
        t = self.peek()
        if t.kind is kind and (value is None or t.value == value):
            return self.next()
        return None

    def require_end(self) -> None:
        if not self.at_end():
            t = self.peek()
            _fail("F101", f"trailing tokens: {t.value!r}", t.line, t.col)

    # -- scanning helpers ---------------------------------------------------

    def contains_toplevel(self, kind: TokenKind, value: str | None = None,
                          start: int = 0) -> bool:
        """True if a token of ``kind`` occurs at paren depth 0 after start."""
        depth = 0
        for t in self.toks[self.pos + start:]:
            if t.kind is TokenKind.LPAREN:
                depth += 1
            elif t.kind is TokenKind.RPAREN:
                depth -= 1
            elif depth == 0 and t.kind is kind and (value is None or t.value == value):
                return True
        return False


# ---------------------------------------------------------------------------
# expression parsing (precedence climbing)
# ---------------------------------------------------------------------------

class ExprParser:
    """Parses Fortran expressions from a :class:`_StmtTokens` cursor."""

    def __init__(self, ts: _StmtTokens):
        self.ts = ts

    def parse(self) -> F.Expr:
        return self._equiv()

    def _equiv(self) -> F.Expr:
        e = self._disjunction()
        while True:
            t = self.ts.peek()
            if t.kind is TokenKind.OP and t.value in (".eqv.", ".neqv."):
                self.ts.next()
                e = F.BinOp(t.value, e, self._disjunction())
            else:
                return e

    def _disjunction(self) -> F.Expr:
        e = self._conjunction()
        while self.ts.accept(TokenKind.OP, ".or."):
            e = F.BinOp(".or.", e, self._conjunction())
        return e

    def _conjunction(self) -> F.Expr:
        e = self._negation()
        while self.ts.accept(TokenKind.OP, ".and."):
            e = F.BinOp(".and.", e, self._negation())
        return e

    def _negation(self) -> F.Expr:
        if self.ts.accept(TokenKind.OP, ".not."):
            return F.UnOp(".not.", self._negation())
        return self._relational()

    def _relational(self) -> F.Expr:
        e = self._concat()
        t = self.ts.peek()
        if t.kind is TokenKind.OP and t.value in _RELATIONAL:
            self.ts.next()
            return F.BinOp(t.value, e, self._concat())
        return e

    def _concat(self) -> F.Expr:
        e = self._additive()
        while self.ts.accept(TokenKind.OP, "//"):
            e = F.BinOp("//", e, self._additive())
        return e

    def _additive(self) -> F.Expr:
        t = self.ts.peek()
        if t.kind is TokenKind.OP and t.value in ("+", "-"):
            self.ts.next()
            e: F.Expr = F.UnOp(t.value, self._multiplicative())
        else:
            e = self._multiplicative()
        while True:
            t = self.ts.peek()
            if t.kind is TokenKind.OP and t.value in ("+", "-"):
                self.ts.next()
                e = F.BinOp(t.value, e, self._multiplicative())
            else:
                return e

    def _multiplicative(self) -> F.Expr:
        e = self._unary()
        while True:
            t = self.ts.peek()
            if t.kind is TokenKind.OP and t.value in ("*", "/"):
                self.ts.next()
                e = F.BinOp(t.value, e, self._unary())
            else:
                return e

    def _unary(self) -> F.Expr:
        t = self.ts.peek()
        if t.kind is TokenKind.OP and t.value in ("+", "-"):
            self.ts.next()
            return F.UnOp(t.value, self._unary())
        return self._power()

    def _power(self) -> F.Expr:
        base = self._primary()
        if self.ts.accept(TokenKind.OP, "**"):
            return F.BinOp("**", base, self._unary())  # right associative
        return base

    def _primary(self) -> F.Expr:
        t = self.ts.peek()
        if t.kind is TokenKind.INT:
            self.ts.next()
            return F.IntLit(int(t.value))
        if t.kind is TokenKind.REAL:
            self.ts.next()
            return F.RealLit(float(t.value))
        if t.kind is TokenKind.DOUBLE:
            self.ts.next()
            return F.RealLit(float(t.value.replace("d", "e")), double=True)
        if t.kind is TokenKind.LOGICAL:
            self.ts.next()
            return F.LogicalLit(t.value == ".true.")
        if t.kind is TokenKind.STRING:
            self.ts.next()
            return F.StrLit(t.value)
        if t.kind is TokenKind.LPAREN:
            self.ts.next()
            e = self.parse()
            self.ts.expect(TokenKind.RPAREN)
            return e
        if t.kind is TokenKind.IDENT:
            self.ts.next()
            if self.ts.peek().kind is TokenKind.LPAREN:
                self.ts.next()
                args = self._arg_list()
                self.ts.expect(TokenKind.RPAREN)
                return F.Apply(t.value, args)
            return F.Var(t.value)
        _fail("F101", f"unexpected token {t.value!r} in expression",
              t.line, t.col)

    def _arg_list(self) -> list[F.Expr]:
        """Comma-separated args; each may be an expr or a section lo:hi[:st]."""
        args: list[F.Expr] = []
        if self.ts.peek().kind is TokenKind.RPAREN:
            return args
        while True:
            args.append(self._arg())
            if not self.ts.accept(TokenKind.COMMA):
                return args

    def _arg(self) -> F.Expr:
        lo: Optional[F.Expr] = None
        if self.ts.peek().kind not in (TokenKind.COLON,):
            lo = self.parse()
        if self.ts.accept(TokenKind.COLON):
            hi: Optional[F.Expr] = None
            if self.ts.peek().kind not in (TokenKind.COLON, TokenKind.COMMA,
                                           TokenKind.RPAREN):
                hi = self.parse()
            stride: Optional[F.Expr] = None
            if self.ts.accept(TokenKind.COLON):
                stride = self.parse()
            return F.RangeExpr(lo, hi, stride)
        assert lo is not None
        return lo


# ---------------------------------------------------------------------------
# statement & unit parsing
# ---------------------------------------------------------------------------

class _Frame:
    """Open block during statement-stream reconstruction."""

    __slots__ = ("kind", "node", "body", "arms", "do_label")

    def __init__(self, kind: str, node=None):
        self.kind = kind          # 'unit' | 'do' | 'if'
        self.node = node
        self.body: list[F.Stmt] = []
        self.arms: list[tuple[Optional[F.Expr], list[F.Stmt]]] = []
        self.do_label: Optional[int] = None


class Parser:
    """Parses a whole source file into a :class:`SourceFile`.

    ``sink`` switches the error contract: ``None`` keeps the historical
    fail-fast behavior (first error raises), a caller-supplied
    :class:`DiagnosticSink` enables panic-mode recovery at statement
    boundaries with every error recorded as a :class:`Diagnostic`.
    """

    def __init__(self, source: str, sink: Optional[DiagnosticSink] = None):
        self._recover = sink is not None
        self._sink = sink if sink is not None else _RaisingSink(source)
        self._stmts = self._split_statements(
            lex_source(source, self._sink))

    @staticmethod
    def _split_statements(tokens: list[Token]) -> list[tuple[Optional[int], _StmtTokens]]:
        out: list[tuple[Optional[int], _StmtTokens]] = []
        cur: list[Token] = []
        label: Optional[int] = None
        for t in tokens:
            if t.kind is TokenKind.EOF:
                break
            if t.kind is TokenKind.LABEL:
                label = int(t.value)
                continue
            if t.kind is TokenKind.NEWLINE:
                if cur or label is not None:
                    out.append((label, _StmtTokens(cur)))
                cur = []
                label = None
                continue
            cur.append(t)
        if cur or label is not None:
            out.append((label, _StmtTokens(cur)))
        return out

    # -- error reporting ------------------------------------------------

    def _error(self, code: str, message: str, line: int | None,
               col: int | None) -> None:
        """Report a structure-level error and, in recovery mode, continue.

        Fail-fast mode raises; recovery mode records the diagnostic and
        returns so the caller can apply a local repair (force-close a
        block, skip a marker) instead of abandoning the statement.
        """
        if not self._recover:
            _fail(code, message, line, col)
        self._sink.error(code, message, max(line or 1, 1), max(col or 1, 1))

    # ------------------------------------------------------------------

    def parse(self) -> F.SourceFile:
        units: list[F.ProgramUnit] = []
        stack: list[_Frame] = []
        unit: Optional[F.ProgramUnit] = None
        in_specs = True
        last_line = 1

        def append(stmt: F.Stmt, label: Optional[int]) -> bool:
            nonlocal in_specs
            stmt.label = label
            if unit is None:
                self._error("F102", "statement outside any program unit",
                            stmt.line, 7)
                return False
            is_spec = isinstance(stmt, (
                F.TypeDecl, F.DimensionStmt, F.CommonStmt, F.ParameterStmt,
                F.DataStmt, F.EquivalenceStmt, F.ImplicitStmt, F.ExternalStmt,
                F.IntrinsicStmt, F.SaveStmt, F.FormatStmt))
            if in_specs and is_spec and len(stack) == 1:
                unit.specs.append(stmt)
                return True
            in_specs = False
            stack[-1].body.append(stmt)
            # close labeled DO loops terminated by this statement
            while (label is not None and stack and stack[-1].kind == "do"
                   and stack[-1].do_label == label):
                fr = stack.pop()
                loop: F.DoLoop = fr.node
                loop.body = fr.body
                stack[-1].body.append(loop)
            return True

        def force_close(line: int) -> None:
            """Repair an unclosed DO/IF stack down to the unit frame."""
            while len(stack) > 1:
                fr = stack.pop()
                if fr.kind == "do":
                    loop = fr.node
                    loop.body = fr.body
                    stack[-1].body.append(loop)
                else:  # 'if'
                    fr.arms.append((fr.node, fr.body))
                    stack[-1].body.append(F.IfBlock(arms=fr.arms, line=line))

        def close_unit() -> None:
            nonlocal unit
            unit.body = stack[0].body
            units.append(unit)
            unit = None

        for label, ts in self._stmts:
            first = ts.peek()
            if first.line:
                last_line = first.line
            try:
                if first.kind is TokenKind.NEWLINE and label is not None:
                    append(F.ContinueStmt(line=first.line), label)
                    continue
                if first.kind is not TokenKind.IDENT:
                    _fail("F105",
                          f"statement cannot start with {first.value!r}",
                          first.line, first.col)
                kw = first.value
                line = first.line

                # ---- unit boundaries ----
                if unit is None:
                    try:
                        unit = self._parse_unit_header(ts)
                    except ParseError:
                        if not self._recover:
                            raise
                        # Recovery: treat the file as an implicit main
                        # program so the remaining statements still parse
                        # (once, quietly — the header error is reported).
                        self._error(
                            "F102",
                            f"expected a program-unit header, found "
                            f"{first.value!r} — treating as an implicit "
                            f"PROGRAM", first.line, first.col)
                        unit = F.MainProgram(name="main")
                        stack = [_Frame("unit", unit)]
                        in_specs = True
                        ts.pos = 0
                    else:
                        stack = [_Frame("unit", unit)]
                        in_specs = True
                        continue

                if kw == "end" and len(ts.toks) == 1:
                    if len(stack) != 1:
                        self._error("F104",
                                    "END with unclosed DO or IF block",
                                    line, first.col)
                        force_close(line)
                    close_unit()
                    continue

                stmt_or_marker = self._parse_statement(ts, kw, line)
                if isinstance(stmt_or_marker, str):
                    marker = stmt_or_marker
                    if marker == "enddo":
                        if not stack or stack[-1].kind != "do":
                            self._error("F104", "END DO without matching DO",
                                        line, first.col)
                            continue
                        fr = stack.pop()
                        loop = fr.node
                        loop.body = fr.body
                        stack[-1].body.append(loop)
                    elif marker in ("else", "endif") or marker.startswith("elseif"):
                        if not stack or stack[-1].kind != "if":
                            self._error("F104",
                                        f"{marker} without matching IF",
                                        line, first.col)
                            continue
                        fr = stack[-1]
                        fr.arms.append((fr.node, fr.body))
                        if marker == "endif":
                            stack.pop()
                            ifblock = F.IfBlock(arms=fr.arms, line=line)
                            stack[-1].body.append(ifblock)
                        else:
                            fr.body = []
                            fr.node = self._pending_cond if marker != "else" else None
                    continue

                stmt = stmt_or_marker
                if isinstance(stmt, F.DoLoop):
                    if unit is None:
                        self._error("F102",
                                    "statement outside any program unit",
                                    line, 7)
                        continue
                    in_specs = False
                    stmt.label = label
                    fr = _Frame("do", stmt)
                    fr.do_label = stmt.do_label
                    stack.append(fr)
                    continue
                if isinstance(stmt, F.IfBlock) and not stmt.arms:
                    # opening "if (c) then": condition stashed on _pending_cond
                    if unit is None:
                        self._error("F102",
                                    "statement outside any program unit",
                                    line, 7)
                        continue
                    in_specs = False
                    fr = _Frame("if")
                    fr.node = self._pending_cond
                    stack.append(fr)
                    continue
                append(stmt, label)
            except ParseError as exc:
                if not self._recover:
                    raise
                self._sink.error(
                    getattr(exc, "code", None) or "F101",
                    getattr(exc, "raw_message", str(exc)),
                    exc.line if exc.line else (first.line or 1),
                    exc.col if exc.col else (first.col or 1))
                continue

        if unit is not None:
            self._error("F103", f"missing END for unit {unit.name!r}",
                        last_line, 7)
            force_close(last_line)
            close_unit()
        return F.SourceFile(units)

    # ------------------------------------------------------------------

    def _parse_unit_header(self, ts: _StmtTokens) -> F.ProgramUnit:
        t = ts.peek()
        kw = t.value
        if kw == "program":
            ts.next()
            name = ts.expect(TokenKind.IDENT).value
            ts.require_end()
            return F.MainProgram(name=name)
        if kw == "subroutine":
            ts.next()
            name = ts.expect(TokenKind.IDENT).value
            args = self._parse_dummy_args(ts)
            ts.require_end()
            return F.Subroutine(name=name, args=args)
        # [type] function name(args)
        rettype = None
        save = ts.pos
        if kw in _TYPE_KEYWORDS or kw == "double":
            rettype = self._parse_type_spec(ts)
            if ts.peek().is_ident("function"):
                kw = "function"
            else:
                ts.pos = save
                rettype = None
        if ts.peek().is_ident("function"):
            ts.next()
            name = ts.expect(TokenKind.IDENT).value
            args = self._parse_dummy_args(ts)
            ts.require_end()
            return F.Function(name=name, args=args, result_type=rettype)
        _fail("F101",
              f"expected a program-unit header, found {t.value!r}",
              t.line, t.col)

    @staticmethod
    def _parse_dummy_args(ts: _StmtTokens) -> list[str]:
        args: list[str] = []
        if ts.accept(TokenKind.LPAREN):
            if not ts.accept(TokenKind.RPAREN):
                while True:
                    args.append(ts.expect(TokenKind.IDENT).value)
                    if ts.accept(TokenKind.RPAREN):
                        break
                    ts.expect(TokenKind.COMMA)
        return args

    # ------------------------------------------------------------------

    def _parse_statement(self, ts: _StmtTokens, kw: str, line: int):
        """Parse one statement; returns a Stmt, or a control marker string."""
        # declarations
        if kw in _TYPE_KEYWORDS or (kw == "double" and ts.peek(1).is_ident("precision")):
            return self._parse_type_decl(ts, line)
        if kw == "dimension":
            ts.next()
            return F.DimensionStmt(entities=self._parse_entity_list(ts), line=line)
        if kw == "common":
            return self._parse_common(ts, line)
        if kw == "parameter" and ts.peek(1).kind is TokenKind.LPAREN:
            return self._parse_parameter(ts, line)
        if kw == "data" and ts.peek(1).kind is TokenKind.IDENT:
            return self._parse_data(ts, line)
        if kw == "equivalence" and ts.peek(1).kind is TokenKind.LPAREN:
            return self._parse_equivalence(ts, line)
        if kw == "implicit":
            ts.next()
            ts.expect_ident("none")
            ts.require_end()
            return F.ImplicitStmt(none=True, line=line)
        if kw == "save" and (
                ts.peek(1).kind in (TokenKind.NEWLINE, TokenKind.IDENT)
                or (ts.peek(1).kind is TokenKind.OP
                    and ts.peek(1).value == "/")):
            return self._parse_save(ts, line)
        if kw in ("external", "intrinsic") \
                and ts.peek(1).kind is TokenKind.IDENT:
            ts.next()
            names = [ts.expect(TokenKind.IDENT).value]
            while ts.accept(TokenKind.COMMA):
                names.append(ts.expect(TokenKind.IDENT).value)
            ts.require_end()
            cls = {"external": F.ExternalStmt,
                   "intrinsic": F.IntrinsicStmt}[kw]
            return cls(names=names, line=line)
        if kw == "entry" and ts.peek(1).kind is TokenKind.IDENT:
            ts.next()
            name = ts.expect(TokenKind.IDENT).value
            args = self._parse_dummy_args(ts)
            ts.require_end()
            return F.EntryStmt(name=name, args=args, line=line)
        if kw == "format" and ts.peek(1).kind is TokenKind.RAW:
            ts.next()
            spec = ts.next().value
            ts.require_end()
            return F.FormatStmt(spec=spec, line=line)

        # control / executable
        if kw == "do" and ts.peek(1).kind in (TokenKind.INT, TokenKind.IDENT):
            return self._parse_do(ts, line)
        if kw == "enddo" or (kw == "end" and ts.peek(1).is_ident("do")):
            return "enddo"
        if kw == "endif" or (kw == "end" and ts.peek(1).is_ident("if")):
            return "endif"
        if kw == "elseif" or (kw == "else" and ts.peek(1).is_ident("if")):
            ts.next()
            if ts.peek().is_ident("if"):
                ts.next()
            ts.expect(TokenKind.LPAREN)
            cond = ExprParser(ts).parse()
            ts.expect(TokenKind.RPAREN)
            ts.expect_ident("then")
            ts.require_end()
            self._pending_cond = cond
            return "elseif"
        if kw == "else":
            ts.next()
            ts.require_end()
            return "else"
        if kw == "if" and ts.peek(1).kind is TokenKind.LPAREN:
            return self._parse_if(ts, line)
        if kw == "goto" or (kw == "go" and ts.peek(1).is_ident("to")):
            return self._parse_goto(ts, line)
        if kw == "assign" and ts.peek(1).kind is TokenKind.INT:
            ts.next()
            target = int(ts.expect(TokenKind.INT).value)
            ts.expect_ident("to")
            var = ts.expect(TokenKind.IDENT).value
            ts.require_end()
            return F.AssignLabelStmt(target=target, var=var, line=line)
        if kw == "continue":
            ts.next()
            ts.require_end()
            return F.ContinueStmt(line=line)
        if kw == "call":
            ts.next()
            name = ts.expect(TokenKind.IDENT).value
            args: list[F.Expr] = []
            if ts.accept(TokenKind.LPAREN):
                if not ts.accept(TokenKind.RPAREN):
                    args = ExprParser(ts)._arg_list()
                    ts.expect(TokenKind.RPAREN)
            ts.require_end()
            return F.CallStmt(name=name, args=args, line=line)
        if kw == "return" and ts.peek(1).kind is TokenKind.NEWLINE:
            ts.next()
            return F.ReturnStmt(line=line)
        if kw == "stop" and ts.peek(1).kind in (TokenKind.STRING,
                                                TokenKind.INT,
                                                TokenKind.NEWLINE):
            ts.next()
            msg = None
            t = ts.peek()
            if t.kind is TokenKind.STRING:
                ts.next()
                msg = t.value
            elif t.kind is TokenKind.INT:
                ts.next()
                msg = t.value
            ts.require_end()
            return F.StopStmt(message=msg, line=line)
        if kw == "print" and ts.peek(1).kind is not TokenKind.EQUALS:
            return self._parse_print(ts, line)
        if kw == "write" and ts.peek(1).kind is TokenKind.LPAREN \
                and not self._looks_like_assignment(ts):
            return self._parse_read_write(ts, "write", line)
        if kw == "read" and ts.peek(1).kind is not TokenKind.EQUALS \
                and not self._looks_like_assignment(ts):
            return self._parse_read_write(ts, "read", line)
        if kw in _IO_CONTROL_KEYWORDS \
                and ts.peek(1).kind is TokenKind.LPAREN \
                and not self._looks_like_assignment(ts):
            ts.next()
            controls = self._parse_io_controls(ts)
            ts.require_end()
            return F.IoStmt(kind=kw, controls=controls, line=line)
        if kw in _IO_POSITION_KEYWORDS \
                and ts.peek(1).kind is not TokenKind.EQUALS \
                and not self._looks_like_assignment(ts):
            ts.next()
            if ts.peek().kind is TokenKind.LPAREN:
                controls = self._parse_io_controls(ts)
            else:
                controls = [F.IoControl(None, ExprParser(ts).parse())]
            ts.require_end()
            return F.IoStmt(kind=kw, controls=controls, line=line)

        # otherwise: assignment
        return self._parse_assignment(ts, line)

    @staticmethod
    def _looks_like_assignment(ts: _StmtTokens) -> bool:
        """True for ``name(...) = expr`` — an array-element assignment to
        a variable that happens to share an I/O keyword's name."""
        if ts.peek(1).kind is not TokenKind.LPAREN:
            return ts.peek(1).kind is TokenKind.EQUALS
        depth = 0
        for i in range(1, len(ts.toks) - ts.pos):
            t = ts.peek(i)
            if t.kind is TokenKind.LPAREN:
                depth += 1
            elif t.kind is TokenKind.RPAREN:
                depth -= 1
                if depth == 0:
                    return ts.peek(i + 1).kind is TokenKind.EQUALS
        return False

    # -- declarations --------------------------------------------------

    def _parse_type_spec(self, ts: _StmtTokens) -> F.TypeSpec:
        t = ts.next()
        base = t.value
        if base == "double":
            ts.expect_ident("precision")
            base = "doubleprecision"
        char_len: Optional[F.Expr] = None
        if base == "character" and ts.accept(TokenKind.OP, "*"):
            if ts.accept(TokenKind.LPAREN):
                if ts.accept(TokenKind.OP, "*"):
                    char_len = None
                else:
                    char_len = ExprParser(ts).parse()
                ts.expect(TokenKind.RPAREN)
            else:
                char_len = F.IntLit(int(ts.expect(TokenKind.INT).value))
        return F.TypeSpec(base, char_len)

    def _parse_type_decl(self, ts: _StmtTokens, line: int) -> F.TypeDecl:
        spec = self._parse_type_spec(ts)
        entities = self._parse_entity_list(ts)
        return F.TypeDecl(type=spec, entities=entities, line=line)

    def _parse_entity_list(self, ts: _StmtTokens) -> list[F.EntityDecl]:
        entities = [self._parse_entity(ts)]
        while ts.accept(TokenKind.COMMA):
            entities.append(self._parse_entity(ts))
        ts.require_end()
        return entities

    def _parse_entity(self, ts: _StmtTokens) -> F.EntityDecl:
        name = ts.expect(TokenKind.IDENT).value
        dims: list[F.DimSpec] = []
        if ts.accept(TokenKind.LPAREN):
            while True:
                dims.append(self._parse_dim(ts))
                if ts.accept(TokenKind.RPAREN):
                    break
                ts.expect(TokenKind.COMMA)
        return F.EntityDecl(name=name, dims=dims)

    def _parse_dim(self, ts: _StmtTokens) -> F.DimSpec:
        if ts.accept(TokenKind.OP, "*"):
            return F.DimSpec(None, None)
        first = ExprParser(ts).parse()
        if ts.accept(TokenKind.COLON):
            if ts.accept(TokenKind.OP, "*"):
                return F.DimSpec(first, None)
            return F.DimSpec(first, ExprParser(ts).parse())
        return F.DimSpec(None, first)

    def _parse_common(self, ts: _StmtTokens, line: int) -> F.CommonStmt:
        ts.next()
        block = ""
        if ts.accept(TokenKind.OP, "/"):
            block = ts.expect(TokenKind.IDENT).value
            ts.expect(TokenKind.OP, "/")
        entities = [self._parse_entity(ts)]
        while ts.accept(TokenKind.COMMA):
            entities.append(self._parse_entity(ts))
        ts.require_end()
        return F.CommonStmt(block=block, entities=entities, line=line)

    def _parse_parameter(self, ts: _StmtTokens, line: int) -> F.ParameterStmt:
        ts.next()
        ts.expect(TokenKind.LPAREN)
        defs: list[tuple[str, F.Expr]] = []
        while True:
            name = ts.expect(TokenKind.IDENT).value
            ts.expect(TokenKind.EQUALS)
            defs.append((name, ExprParser(ts).parse()))
            if ts.accept(TokenKind.RPAREN):
                break
            ts.expect(TokenKind.COMMA)
        ts.require_end()
        return F.ParameterStmt(defs=defs, line=line)

    def _parse_save(self, ts: _StmtTokens, line: int) -> F.SaveStmt:
        """``SAVE``, ``SAVE a, b``, ``SAVE /block/, c``."""
        ts.next()
        names: list[str] = []
        if not ts.at_end():
            while True:
                if ts.accept(TokenKind.OP, "/"):
                    nm = ts.expect(TokenKind.IDENT).value
                    ts.expect(TokenKind.OP, "/")
                    names.append(f"/{nm}/")
                else:
                    names.append(ts.expect(TokenKind.IDENT).value)
                if not ts.accept(TokenKind.COMMA):
                    break
        ts.require_end()
        return F.SaveStmt(names=names, line=line)

    def _parse_data(self, ts: _StmtTokens, line: int) -> F.DataStmt:
        # Names are variables/array elements (primaries); values are signed
        # constants with optional repeat counts (``3*0.0``).  Full
        # expression parsing would eat the '/' delimiters as division.
        # Several groups (``data a /1/, b /2/``) merge into one flat
        # name/value pair — semantically identical in F77.
        ts.next()
        names: list[F.Expr] = []
        values: list[F.Expr] = []

        def signed_constant() -> F.Expr:
            t = ts.peek()
            if t.kind is TokenKind.OP and t.value in ("+", "-"):
                ts.next()
                return F.UnOp(t.value, ExprParser(ts)._primary())
            return ExprParser(ts)._primary()

        def value_item() -> F.Expr:
            v = signed_constant()
            if isinstance(v, F.IntLit) and ts.accept(TokenKind.OP, "*"):
                # repeat count: 3*0.0 — kept as a BinOp, unparses as 3 * 0.0
                return F.BinOp("*", v, signed_constant())
            return v

        while True:
            names.append(ExprParser(ts)._primary())
            while ts.accept(TokenKind.COMMA):
                names.append(ExprParser(ts)._primary())
            ts.expect(TokenKind.OP, "/")
            values.append(value_item())
            while ts.accept(TokenKind.COMMA):
                values.append(value_item())
            ts.expect(TokenKind.OP, "/")
            if ts.at_end():
                break
            ts.accept(TokenKind.COMMA)  # optional separator between groups
        ts.require_end()
        return F.DataStmt(names=names, values=values, line=line)

    def _parse_equivalence(self, ts: _StmtTokens, line: int) -> F.EquivalenceStmt:
        ts.next()
        groups: list[list[F.Expr]] = []
        while True:
            ts.expect(TokenKind.LPAREN)
            group = [ExprParser(ts).parse()]
            while ts.accept(TokenKind.COMMA):
                group.append(ExprParser(ts).parse())
            ts.expect(TokenKind.RPAREN)
            groups.append(group)
            if not ts.accept(TokenKind.COMMA):
                break
        ts.require_end()
        return F.EquivalenceStmt(groups=groups, line=line)

    # -- control -------------------------------------------------------

    def _parse_do(self, ts: _StmtTokens, line: int) -> F.DoLoop:
        ts.next()
        do_label: Optional[int] = None
        t = ts.peek()
        if t.kind is TokenKind.INT:
            ts.next()
            do_label = int(t.value)
        var = ts.expect(TokenKind.IDENT).value
        ts.expect(TokenKind.EQUALS)
        start = ExprParser(ts).parse()
        ts.expect(TokenKind.COMMA)
        end = ExprParser(ts).parse()
        step: Optional[F.Expr] = None
        if ts.accept(TokenKind.COMMA):
            step = ExprParser(ts).parse()
        ts.require_end()
        return F.DoLoop(var=var, start=start, end=end, step=step,
                        do_label=do_label, line=line)

    def _parse_goto(self, ts: _StmtTokens, line: int):
        """Plain, computed, and assigned GOTO."""
        ts.next()
        if ts.peek().is_ident("to"):
            ts.next()
        t = ts.peek()
        if t.kind is TokenKind.LPAREN:
            ts.next()
            targets = [int(ts.expect(TokenKind.INT).value)]
            while ts.accept(TokenKind.COMMA):
                targets.append(int(ts.expect(TokenKind.INT).value))
            ts.expect(TokenKind.RPAREN)
            ts.accept(TokenKind.COMMA)
            idx = ExprParser(ts).parse()
            ts.require_end()
            return F.ComputedGoto(targets=targets, index=idx, line=line)
        if t.kind is TokenKind.IDENT:
            # assigned GOTO: goto var [, (labels)]
            ts.next()
            targets: list[int] = []
            ts.accept(TokenKind.COMMA)
            if ts.accept(TokenKind.LPAREN):
                targets.append(int(ts.expect(TokenKind.INT).value))
                while ts.accept(TokenKind.COMMA):
                    targets.append(int(ts.expect(TokenKind.INT).value))
                ts.expect(TokenKind.RPAREN)
            ts.require_end()
            return F.AssignedGoto(var=t.value, targets=targets, line=line)
        target = int(ts.expect(TokenKind.INT).value)
        ts.require_end()
        return F.Goto(target=target, line=line)

    _pending_cond: Optional[F.Expr] = None

    def _parse_if(self, ts: _StmtTokens, line: int):
        ts.next()
        ts.expect(TokenKind.LPAREN)
        cond = ExprParser(ts).parse()
        ts.expect(TokenKind.RPAREN)
        if ts.peek().is_ident("then") and ts.pos == len(ts.toks) - 1:
            ts.next()
            self._pending_cond = cond
            return F.IfBlock(arms=[], line=line)  # marker: opening of block IF
        # logical IF: one trailing statement
        inner_tok = ts.peek()
        inner_kw = inner_tok.value
        inner = self._parse_statement(ts, inner_kw, line)
        if isinstance(inner, str) or isinstance(inner, (F.DoLoop, F.IfBlock)):
            _fail("F105", "invalid statement in logical IF",
                  line, inner_tok.col)
        return F.LogicalIf(cond=cond, stmt=inner, line=line)

    # -- I/O -----------------------------------------------------------

    def _parse_io_controls(self, ts: _StmtTokens) -> list[F.IoControl]:
        """A parenthesized I/O control list: positional or KEYWORD=value
        entries; ``*`` becomes :class:`Star`."""
        ts.expect(TokenKind.LPAREN)
        controls: list[F.IoControl] = []
        if ts.accept(TokenKind.RPAREN):
            return controls
        while True:
            keyword: Optional[str] = None
            if ts.peek().kind is TokenKind.IDENT \
                    and ts.peek(1).kind is TokenKind.EQUALS:
                keyword = ts.next().value
                ts.next()
            if ts.peek().kind is TokenKind.OP and ts.peek().value == "*":
                ts.next()
                value: F.Expr = F.Star()
            else:
                value = ExprParser(ts).parse()
            controls.append(F.IoControl(keyword, value))
            if ts.accept(TokenKind.RPAREN):
                break
            ts.expect(TokenKind.COMMA)
        return controls

    def _parse_io_items(self, ts: _StmtTokens) -> list[F.Expr]:
        items: list[F.Expr] = []
        if not ts.at_end():
            items.append(ExprParser(ts).parse())
            while ts.accept(TokenKind.COMMA):
                items.append(ExprParser(ts).parse())
        ts.require_end()
        return items

    @staticmethod
    def _is_star_star(controls: list[F.IoControl]) -> bool:
        return (len(controls) == 2
                and all(c.keyword is None and isinstance(c.value, F.Star)
                        for c in controls))

    def _parse_read_write(self, ts: _StmtTokens, kind: str, line: int):
        ts.next()
        if kind == "read" and ts.peek().kind is not TokenKind.LPAREN:
            # read *, items   |   read 100, items
            if ts.accept(TokenKind.OP, "*"):
                items = []
                while ts.accept(TokenKind.COMMA):
                    items.append(ExprParser(ts).parse())
                ts.require_end()
                return F.ReadStmt(items=items, line=line)
            fmt = ExprParser(ts).parse()
            controls = [F.IoControl(None, fmt)]
            items = []
            while ts.accept(TokenKind.COMMA):
                items.append(ExprParser(ts).parse())
            ts.require_end()
            return F.IoStmt(kind="read", controls=controls, items=items,
                            line=line)
        controls = self._parse_io_controls(ts)
        items = self._parse_io_items(ts)
        if self._is_star_star(controls):
            # write(*,*) / read(*,*): the legacy list-directed nodes the
            # interpreter executes
            if kind == "write":
                return F.PrintStmt(items=items, line=line)
            return F.ReadStmt(items=items, line=line)
        return F.IoStmt(kind=kind, controls=controls, items=items, line=line)

    def _parse_print(self, ts: _StmtTokens, line: int):
        ts.next()
        if ts.accept(TokenKind.OP, "*"):
            items: list[F.Expr] = []
            while ts.accept(TokenKind.COMMA):
                items.append(ExprParser(ts).parse())
            ts.require_end()
            return F.PrintStmt(items=items, line=line)
        fmt = ExprParser(ts).parse()
        controls = [F.IoControl(None, fmt)]
        items = []
        while ts.accept(TokenKind.COMMA):
            items.append(ExprParser(ts).parse())
        ts.require_end()
        return F.IoStmt(kind="print", controls=controls, items=items,
                        line=line)

    # -- assignment ----------------------------------------------------

    def _parse_assignment(self, ts: _StmtTokens, line: int) -> F.Assign:
        first = ts.peek()
        target = ExprParser(ts)._primary()
        if not isinstance(target, (F.Var, F.Apply)):
            _fail("F105", "invalid assignment target", line, first.col)
        ts.expect(TokenKind.EQUALS)
        value = ExprParser(ts).parse()
        ts.require_end()
        return F.Assign(target=target, value=value, line=line)


def parse_program(source: str,
                  sink: Optional[DiagnosticSink] = None) -> F.SourceFile:
    """Parse Fortran 77 source text into a :class:`SourceFile` AST.

    With a ``sink``, errors are collected as diagnostics and parsing
    recovers at statement boundaries (the returned AST covers whatever
    parsed); without one, the first error raises :class:`ParseError`.
    """
    return Parser(source, sink).parse()
