"""Fixed-form Fortran 77 unparser (pretty printer).

Produces canonical fixed-form text: labels right-justified in columns 1-5,
statement bodies starting at column 7, continuation cards marked with ``&``
in column 6, nothing beyond column 72.  Round-trips with the parser
(``parse(unparse(parse(s)))`` equals ``parse(s)`` structurally).

The :class:`UnparserBase` dispatch tables are extended by the Cedar Fortran
unparser in :mod:`repro.cedar.unparse`.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.fortran import ast_nodes as F

#: Binding strength of operators, used to minimize parentheses.
_PRECEDENCE = {
    ".eqv.": 1, ".neqv.": 1,
    ".or.": 2,
    ".and.": 3,
    ".not.": 4,
    ".lt.": 5, ".le.": 5, ".eq.": 5, ".ne.": 5, ".gt.": 5, ".ge.": 5,
    "//": 6,
    "+": 7, "-": 7,
    "*": 8, "/": 8,
    "**": 10,
}


def _fmt_real(value: float, double: bool) -> str:
    s = repr(float(value))
    if "e" in s:
        mant, exp = s.split("e")
        if "." not in mant:
            mant += "."
        s = mant + ("d" if double else "e") + exp
    elif double:
        s += "d0" if "." in s else ".d0"
    elif "." not in s:
        s += ".0"
    return s


class ExprWriter:
    """Renders expression trees to flat text."""

    def write(self, e: F.Expr, parent_prec: int = 0) -> str:
        m = getattr(self, "w_" + type(e).__name__, None)
        if m is None:
            raise ReproError(f"cannot unparse expression node {type(e).__name__}")
        return m(e, parent_prec)

    def w_IntLit(self, e: F.IntLit, p: int) -> str:
        return str(e.value)

    def w_RealLit(self, e: F.RealLit, p: int) -> str:
        return _fmt_real(e.value, e.double)

    def w_LogicalLit(self, e: F.LogicalLit, p: int) -> str:
        return ".true." if e.value else ".false."

    def w_StrLit(self, e: F.StrLit, p: int) -> str:
        return "'" + e.value.replace("'", "''") + "'"

    def w_Var(self, e: F.Var, p: int) -> str:
        return e.name

    def w_RangeExpr(self, e: F.RangeExpr, p: int) -> str:
        lo = self.write(e.lo) if e.lo is not None else ""
        hi = self.write(e.hi) if e.hi is not None else ""
        s = f"{lo}:{hi}"
        if e.stride is not None:
            s += ":" + self.write(e.stride)
        return s

    def _args(self, args: list[F.Expr]) -> str:
        return ", ".join(self.write(a) for a in args)

    def w_Apply(self, e: F.Apply, p: int) -> str:
        return f"{e.name}({self._args(e.args)})"

    def w_ArrayRef(self, e: F.ArrayRef, p: int) -> str:
        return f"{e.name}({self._args(e.subscripts)})"

    def w_FuncCall(self, e: F.FuncCall, p: int) -> str:
        return f"{e.name}({self._args(e.args)})"

    def w_BinOp(self, e: F.BinOp, p: int) -> str:
        prec = _PRECEDENCE[e.op]
        if e.op == "**":  # right-associative: parenthesize equal-prec left
            left = self.write(e.left, prec + 1)
            right = self.write(e.right, prec)
        else:  # left-associative: parenthesize equal-prec right
            left = self.write(e.left, prec)
            right = self.write(e.right, prec + 1)
        text = f"{left} {e.op} {right}"
        if prec < p:
            return "(" + text + ")"
        return text

    def w_Star(self, e: F.Star, p: int) -> str:
        return "*"

    def w_UnOp(self, e: F.UnOp, p: int) -> str:
        # Fortran unary +/- sits at additive precedence (the parser treats a
        # leading sign at the _additive level), so the operand must be
        # parenthesized at equal precedence to round-trip: -(a + b) vs -a + b.
        prec = _PRECEDENCE[e.op] if e.op.startswith(".") else 7
        text = (f"{e.op}{' ' if e.op.startswith('.') else ''}"
                f"{self.write(e.operand, prec + 1)}")
        if prec < p:
            return "(" + text + ")"
        return text


class UnparserBase:
    """Statement/unit pretty printer; subclassed by the Cedar unparser."""

    INDENT = 3

    def __init__(self):
        self.lines: list[str] = []
        self.expr = ExprWriter()

    # -- physical layout -------------------------------------------------

    #: statement body width, columns 7..72
    _ROOM = 66

    @staticmethod
    def _quote_mask(s: str, start_inside: bool = False) -> tuple[list[bool], bool]:
        """Per-char "inside a quoted literal" flags (quote chars count as
        inside) and the quote state after the last char."""
        mask: list[bool] = []
        inq = start_inside
        for ch in s:
            if ch == "'":
                mask.append(True)
                inq = not inq
            else:
                mask.append(inq)
        return mask, inq

    @classmethod
    def _split_card(cls, body: str, start_inside: bool) -> tuple[str, str]:
        """Cut ``body`` for one continuation card: at a token boundary
        outside quoted text when possible, never stripping quoted spaces.

        Preference order: rightmost unquoted space (strippable on both
        sides), then rightmost unquoted ``,``/``(``/``)`` (cut after it,
        verbatim), else a hard cut at the card edge — only reachable
        inside one giant token, where the fixed-form card join restores
        the text exactly because neither side is stripped.
        """
        room = cls._ROOM
        mask, _ = cls._quote_mask(body[:room + 1], start_inside)
        for i in range(room - 1, 0, -1):
            if body[i] == " " and not mask[i]:
                # the remainder keeps the boundary space: dropping it
                # would glue adjacent tokens ("goto" + "140" → "goto140")
                # when the fixed-form join concatenates the cards
                return body[:i].rstrip(), body[i:]
        for i in range(room, 1, -1):
            if body[i - 1] in ",()" and not mask[i - 1]:
                return body[:i], body[i:]
        return body[:room], body[room:]

    def emit(self, text: str, label: int | None = None, depth: int = 0) -> None:
        label_field = f"{label:>5}" if label is not None else "     "
        body = " " * (self.INDENT * depth) + text
        first = True
        inq = False  # quote state at the start of the current chunk
        while True:
            if len(body) <= self._ROOM:
                chunk, body = body, ""
            else:
                chunk, body = self._split_card(body, inq)
            line = (f"{label_field} " if first else "     &") + chunk
            mask, inq = self._quote_mask(chunk, inq)
            if not (chunk.endswith(" ") and mask[-1]):
                line = line.rstrip()  # trailing spaces are outside quotes
            self.lines.append(line)
            first = False
            if not body:
                break

    def comment(self, text: str) -> None:
        self.lines.append("c " + text if text else "c")

    def result(self) -> str:
        return "\n".join(self.lines) + "\n"

    # -- dispatch ----------------------------------------------------------

    def e(self, expr: F.Expr) -> str:
        return self.expr.write(expr)

    def stmt(self, s: F.Stmt, depth: int) -> None:
        m = getattr(self, "s_" + type(s).__name__, None)
        if m is None:
            raise ReproError(f"cannot unparse statement node {type(s).__name__}")
        m(s, depth)

    def block(self, stmts: list[F.Stmt], depth: int) -> None:
        for s in stmts:
            self.stmt(s, depth)

    # -- program units -----------------------------------------------------

    def unit(self, u: F.ProgramUnit) -> None:
        if isinstance(u, F.MainProgram):
            self.emit(f"program {u.name}")
        elif isinstance(u, F.Subroutine):
            args = f"({', '.join(u.args)})" if u.args else ""
            self.emit(f"subroutine {u.name}{args}")
        elif isinstance(u, F.Function):
            prefix = f"{u.result_type} " if u.result_type else ""
            self.emit(f"{prefix}function {u.name}({', '.join(u.args)})")
        else:  # pragma: no cover
            raise ReproError(f"unknown unit kind {type(u).__name__}")
        self.block(u.specs, 1)
        self.block(u.body, 1)
        self.emit("end")

    def source_file(self, sf: F.SourceFile) -> None:
        for i, u in enumerate(sf.units):
            if i:
                self.lines.append("")
            self.unit(u)

    # -- specification statements -------------------------------------------

    def _entity(self, ent: F.EntityDecl) -> str:
        if not ent.dims:
            return ent.name
        dims = []
        for d in ent.dims:
            lo = self.e(d.lower) if d.lower is not None else None
            hi = self.e(d.upper) if d.upper is not None else "*"
            dims.append(hi if lo is None or lo == "1" else f"{lo}:{hi}")
        return f"{ent.name}({', '.join(dims)})"

    def s_TypeDecl(self, s: F.TypeDecl, d: int) -> None:
        ents = ", ".join(self._entity(e) for e in s.entities)
        base = s.type.base
        if base == "doubleprecision":
            base = "double precision"
        if base == "character" and s.type.char_len is not None:
            base += "*" + self.e(s.type.char_len)
        self.emit(f"{base} {ents}", s.label, d)

    def s_DimensionStmt(self, s: F.DimensionStmt, d: int) -> None:
        ents = ", ".join(self._entity(e) for e in s.entities)
        self.emit(f"dimension {ents}", s.label, d)

    def s_CommonStmt(self, s: F.CommonStmt, d: int) -> None:
        ents = ", ".join(self._entity(e) for e in s.entities)
        blk = f"/{s.block}/ " if s.block else ""
        self.emit(f"common {blk}{ents}", s.label, d)

    def s_ParameterStmt(self, s: F.ParameterStmt, d: int) -> None:
        defs = ", ".join(f"{n} = {self.e(v)}" for n, v in s.defs)
        self.emit(f"parameter ({defs})", s.label, d)

    def s_DataStmt(self, s: F.DataStmt, d: int) -> None:
        names = ", ".join(self.e(n) for n in s.names)
        values = ", ".join(self.e(v) for v in s.values)
        self.emit(f"data {names} /{values}/", s.label, d)

    def s_EquivalenceStmt(self, s: F.EquivalenceStmt, d: int) -> None:
        groups = ", ".join(
            "(" + ", ".join(self.e(x) for x in g) + ")" for g in s.groups
        )
        self.emit(f"equivalence {groups}", s.label, d)

    def s_ImplicitStmt(self, s: F.ImplicitStmt, d: int) -> None:
        self.emit("implicit none", s.label, d)

    def s_ExternalStmt(self, s: F.ExternalStmt, d: int) -> None:
        self.emit("external " + ", ".join(s.names), s.label, d)

    def s_IntrinsicStmt(self, s: F.IntrinsicStmt, d: int) -> None:
        self.emit("intrinsic " + ", ".join(s.names), s.label, d)

    def s_SaveStmt(self, s: F.SaveStmt, d: int) -> None:
        text = "save " + ", ".join(s.names) if s.names else "save"
        self.emit(text, s.label, d)

    def s_EntryStmt(self, s: F.EntryStmt, d: int) -> None:
        args = f"({', '.join(s.args)})" if s.args else ""
        self.emit(f"entry {s.name}{args}", s.label, d)

    def s_FormatStmt(self, s: F.FormatStmt, d: int) -> None:
        self.emit(f"format {s.spec}", s.label, d)

    # -- executable statements ----------------------------------------------

    def s_Assign(self, s: F.Assign, d: int) -> None:
        self.emit(f"{self.e(s.target)} = {self.e(s.value)}", s.label, d)

    @staticmethod
    def _closes_own_label(s: F.DoLoop) -> bool:
        """True if the loop's terminal statement carries ``do_label`` (the
        classic ``do 100 i … 100 continue`` shape, including nested loops
        sharing one terminal label), so the labeled spelling re-parses to
        the identical AST."""
        while True:
            if s.do_label is None or not s.body:
                return False
            last = s.body[-1]
            if isinstance(last, F.DoLoop):
                if last.do_label != s.do_label:
                    return False
                s = last
                continue
            return last.label == s.do_label

    def s_DoLoop(self, s: F.DoLoop, d: int) -> None:
        labeled = self._closes_own_label(s)
        rng = f"{s.var} = {self.e(s.start)}, {self.e(s.end)}"
        if s.step is not None:
            rng += f", {self.e(s.step)}"
        if labeled:
            # terminal card (inside body, carrying the label) closes the
            # loop — emitting "end do" as well would not re-parse
            self.emit(f"do {s.do_label} {rng}", s.label, d)
            self.block(s.body, d + 1)
        else:
            self.emit(f"do {rng}", s.label, d)
            self.block(s.body, d + 1)
            self.emit("end do", None, d)

    def s_IfBlock(self, s: F.IfBlock, d: int) -> None:
        for i, (cond, body) in enumerate(s.arms):
            if i == 0:
                self.emit(f"if ({self.e(cond)}) then", s.label, d)
            elif cond is not None:
                self.emit(f"else if ({self.e(cond)}) then", None, d)
            else:
                self.emit("else", None, d)
            self.block(body, d + 1)
        self.emit("end if", None, d)

    def s_LogicalIf(self, s: F.LogicalIf, d: int) -> None:
        inner = self._inline_stmt(s.stmt)
        self.emit(f"if ({self.e(s.cond)}) {inner}", s.label, d)

    def _inline_stmt(self, s: F.Stmt) -> str:
        sub = type(self)()
        sub.stmt(s, 0)
        if len(sub.lines) != 1:
            raise ReproError("logical-IF statement does not fit on one line")
        return sub.lines[0][6:].strip()

    def s_Goto(self, s: F.Goto, d: int) -> None:
        self.emit(f"goto {s.target}", s.label, d)

    def s_ComputedGoto(self, s: F.ComputedGoto, d: int) -> None:
        targets = ", ".join(str(t) for t in s.targets)
        self.emit(f"goto ({targets}), {self.e(s.index)}", s.label, d)

    def s_ContinueStmt(self, s: F.ContinueStmt, d: int) -> None:
        self.emit("continue", s.label, d)

    def s_CallStmt(self, s: F.CallStmt, d: int) -> None:
        args = ", ".join(self.e(a) for a in s.args)
        self.emit(f"call {s.name}({args})" if s.args else f"call {s.name}",
                  s.label, d)

    def s_ReturnStmt(self, s: F.ReturnStmt, d: int) -> None:
        self.emit("return", s.label, d)

    def s_StopStmt(self, s: F.StopStmt, d: int) -> None:
        if s.message is None:
            text = "stop"
        elif s.message.isdigit():
            text = f"stop {s.message}"
        else:
            text = "stop '" + s.message.replace("'", "''") + "'"
        self.emit(text, s.label, d)

    def s_PrintStmt(self, s: F.PrintStmt, d: int) -> None:
        items = ", ".join(self.e(i) for i in s.items)
        self.emit(f"print *, {items}" if items else "print *", s.label, d)

    def s_ReadStmt(self, s: F.ReadStmt, d: int) -> None:
        items = ", ".join(self.e(i) for i in s.items)
        self.emit(f"read *, {items}" if items else "read *", s.label, d)

    def s_AssignLabelStmt(self, s: F.AssignLabelStmt, d: int) -> None:
        self.emit(f"assign {s.target} to {s.var}", s.label, d)

    def s_AssignedGoto(self, s: F.AssignedGoto, d: int) -> None:
        text = f"goto {s.var}"
        if s.targets:
            text += " (" + ", ".join(str(t) for t in s.targets) + ")"
        self.emit(text, s.label, d)

    def _io_controls(self, controls: list[F.IoControl]) -> str:
        parts = []
        for c in controls:
            val = self.e(c.value)
            parts.append(f"{c.keyword} = {val}" if c.keyword else val)
        return ", ".join(parts)

    def s_IoStmt(self, s: F.IoStmt, d: int) -> None:
        items = ", ".join(self.e(i) for i in s.items)
        if s.kind == "print":
            # print FMT [, items] — the parenthesized form does not exist
            fmt = self.e(s.controls[0].value)
            text = f"print {fmt}, {items}" if items else f"print {fmt}"
        elif (s.kind in ("rewind", "backspace", "endfile")
              and len(s.controls) == 1 and s.controls[0].keyword is None):
            text = f"{s.kind} {self.e(s.controls[0].value)}"
        else:
            text = f"{s.kind} ({self._io_controls(s.controls)})"
            if items:
                text += f" {items}"
        self.emit(text, s.label, d)


class Unparser(UnparserBase):
    """The plain Fortran 77 unparser."""


def unparse(node: F.Node) -> str:
    """Unparse a SourceFile, ProgramUnit, or statement (list) to f77 text."""
    u = Unparser()
    if isinstance(node, F.SourceFile):
        u.source_file(node)
    elif isinstance(node, F.ProgramUnit):
        u.unit(node)
    elif isinstance(node, F.Stmt):
        u.stmt(node, 0)
    else:
        raise ReproError(f"cannot unparse {type(node).__name__}")
    return u.result()
