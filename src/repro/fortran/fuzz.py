"""Seeded random-F77 generator and its two oracles.

``generate(seed)`` produces a deterministic fixed-form Fortran 77
program from an explicit seed — no wall-clock entropy anywhere, so a
failing seed is a permanent reproducer.  Two modes:

- **surface** — exercises the whole statement surface the parser
  accepts (declarations, COMMON/EQUIVALENCE/DATA/SAVE/EXTERNAL, labeled
  and END DO loops, block/logical IF, plain/computed/assigned GOTO, the
  full I/O set, FORMAT, ENTRY) with every referenced label defined, so
  generated programs are parse-clean by construction;
- **executable** — a restructurer-friendly subroutine over ``(n, a, b,
  c)`` real arrays: affine in-bounds subscripts, recurrences,
  reductions, and guarded branches, with no I/O — suitable for
  differential execution through :func:`repro.validate.validate_workload`.

Oracles:

- :func:`round_trip_check` — parse → unparse → re-parse AST identity
  (:func:`repro.fortran.ast_nodes.ast_equal`, reported via ``ast_diff``);
- :func:`differential_check` — run an executable program through the
  restructuring pipeline and compare against the sequential baseline.

CLI: ``python -m repro.fortran.fuzz --seed 1 --count 200 --check``
(exit 1 on any oracle failure; ``--out DIR`` writes the programs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.fortran.ast_nodes import ast_diff
from repro.fortran.parser import parse_program
from repro.fortran.unparse import unparse

#: FORMAT edit-descriptor specs the surface generator draws from
_FORMAT_SPECS = (
    "(i5)", "(2x,i5)", "(f8.3,1x,e12.4)", "('x = ',f10.4)",
    "(3(i4,1x))", "(a,i3)", "(1x,2f9.2)",
)

_INT_SCALARS = ("i", "j", "k", "m")
_REAL_SCALARS = ("x", "y", "z", "w")
_REAL_ARRAYS = ("u", "v")
_COEFFS = ("0.25", "0.5", "1.5", "2.0", "0.125", "3.0")


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program and how it was produced."""

    name: str
    seed: int
    mode: str          # "surface" | "executable"
    source: str
    entry: str = ""    # executable mode: the subroutine to call


class _CardWriter:
    """Emits fixed-form cards, splitting long statements onto
    continuation cards at spaces outside quoted text."""

    def __init__(self):
        self.lines: list[str] = []

    def comment(self, text: str = "") -> None:
        self.lines.append(("c " + text).rstrip())

    def blank(self) -> None:
        self.lines.append("")

    def card(self, text: str, label: Optional[int] = None,
             depth: int = 0) -> None:
        head = f"{label:>5} " if label is not None else "      "
        body = "   " * depth + text
        while len(body) > 66:
            cut = self._safe_cut(body)
            # keep the boundary space on the continuation card so the
            # fixed-form join cannot glue adjacent tokens together
            self.lines.append((head + body[:cut]).rstrip())
            body = body[cut:]
            head = "     &"
        self.lines.append((head + body).rstrip())

    @staticmethod
    def _safe_cut(body: str) -> int:
        inq = False
        best = 40  # fall back to a mid-card hard cut (never happens for
        for i, ch in enumerate(body[:66]):  # the short literals we emit)
            if ch == "'":
                inq = not inq
            elif ch == " " and not inq and i >= 8:
                best = i
        return best

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class _SurfaceGen:
    """Generates one parse-clean program covering the statement surface."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.seed = seed
        self.w = _CardWriter()
        self.next_label = 100
        #: labels that will be defined on trailing CONTINUE cards
        self.tail_labels: list[int] = []
        self.format_labels: list[int] = []

    def label(self) -> int:
        lbl = self.next_label
        self.next_label += 10
        return lbl

    def tail_label(self) -> int:
        if self.tail_labels and self.rng.random() < 0.6:
            return self.rng.choice(self.tail_labels)
        lbl = self.label()
        self.tail_labels.append(lbl)
        return lbl

    # -- expressions ---------------------------------------------------

    def int_expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth >= 2 or r.random() < 0.5:
            return r.choice((str(r.randint(1, 9)),
                             r.choice(_INT_SCALARS)))
        op = r.choice(("+", "-", "*"))
        return f"{self.int_expr(depth + 1)} {op} {self.int_expr(depth + 1)}"

    def subscript(self) -> str:
        r = self.rng
        base = r.choice(_INT_SCALARS)
        if r.random() < 0.5:
            return base
        return f"{base} + {r.randint(1, 3)}"

    def real_term(self) -> str:
        r = self.rng
        pick = r.random()
        if pick < 0.35:
            return r.choice(_COEFFS)
        if pick < 0.7:
            return r.choice(_REAL_SCALARS)
        return f"{r.choice(_REAL_ARRAYS)}({self.subscript()})"

    def real_expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth >= 2 or r.random() < 0.4:
            return self.real_term()
        if r.random() < 0.12:
            return f"-{self.real_term()}"
        op = r.choice(("+", "-", "*", "+", "*"))
        lhs = self.real_expr(depth + 1)
        rhs = self.real_expr(depth + 1)
        if r.random() < 0.15:
            return f"({lhs} {op} {rhs})"
        return f"{lhs} {op} {rhs}"

    def cond(self) -> str:
        r = self.rng
        rel = r.choice((".lt.", ".le.", ".gt.", ".ge.", ".eq.", ".ne."))
        base = f"{self.real_term()} {rel} {self.real_term()}"
        if r.random() < 0.25:
            rel2 = r.choice((".lt.", ".gt."))
            join = r.choice((".and.", ".or."))
            base += f" {join} {self.real_term()} {rel2} {self.real_term()}"
        if r.random() < 0.1:
            return f".not. ({base})"
        return base

    # -- statements ----------------------------------------------------

    def assignment(self) -> str:
        r = self.rng
        if r.random() < 0.4:
            target = f"{r.choice(_REAL_ARRAYS)}({self.subscript()})"
        elif r.random() < 0.6:
            target = r.choice(_REAL_SCALARS)
        else:
            return f"{r.choice(_INT_SCALARS)} = {self.int_expr()}"
        return f"{target} = {self.real_expr()}"

    def io_stmt(self) -> str:
        r = self.rng
        fmt = r.choice(self.format_labels)
        items = ", ".join(self.real_term() for _ in range(r.randint(1, 3)))
        return r.choice((
            f"write (6, {fmt}) {items}",
            f"write (6, fmt = {fmt}) {items}",
            f"read (5, {fmt}) {r.choice(_REAL_SCALARS)}",
            f"print {fmt}, {items}",
            f"print *, {items}",
            f"open (unit = 9, file = 'scratch.dat', status = 'unknown')",
            "close (9)",
            "rewind 9",
            "backspace 9",
            "endfile 9",
            f"inquire (unit = 9, opened = {r.choice(_INT_SCALARS)})",
        ))

    def emit_simple(self, depth: int) -> None:
        r = self.rng
        pick = r.random()
        if pick < 0.45:
            self.w.card(self.assignment(), depth=depth)
        elif pick < 0.65:
            self.w.card(self.io_stmt(), depth=depth)
        elif pick < 0.75:
            self.w.card(f"goto {self.tail_label()}", depth=depth)
        elif pick < 0.82:
            l1, l2 = self.tail_label(), self.tail_label()
            idx = r.choice(_INT_SCALARS)
            self.w.card(f"goto ({l1}, {l2}), {idx}", depth=depth)
        elif pick < 0.89:
            var = r.choice(_INT_SCALARS)
            lbl = self.tail_label()
            self.w.card(f"assign {lbl} to {var}", depth=depth)
            self.w.card(f"goto {var} ({lbl})", depth=depth)
        elif pick < 0.95:
            inner = r.choice((f"goto {self.tail_label()}",
                              self.assignment(), "continue"))
            self.w.card(f"if ({self.cond()}) {inner}", depth=depth)
        else:
            self.w.card(f"call extsub({self.real_term()}, "
                        f"{self.real_term()})", depth=depth)

    def emit_block(self, depth: int, budget: int) -> None:
        r = self.rng
        while budget > 0:
            budget -= 1
            pick = r.random()
            if depth < 3 and pick < 0.18:
                var = r.choice(_INT_SCALARS)
                lo, hi = r.randint(1, 3), r.randint(4, 12)
                if r.random() < 0.5:
                    self.w.card(f"do {var} = {lo}, {hi}", depth=depth)
                    self.emit_block(depth + 1, r.randint(1, 3))
                    self.w.card("end do", depth=depth)
                else:
                    lbl = self.label()
                    self.w.card(f"do {lbl} {var} = {lo}, {hi}",
                                depth=depth)
                    self.emit_block(depth + 1, r.randint(1, 2))
                    self.w.card("continue", label=lbl, depth=depth)
            elif depth < 3 and pick < 0.32:
                self.w.card(f"if ({self.cond()}) then", depth=depth)
                self.emit_block(depth + 1, r.randint(1, 2))
                if r.random() < 0.4:
                    self.w.card(f"else if ({self.cond()}) then",
                                depth=depth)
                    self.emit_block(depth + 1, r.randint(1, 2))
                if r.random() < 0.5:
                    self.w.card("else", depth=depth)
                    self.emit_block(depth + 1, r.randint(1, 2))
                self.w.card("end if", depth=depth)
            else:
                self.emit_simple(depth)
            if r.random() < 0.08:
                self.w.comment(f"marker {r.randint(0, 999)}")

    # -- whole program -------------------------------------------------

    def generate(self) -> FuzzProgram:
        r = self.rng
        name = f"fz{self.seed:04d}"
        kind = r.choice(("program", "subroutine", "function"))
        self.w.comment(f"seeded fuzz program (surface mode, seed "
                       f"{self.seed})")
        if kind == "program":
            self.w.card(f"program {name}")
        elif kind == "subroutine":
            self.w.card(f"subroutine {name}(x, y)")
        else:
            self.w.card(f"real function {name}(x, y)")
        # -- specifications
        self.w.card("integer " + ", ".join(_INT_SCALARS))
        self.w.card("real " + ", ".join(_REAL_SCALARS))
        self.w.card(f"dimension u({r.randint(20, 60)})")
        self.w.card(f"real v({r.randint(20, 60)})")
        if r.random() < 0.6:
            self.w.card("common /blk/ t(50)")
        if r.random() < 0.5:
            self.w.card(f"parameter (c1 = {r.randint(2, 9)})")
        if r.random() < 0.4:
            self.w.card("save x, y")
        elif r.random() < 0.3:
            self.w.card("save")
        self.w.card("external extsub")
        if r.random() < 0.3:
            self.w.card("intrinsic sqrt")
        if r.random() < 0.4:
            self.w.card("equivalence (x, w), (u(1), v(1))")
        if r.random() < 0.6:
            self.w.card(f"data i, x /{r.randint(0, 9)}, "
                        f"{r.choice(_COEFFS)}/")
        if r.random() < 0.3:
            self.w.card(f"data u /{r.randint(2, 5)}*0.0/")
        for _ in range(r.randint(1, 3)):
            lbl = self.label()
            self.format_labels.append(lbl)
            self.w.card(f"format {r.choice(_FORMAT_SPECS)}", label=lbl)
        # -- executable body
        self.emit_block(1, r.randint(6, 14))
        if kind == "subroutine" and r.random() < 0.4:
            self.w.card(f"entry {name}b(x)")
            self.emit_block(1, 2)
        if kind == "function":
            self.w.card(f"{name} = x + y")
        # define every pending GOTO target
        for lbl in self.tail_labels:
            self.w.card("continue", label=lbl)
        if kind == "program" and r.random() < 0.5:
            self.w.card(f"stop {r.randint(0, 7)}" if r.random() < 0.5
                        else "stop")
        else:
            self.w.card("return" if kind != "program" else "continue")
        self.w.card("end")
        return FuzzProgram(name=name, seed=self.seed, mode="surface",
                           source=self.w.text())


class _ExecGen:
    """Generates one executable, restructurer-friendly subroutine."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed ^ 0x5EED)
        self.seed = seed
        self.w = _CardWriter()

    def _loop(self, idx: str, arrays: tuple[str, ...]) -> None:
        r = self.rng
        target = r.choice(arrays)
        shape = r.random()
        if shape < 0.3:
            # first-order recurrence: stays serial or needs the
            # recurrence solver — a restructurer stress case
            self.w.card(f"do {idx} = 2, n", depth=1)
            src = r.choice([a for a in arrays if a != target])
            self.w.card(
                f"{target}({idx}) = {target}({idx} - 1) * "
                f"{r.choice(('0.25', '0.5'))} + {src}({idx})", depth=2)
            self.w.card("end do", depth=1)
        elif shape < 0.55:
            # independent elementwise update, possibly guarded
            self.w.card(f"do {idx} = 1, n", depth=1)
            others = [a for a in arrays if a != target]
            rhs = (f"{others[0]}({idx}) * {r.choice(_COEFFS)} + "
                   f"{others[1]}({idx})")
            if r.random() < 0.4:
                self.w.card(f"if ({others[0]}({idx}) .gt. 0.0) then",
                            depth=2)
                self.w.card(f"{target}({idx}) = {rhs}", depth=3)
                self.w.card("else", depth=2)
                self.w.card(f"{target}({idx}) = {others[1]}({idx}) - "
                            f"{r.choice(_COEFFS)}", depth=3)
                self.w.card("end if", depth=2)
            else:
                self.w.card(f"{target}({idx}) = {rhs}", depth=2)
            self.w.card("end do", depth=1)
        elif shape < 0.75:
            # reduction into a scalar
            self.w.card(f"do {idx} = 1, n", depth=1)
            self.w.card(f"s = s + {target}({idx}) * "
                        f"{r.choice(_COEFFS)}", depth=2)
            self.w.card("end do", depth=1)
        else:
            # shifted read (forward dependence-free): i+1 with bound n-1
            self.w.card(f"do {idx} = 1, n - 1", depth=1)
            src = r.choice([a for a in arrays if a != target])
            self.w.card(f"{target}({idx}) = {src}({idx} + 1) * "
                        f"{r.choice(('0.5', '0.25'))} + "
                        f"{src}({idx})", depth=2)
            self.w.card("end do", depth=1)

    def generate(self) -> FuzzProgram:
        r = self.rng
        name = f"fzx{self.seed:04d}"
        self.w.comment(f"seeded fuzz program (executable mode, seed "
                       f"{self.seed})")
        self.w.card(f"subroutine {name}(n, a, b, c)")
        self.w.card("integer n")
        self.w.card("real a(n), b(n), c(n)")
        self.w.card("real s")
        self.w.card("integer i")
        self.w.card("s = 0.0")
        arrays = ("a", "b", "c")
        for _ in range(r.randint(2, 4)):
            self._loop("i", arrays)
        self.w.card("b(1) = b(1) + s")
        self.w.card("end")
        return FuzzProgram(name=name, seed=self.seed, mode="executable",
                           source=self.w.text(), entry=name)


def generate(seed: int, mode: str = "surface") -> FuzzProgram:
    """Deterministically generate one program from an explicit seed."""
    if mode == "surface":
        return _SurfaceGen(seed).generate()
    if mode == "executable":
        return _ExecGen(seed).generate()
    raise ValueError(f"unknown fuzz mode {mode!r}")


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------

def round_trip_check(source: str) -> Optional[str]:
    """Parse → unparse → re-parse AST-identity oracle.

    Returns ``None`` on success, else a description of the first
    difference (an :func:`ast_diff` path, or the exception text when a
    stage failed outright).
    """
    try:
        a1 = parse_program(source)
    except Exception as exc:
        return f"initial parse failed: {exc}"
    try:
        text = unparse(a1)
    except Exception as exc:
        return f"unparse failed: {exc}"
    try:
        a2 = parse_program(text)
    except Exception as exc:
        return f"re-parse failed: {exc}"
    return ast_diff(a1, a2)


def make_case(prog: FuzzProgram, n: int = 24):
    """Wrap an executable fuzz program as a ValidationCase."""
    import numpy as np
    from repro.workloads import ValidationCase

    if prog.mode != "executable":
        raise ValueError("only executable fuzz programs are runnable")

    def make_args(n, rng):
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        c = rng.standard_normal(n)
        return (n, a.copy(), b.copy(), c.copy()), None

    return ValidationCase(
        name=prog.name, suite="linalg", source=prog.source,
        entry=prog.entry, make_args=make_args, n=n)


def differential_check(prog: FuzzProgram, n: int = 24,
                       processors: tuple[int, ...] = (2,),
                       seeds: tuple[int, ...] = (3,),
                       engines: tuple[str, ...] = ("compiled", "source"),
                       ) -> Optional[str]:
    """Differential-execution oracle for executable fuzz programs.

    Restructures the program under the ``automatic`` pipeline and
    compares parallel interpretation against the sequential baseline,
    once per engine tier — generated programs exercise the closure
    compiler *and* the source-JIT's lowering paths, not just the
    committed workloads.  Returns ``None`` when every configuration
    validates under every engine, else a description of the first
    failure.
    """
    from repro.validate.configs import PIPELINE_CONFIGS
    from repro.validate.differential import validate_workload

    case = make_case(prog, n=n)
    for engine in engines:
        result = validate_workload(
            case, {"automatic": PIPELINE_CONFIGS["automatic"]},
            seeds=seeds, processors=processors, bisect=False,
            engine=engine)
        for cfg in result.configs:
            if not cfg.ok:
                detail = cfg.error or cfg.status
                return f"config {cfg.config} [engine {engine}]: {detail}"
    return None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[list[str]] = None) -> int:
    import argparse
    import os
    import sys

    ap = argparse.ArgumentParser(
        prog="python -m repro.fortran.fuzz",
        description="Seeded F77 fuzzer with round-trip and differential "
                    "oracles")
    ap.add_argument("--seed", type=int, default=1,
                    help="base seed (program k uses seed+k)")
    ap.add_argument("--count", type=int, default=20,
                    help="number of programs to generate")
    ap.add_argument("--mode", choices=("surface", "executable", "mixed"),
                    default="mixed",
                    help="statement-surface programs, executable "
                         "programs, or 4:1 mixed (default)")
    ap.add_argument("--check", action="store_true",
                    help="run the round-trip oracle on every program "
                         "(and the differential oracle on executable "
                         "ones when --differential)")
    ap.add_argument("--differential", action="store_true",
                    help="also differentially execute executable "
                         "programs (slower)")
    ap.add_argument("--out", metavar="DIR", default=None,
                    help="write the generated programs into DIR")
    ns = ap.parse_args(argv)

    failures = 0
    for k in range(ns.count):
        seed = ns.seed + k
        if ns.mode == "mixed":
            mode = "executable" if k % 5 == 4 else "surface"
        else:
            mode = ns.mode
        prog = generate(seed, mode)
        if ns.out:
            os.makedirs(ns.out, exist_ok=True)
            path = os.path.join(ns.out, f"{prog.name}.f")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(prog.source)
        if ns.check:
            diff = round_trip_check(prog.source)
            if diff is not None:
                failures += 1
                print(f"FAIL {prog.name} (seed {seed}, {mode}): "
                      f"round-trip: {diff}", file=sys.stderr)
                continue
            if ns.differential and mode == "executable":
                err = differential_check(prog)
                if err is not None:
                    failures += 1
                    print(f"FAIL {prog.name} (seed {seed}): "
                          f"differential: {err}", file=sys.stderr)
    total = ns.count
    if ns.check:
        print(f"{total - failures}/{total} programs passed "
              f"({'round-trip + differential' if ns.differential else 'round-trip'} oracle)")
    else:
        print(f"generated {total} program(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
