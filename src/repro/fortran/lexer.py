"""Fixed-form Fortran 77 lexer.

Handles the fixed-form card layout:

- column 1 ``c``, ``C`` or ``*`` (or a blank line) marks a comment card;
- columns 1-5 hold an optional numeric statement label;
- a non-blank, non-zero character in column 6 marks a continuation card;
- the statement body occupies columns 7-72 (text past 72 is ignored);
- ``!`` starts a trailing comment (common extension, honoured outside
  character literals).

The lexer is *space-tolerant* rather than fully space-insensitive: it
requires the conventional spelling ``do 10 i = 1, n`` (as produced by every
tool of the era) rather than the pathological ``DO10I=1,N``.  Identifiers and
keywords are lower-cased; Fortran has no reserved words, so keyword
recognition is the parser's job.

Each logical statement is terminated by a ``NEWLINE`` token; a ``LABEL``
token (if any) leads the statement.  The token stream ends with ``EOF``.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.fortran.tokens import (
    DOT_CONSTANTS,
    DOT_OPERATORS,
    SYMBOL_OPERATORS,
    Token,
    TokenKind,
)

_COMMENT_CHARS = {"c", "C", "*", "!"}


def _is_comment_card(line: str) -> bool:
    if not line.strip():
        return True
    return line[0] in _COMMENT_CHARS


class _LogicalLine:
    """A logical statement: label, body text, and source line of each char."""

    __slots__ = ("label", "text", "lines", "cols", "first_line")

    def __init__(self, label: str | None, first_line: int):
        self.label = label
        self.text: list[str] = []
        self.lines: list[int] = []
        self.cols: list[int] = []
        self.first_line = first_line

    def extend(self, body: str, lineno: int, col0: int) -> None:
        for i, ch in enumerate(body):
            self.text.append(ch)
            self.lines.append(lineno)
            self.cols.append(col0 + i)


def _split_logical_lines(source: str) -> list[_LogicalLine]:
    """Assemble physical cards into logical statements."""
    logical: list[_LogicalLine] = []
    current: _LogicalLine | None = None
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip("\n")
        if _is_comment_card(line):
            continue
        # Fixed-form significance ends at column 72.
        line = line[:72]
        label_field = line[:5]
        cont_field = line[5:6]
        body = line[6:]
        is_continuation = (
            cont_field.strip() not in ("", "0") and not label_field.strip()
        )
        if is_continuation:
            if current is None:
                raise LexError("continuation card with no statement to continue",
                               line=lineno)
            current.extend(body, lineno, 7)
            continue
        # New statement card.
        if current is not None:
            logical.append(current)
        label = label_field.strip() or None
        if label is not None and not label.isdigit():
            raise LexError(f"malformed statement label {label!r}", line=lineno)
        current = _LogicalLine(label, lineno)
        current.extend(body, lineno, 7)
    if current is not None:
        logical.append(current)
    return logical


class Lexer:
    """Tokenizes one logical statement at a time."""

    def __init__(self, source: str):
        self._logical = _split_logical_lines(source)

    def tokens(self) -> list[Token]:
        """Lex the whole source into a flat token list."""
        out: list[Token] = []
        for ll in self._logical:
            out.extend(self._lex_logical(ll))
        out.append(Token(TokenKind.EOF, "", 0, 0))
        return out

    # ------------------------------------------------------------------

    def _lex_logical(self, ll: _LogicalLine) -> list[Token]:
        toks: list[Token] = []
        if ll.label is not None:
            toks.append(Token(TokenKind.LABEL, str(int(ll.label)), ll.first_line, 1))
        text = "".join(ll.text)
        n = len(text)
        i = 0

        def loc(j: int) -> tuple[int, int]:
            j = min(j, n - 1) if n else 0
            if not ll.lines:
                return ll.first_line, 7
            return ll.lines[j], ll.cols[j]

        while i < n:
            ch = text[i]
            if ch in " \t":
                i += 1
                continue
            if ch == "!":
                break  # trailing comment
            line, col = loc(i)
            if ch == "'":
                j = i + 1
                buf = []
                while True:
                    if j >= n:
                        raise LexError("unterminated character literal", line, col)
                    if text[j] == "'":
                        if j + 1 < n and text[j + 1] == "'":
                            buf.append("'")
                            j += 2
                            continue
                        break
                    buf.append(text[j])
                    j += 1
                toks.append(Token(TokenKind.STRING, "".join(buf), line, col))
                i = j + 1
                continue
            if ch == ".":
                low = text[i:i + 8].lower()
                matched = False
                for op in DOT_OPERATORS:
                    if low.startswith(op):
                        toks.append(Token(TokenKind.OP, op, line, col))
                        i += len(op)
                        matched = True
                        break
                if matched:
                    continue
                for const in DOT_CONSTANTS:
                    if low.startswith(const):
                        toks.append(Token(TokenKind.LOGICAL, const, line, col))
                        i += len(const)
                        matched = True
                        break
                if matched:
                    continue
                if i + 1 < n and (text[i + 1].isdigit()):
                    tok, i = self._lex_number(text, i, line, col)
                    toks.append(tok)
                    continue
                raise LexError(f"unexpected '.' sequence {text[i:i+6]!r}", line, col)
            if ch.isdigit():
                tok, i = self._lex_number(text, i, line, col)
                toks.append(tok)
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                toks.append(Token(TokenKind.IDENT, text[i:j].lower(), line, col))
                i = j
                continue
            if ch == "(":
                toks.append(Token(TokenKind.LPAREN, "(", line, col))
                i += 1
                continue
            if ch == ")":
                toks.append(Token(TokenKind.RPAREN, ")", line, col))
                i += 1
                continue
            if ch == ",":
                toks.append(Token(TokenKind.COMMA, ",", line, col))
                i += 1
                continue
            if ch == ":":
                toks.append(Token(TokenKind.COLON, ":", line, col))
                i += 1
                continue
            if ch == "=":
                toks.append(Token(TokenKind.EQUALS, "=", line, col))
                i += 1
                continue
            matched = False
            for op in SYMBOL_OPERATORS:
                if text.startswith(op, i):
                    toks.append(Token(TokenKind.OP, op, line, col))
                    i += len(op)
                    matched = True
                    break
            if matched:
                continue
            raise LexError(f"unexpected character {ch!r}", line, col)
        line = ll.lines[-1] if ll.lines else ll.first_line
        toks.append(Token(TokenKind.NEWLINE, "", line, 73))
        return toks

    @staticmethod
    def _lex_number(text: str, i: int, line: int, col: int) -> tuple[Token, int]:
        """Lex an integer, real, or double literal starting at ``i``."""
        n = len(text)
        j = i
        while j < n and text[j].isdigit():
            j += 1
        is_real = False
        is_double = False
        if j < n and text[j] == ".":
            # Guard: "1.eq.2" — the dot belongs to the operator, not the number.
            low = text[j:j + 8].lower()
            if not any(low.startswith(op) for op in DOT_OPERATORS):
                is_real = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
        if j < n and text[j].lower() in ("e", "d"):
            k = j + 1
            if k < n and text[k] in "+-":
                k += 1
            if k < n and text[k].isdigit():
                is_double = text[j].lower() == "d"
                is_real = is_real or not is_double
                j = k
                while j < n and text[j].isdigit():
                    j += 1
        value = text[i:j].lower()
        if is_double:
            kind = TokenKind.DOUBLE
        elif is_real:
            kind = TokenKind.REAL
        else:
            kind = TokenKind.INT
        return Token(kind, value, line, col), j


def lex_source(source: str) -> list[Token]:
    """Convenience: lex ``source`` into a token list (ending with EOF)."""
    return Lexer(source).tokens()
