"""Fixed-form Fortran 77 lexer.

Handles the fixed-form card layout:

- column 1 ``c``, ``C`` or ``*`` (or a blank line) marks a comment card;
- columns 1-5 hold an optional numeric statement label;
- a non-blank, non-zero character in column 6 marks a continuation card;
- the statement body occupies columns 7-72; text past column 72 is
  dropped *with a warning* (``W202``) when it is significant;
- a tab in columns 1-6 advances to column 7 (the DEC tab convention,
  warned as ``W201``); a digit 1-9 immediately after the tab marks a
  continuation card;
- ``!`` starts a trailing comment (common extension, honoured outside
  character literals).

The lexer is *space-tolerant* rather than fully space-insensitive: it
requires the conventional spelling ``do 10 i = 1, n`` (as produced by every
tool of the era) rather than the pathological ``DO10I=1,N``.  Identifiers and
keywords are lower-cased; Fortran has no reserved words, so keyword
recognition is the parser's job.

Each logical statement is terminated by a ``NEWLINE`` token; a ``LABEL``
token (if any) leads the statement.  The token stream ends with ``EOF``.

Errors and warnings flow through a
:class:`~repro.fortran.diagnostics.DiagnosticSink`.  Without one, the
historical fail-fast contract holds: the first error raises
:class:`~repro.errors.LexError` (always with line *and* column).  With a
sink, errors are recorded and lexing recovers — by skipping the offending
character, or the rest of the statement for unterminated literals — so a
single bad card no longer hides the rest of the file.

``FORMAT`` statements are special-cased at the logical-line level: their
body after the keyword is captured verbatim (whitespace outside quotes
removed) into one ``RAW`` token, because format edit descriptors
(``2x``, ``i5``, ``f8.3``) do not tokenize under expression rules.
"""

from __future__ import annotations

from typing import Optional

from repro.fortran.diagnostics import DiagnosticSink, _RaisingSink
from repro.fortran.tokens import (
    DOT_CONSTANTS,
    DOT_OPERATORS,
    SYMBOL_OPERATORS,
    Token,
    TokenKind,
)

_COMMENT_CHARS = {"c", "C", "*", "!"}

#: significant columns of a fixed-form statement body (7..72)
_BODY_WIDTH = 66


def _is_comment_card(line: str) -> bool:
    if not line.strip():
        return True
    return line[0] in _COMMENT_CHARS


def _unquoted_bang(text: str) -> int:
    """Index of the first ``!`` outside character literals, or -1."""
    in_quote = False
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if in_quote and i + 1 < n and text[i + 1] == "'":
                i += 2
                continue
            in_quote = not in_quote
        elif ch == "!" and not in_quote:
            return i
        i += 1
    return -1


def strip_format_spec(spec: str) -> str:
    """Remove whitespace outside quoted sections of a FORMAT body.

    This is the canonical spelling stored in ``FormatStmt.spec``: with no
    insignificant spaces, re-lexing unparsed output reproduces the spec
    byte-for-byte even when the unparser had to split it across
    continuation cards (card splits eat the spaces they cut at).
    """
    out: list[str] = []
    in_quote = False
    i = 0
    n = len(spec)
    while i < n:
        ch = spec[i]
        if ch == "'":
            if in_quote and i + 1 < n and spec[i + 1] == "'":
                out.append("''")
                i += 2
                continue
            in_quote = not in_quote
            out.append(ch)
        elif ch in " \t" and not in_quote:
            pass
        else:
            out.append(ch)
        i += 1
    return "".join(out)


class _LogicalLine:
    """A logical statement: label, body text, and source line of each char."""

    __slots__ = ("label", "text", "lines", "cols", "first_line")

    def __init__(self, label: str | None, first_line: int):
        self.label = label
        self.text: list[str] = []
        self.lines: list[int] = []
        self.cols: list[int] = []
        self.first_line = first_line

    def extend(self, body: str, lineno: int, col0: int) -> None:
        for i, ch in enumerate(body):
            self.text.append(ch)
            self.lines.append(lineno)
            self.cols.append(col0 + i)


class Lexer:
    """Tokenizes one logical statement at a time."""

    def __init__(self, source: str, sink: Optional[DiagnosticSink] = None):
        self._sink = sink if sink is not None else _RaisingSink(source)
        self._logical = self._split_logical_lines(source)

    # -- card assembly -------------------------------------------------

    def _card_layout(self, raw: str, lineno: int
                     ) -> tuple[str, str, str, int]:
        """Split one card into (label_field, cont_char, body, body_col).

        Applies the DEC tab convention and the column-72 cutoff; emits
        ``W201``/``W202`` warnings through the sink.
        """
        tab = raw.find("\t")
        if 0 <= tab <= 5 and raw[:tab].find("!") < 0:
            # DEC tab convention: the tab skips to column 7; a digit 1-9
            # right after it marks a continuation card.
            self._sink.warning(
                "W201",
                "tab in the label field: advancing to column 7 "
                "(DEC tab convention)", lineno, tab + 1)
            head = raw[:tab]
            rest = raw[tab + 1:]
            if rest[:1].isdigit() and rest[0] != "0":
                label_field, cont, body, body_col = head, rest[0], rest[1:], 7
            else:
                label_field, cont, body, body_col = head, " ", rest, 7
        else:
            label_field = raw[:5]
            cont = raw[5:6]
            body = raw[6:]
            body_col = 7
        if len(body) > _BODY_WIDTH:
            kept, dropped = body[:_BODY_WIDTH], body[_BODY_WIDTH:]
            significant = (dropped.strip()
                           and not dropped.lstrip().startswith("!")
                           and _unquoted_bang(kept) < 0)
            if significant:
                self._sink.warning(
                    "W202",
                    f"text past column 72 is dropped: {dropped.strip()!r}",
                    lineno, body_col + _BODY_WIDTH)
            body = kept
        return label_field, cont, body, body_col

    def _split_logical_lines(self, source: str) -> list[_LogicalLine]:
        """Assemble physical cards into logical statements."""
        logical: list[_LogicalLine] = []
        current: Optional[_LogicalLine] = None
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.rstrip("\n")
            if _is_comment_card(line):
                continue
            label_field, cont_field, body, body_col = \
                self._card_layout(line, lineno)
            is_continuation = (
                cont_field.strip() not in ("", "0")
                and not label_field.strip()
            )
            if is_continuation:
                if current is None:
                    self._sink.error(
                        "F004",
                        "continuation card with no statement to continue",
                        lineno, 6)
                    continue
                current.extend(body, lineno, body_col)
                continue
            # New statement card.
            if current is not None:
                logical.append(current)
            label = label_field.strip() or None
            if label is not None and not label.isdigit():
                self._sink.error(
                    "F003", f"malformed statement label {label!r}",
                    lineno, 1 + label_field.index(label[0]))
                label = None
            current = _LogicalLine(label, lineno)
            current.extend(body, lineno, body_col)
        if current is not None:
            logical.append(current)
        return logical

    # ------------------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Lex the whole source into a flat token list."""
        out: list[Token] = []
        for ll in self._logical:
            out.extend(self._lex_logical(ll))
        out.append(Token(TokenKind.EOF, "", 0, 0))
        return out

    # ------------------------------------------------------------------

    @staticmethod
    def _format_split(text: str) -> Optional[int]:
        """If ``text`` is a FORMAT statement body, index where the raw
        spec starts (at its opening paren); else None.

        The heuristic distinguishing the FORMAT keyword from an array
        named ``format``: the statement must end with the closing paren
        of the spec (``format(i) = 2`` keeps going after it).
        """
        stripped = text.lstrip()
        low = stripped.lower()
        if not low.startswith("format"):
            return None
        rest = stripped[6:]
        if not rest.lstrip().startswith("("):
            return None
        bang = _unquoted_bang(text)
        effective = text[:bang] if bang >= 0 else text
        if not effective.rstrip().endswith(")"):
            return None
        offset = len(text) - len(stripped)
        return offset + 6 + (len(rest) - len(rest.lstrip()))

    def _lex_logical(self, ll: _LogicalLine) -> list[Token]:
        toks: list[Token] = []
        if ll.label is not None:
            toks.append(Token(TokenKind.LABEL, str(int(ll.label)),
                              ll.first_line, 1))
        text = "".join(ll.text)
        n = len(text)
        i = 0

        def loc(j: int) -> tuple[int, int]:
            j = min(j, n - 1) if n else 0
            if not ll.lines:
                return ll.first_line, 7
            return ll.lines[j], ll.cols[j]

        fmt_at = self._format_split(text)
        if fmt_at is not None:
            kw_at = text.lower().index("format")
            line, col = loc(kw_at)
            toks.append(Token(TokenKind.IDENT, "format", line, col))
            bang = _unquoted_bang(text)
            raw = text[fmt_at:bang] if bang >= 0 else text[fmt_at:]
            rline, rcol = loc(fmt_at)
            toks.append(Token(TokenKind.RAW, strip_format_spec(raw),
                              rline, rcol))
            line = ll.lines[-1] if ll.lines else ll.first_line
            toks.append(Token(TokenKind.NEWLINE, "", line, 73))
            return toks

        while i < n:
            ch = text[i]
            if ch in " \t":
                i += 1
                continue
            if ch == "!":
                break  # trailing comment
            line, col = loc(i)
            if ch == "'":
                j = i + 1
                buf = []
                terminated = True
                while True:
                    if j >= n:
                        self._sink.error(
                            "F002", "unterminated character literal",
                            line, col)
                        terminated = False
                        break
                    if text[j] == "'":
                        if j + 1 < n and text[j + 1] == "'":
                            buf.append("'")
                            j += 2
                            continue
                        break
                    buf.append(text[j])
                    j += 1
                toks.append(Token(TokenKind.STRING, "".join(buf), line, col))
                if not terminated:
                    i = n     # recovery: the literal ate the rest of the card
                    break
                i = j + 1
                continue
            if ch == ".":
                low = text[i:i + 8].lower()
                matched = False
                for op in DOT_OPERATORS:
                    if low.startswith(op):
                        toks.append(Token(TokenKind.OP, op, line, col))
                        i += len(op)
                        matched = True
                        break
                if matched:
                    continue
                for const in DOT_CONSTANTS:
                    if low.startswith(const):
                        toks.append(Token(TokenKind.LOGICAL, const, line, col))
                        i += len(const)
                        matched = True
                        break
                if matched:
                    continue
                if i + 1 < n and (text[i + 1].isdigit()):
                    tok, i = self._lex_number(text, i, line, col)
                    toks.append(tok)
                    continue
                self._sink.error(
                    "F005", f"unexpected '.' sequence {text[i:i+6]!r}",
                    line, col)
                i += 1    # recovery: skip the dot
                continue
            if ch.isdigit():
                tok, i = self._lex_number(text, i, line, col)
                toks.append(tok)
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                toks.append(Token(TokenKind.IDENT, text[i:j].lower(), line, col))
                i = j
                continue
            if ch == "(":
                toks.append(Token(TokenKind.LPAREN, "(", line, col))
                i += 1
                continue
            if ch == ")":
                toks.append(Token(TokenKind.RPAREN, ")", line, col))
                i += 1
                continue
            if ch == ",":
                toks.append(Token(TokenKind.COMMA, ",", line, col))
                i += 1
                continue
            if ch == ":":
                toks.append(Token(TokenKind.COLON, ":", line, col))
                i += 1
                continue
            if ch == "=":
                toks.append(Token(TokenKind.EQUALS, "=", line, col))
                i += 1
                continue
            matched = False
            for op in SYMBOL_OPERATORS:
                if text.startswith(op, i):
                    toks.append(Token(TokenKind.OP, op, line, col))
                    i += len(op)
                    matched = True
                    break
            if matched:
                continue
            self._sink.error("F001", f"unexpected character {ch!r}",
                             line, col)
            i += 1    # recovery: skip the character
        line = ll.lines[-1] if ll.lines else ll.first_line
        toks.append(Token(TokenKind.NEWLINE, "", line, 73))
        return toks

    @staticmethod
    def _lex_number(text: str, i: int, line: int, col: int) -> tuple[Token, int]:
        """Lex an integer, real, or double literal starting at ``i``."""
        n = len(text)
        j = i
        while j < n and text[j].isdigit():
            j += 1
        is_real = False
        is_double = False
        if j < n and text[j] == ".":
            # Guard: "1.eq.2" — the dot belongs to the operator, not the number.
            low = text[j:j + 8].lower()
            if not any(low.startswith(op) for op in DOT_OPERATORS):
                is_real = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
        if j < n and text[j].lower() in ("e", "d"):
            k = j + 1
            if k < n and text[k] in "+-":
                k += 1
            if k < n and text[k].isdigit():
                is_double = text[j].lower() == "d"
                is_real = is_real or not is_double
                j = k
                while j < n and text[j].isdigit():
                    j += 1
        value = text[i:j].lower()
        if is_double:
            kind = TokenKind.DOUBLE
        elif is_real:
            kind = TokenKind.REAL
        else:
            kind = TokenKind.INT
        return Token(kind, value, line, col), j


def lex_source(source: str,
               sink: Optional[DiagnosticSink] = None) -> list[Token]:
    """Convenience: lex ``source`` into a token list (ending with EOF)."""
    return Lexer(source, sink).tokens()
