"""Catalogue of the Fortran 77 intrinsic functions the front end knows.

Each entry records the Python callable used by the functional interpreter
and a nominal cost class used by the performance model ('cheap' ≈ an ALU
op, 'func' ≈ a short libm routine, 'heavy' ≈ divide/sqrt class latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Intrinsic:
    name: str
    arity: tuple[int, int]  # (min, max) argument count; max -1 = unbounded
    fn: Callable
    cost_class: str = "func"
    reduction: bool = False  # True for vector reductions (sum, dotproduct)


def _fmin(*xs):
    return min(xs)


def _fmax(*xs):
    return max(xs)


def _sign(a, b):
    mag = abs(a)
    return mag if b >= 0 else -mag


def _dim(a, b):
    return a - b if a > b else type(a)(0)


def _mod(a, b):
    # Fortran MOD truncates toward zero, unlike Python's %.
    return a - int(a / b) * b if isinstance(a, (int, np.integer)) else math.fmod(a, b)


def _nint(x):
    return int(math.floor(x + 0.5)) if x >= 0 else -int(math.floor(-x + 0.5))


INTRINSICS: dict[str, Intrinsic] = {}


def _reg(name: str, arity, fn, cost_class="func", reduction=False) -> None:
    INTRINSICS[name] = Intrinsic(name, arity, fn, cost_class, reduction)


# numeric conversion / simple
_reg("abs", (1, 1), abs, "cheap")
_reg("iabs", (1, 1), abs, "cheap")
_reg("dabs", (1, 1), abs, "cheap")
_reg("int", (1, 1), int, "cheap")
_reg("ifix", (1, 1), int, "cheap")
_reg("idint", (1, 1), int, "cheap")
_reg("float", (1, 1), float, "cheap")
_reg("real", (1, 1), float, "cheap")
_reg("dble", (1, 1), float, "cheap")
_reg("sngl", (1, 1), float, "cheap")
_reg("nint", (1, 1), _nint, "cheap")
_reg("sign", (2, 2), _sign, "cheap")
_reg("isign", (2, 2), _sign, "cheap")
_reg("dim", (2, 2), _dim, "cheap")
_reg("mod", (2, 2), _mod, "cheap")
_reg("amod", (2, 2), _mod, "cheap")
_reg("dmod", (2, 2), _mod, "cheap")
_reg("max", (2, -1), _fmax, "cheap")
_reg("max0", (2, -1), _fmax, "cheap")
_reg("amax1", (2, -1), _fmax, "cheap")
_reg("dmax1", (2, -1), _fmax, "cheap")
_reg("min", (2, -1), _fmin, "cheap")
_reg("min0", (2, -1), _fmin, "cheap")
_reg("amin1", (2, -1), _fmin, "cheap")
_reg("dmin1", (2, -1), _fmin, "cheap")

# math
_reg("sqrt", (1, 1), math.sqrt, "heavy")
_reg("dsqrt", (1, 1), math.sqrt, "heavy")
_reg("exp", (1, 1), math.exp)
_reg("dexp", (1, 1), math.exp)
_reg("log", (1, 1), math.log)
_reg("alog", (1, 1), math.log)
_reg("dlog", (1, 1), math.log)
_reg("log10", (1, 1), math.log10)
_reg("alog10", (1, 1), math.log10)
_reg("sin", (1, 1), math.sin)
_reg("dsin", (1, 1), math.sin)
_reg("cos", (1, 1), math.cos)
_reg("dcos", (1, 1), math.cos)
_reg("tan", (1, 1), math.tan)
_reg("atan", (1, 1), math.atan)
_reg("datan", (1, 1), math.atan)
_reg("atan2", (2, 2), math.atan2)
_reg("datan2", (2, 2), math.atan2)
_reg("asin", (1, 1), math.asin)
_reg("acos", (1, 1), math.acos)
_reg("sinh", (1, 1), math.sinh)
_reg("cosh", (1, 1), math.cosh)
_reg("tanh", (1, 1), math.tanh)

# Fortran 90 vector reductions accepted on restructurer input (paper §2.1)
_reg("sum", (1, 1), np.sum, "func", reduction=True)
_reg("dotproduct", (2, 2), np.dot, "func", reduction=True)
_reg("maxval", (1, 1), np.max, "func", reduction=True)
_reg("minval", (1, 1), np.min, "func", reduction=True)


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS


def intrinsic(name: str) -> Intrinsic:
    return INTRINSICS[name]
