"""DOACROSS generation with minimal synchronization (paper §3.3, §4.1.6).

A loop whose only obstacle is a small set of carried *flow* dependences can
run as an ordered parallel loop: ``await`` delays an iteration until its
predecessor has passed the synchronized region, ``advance`` releases it.
The pass computes the smallest contiguous statement region covering all
carried dependences (the Midkiff-Padua minimal-placement idea restricted to
one sync point) and brackets it.

The *synchronization delay factor* (size of the region relative to the
body, divided by processors) is exported so the planner can price the
DOACROSS against distributing the loop into serial + DOALL parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.depend.graph import Dependence, DependenceGraph
from repro.cedar.nodes import AdvanceStmt, AwaitStmt, ParallelDo
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.restructurer.costmodel import estimate_body_ops


@dataclass
class DoacrossPlan:
    """Placement decision for one DOACROSS candidate."""

    loop: F.DoLoop
    first: int                  # index of first statement in sync region
    last: int                   # index of last statement in sync region
    distance: int               # minimum carried distance (await argument)
    region_ops: float
    body_ops: float

    def delay_factor(self, processors: int) -> float:
        return (self.region_ops / max(self.body_ops, 1.0)) / processors

    def describe(self) -> str:
        """One-line human summary (used in decision-trace events)."""
        share = 100.0 * self.region_ops / max(self.body_ops, 1.0)
        return (f"sync region spans statements {self.first}..{self.last} "
                f"(distance {self.distance}, {share:.0f}% of body ops)")


def _top_level_index(loop: F.DoLoop, stmt: F.Stmt) -> Optional[int]:
    """Index of the top-level statement of ``loop.body`` containing ``stmt``."""
    for i, s in enumerate(loop.body):
        for node in s.walk():
            if node is stmt:
                return i
    return None


def plan_doacross(loop: F.DoLoop, graph: DependenceGraph,
                  ignore: set[str] = frozenset()) -> Optional[DoacrossPlan]:
    """Plan a DOACROSS for ``loop`` given its dependence graph.

    Eligible when every carried dependence (not in ``ignore``) is exact
    with positive distance; the sync region spans from the earliest sink
    to the latest source among those dependences.
    """
    carried = [d for d in graph.carried_at(0) if d.variable not in ignore]
    if not carried:
        return None  # plain DOALL, no sync needed
    first = len(loop.body)
    last = -1
    min_dist = None
    for d in carried:
        if d.distance is None or d.distance[0] <= 0:
            return None  # unknown or backward distance: cannot sync simply
        src_i = _top_level_index(loop, d.source.stmt)
        sink_i = _top_level_index(loop, d.sink.stmt)
        if src_i is None or sink_i is None:
            return None
        first = min(first, src_i, sink_i)
        last = max(last, src_i, sink_i)
        dist = d.distance[0]
        min_dist = dist if min_dist is None else min(min_dist, dist)
    region = loop.body[first:last + 1]
    return DoacrossPlan(
        loop=loop, first=first, last=last, distance=min_dist or 1,
        region_ops=estimate_body_ops(region),
        body_ops=estimate_body_ops(loop.body),
    )


def build_doacross(plan: DoacrossPlan, level: str = "C",
                   locals_: list[F.Stmt] | None = None) -> ParallelDo:
    """Materialize the ordered parallel loop with await/advance brackets."""
    loop = plan.loop
    body: list[F.Stmt] = []
    for i, s in enumerate(loop.body):
        if i == plan.first:
            body.append(AwaitStmt(point=1, distance=plan.distance))
        body.append(s)
        if i == plan.last:
            body.append(AdvanceStmt(point=1))
    order = "doacross"
    if level not in ("C", "X"):
        raise TransformError("DOACROSS loops run at C or X level")
    return ParallelDo(
        level=level, order=order, var=loop.var,
        start=loop.start, end=loop.end, step=loop.step,
        locals_=list(locals_ or []), body=body,
    )
