"""Privatization transformation (paper §3.2, §4.1.2).

Given a loop chosen to run parallel and the analysis verdicts, this pass
builds the loop-local declarations that make each processor own a private
copy of the privatized scalars and arrays, and emits last-value
assignments after the loop for variables that are live-out.

Private data lands in cluster memory on Cedar — that placement (and the
Figure 7 speed difference against globally-expanded storage) is modelled
by the machine layer; here we only produce the Cedar Fortran form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.privatization import PrivatizationResult
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable
from repro.trace.events import NULL_SINK, DecisionEvent


@dataclass
class PrivatizeOutcome:
    """Declarations and follow-up statements produced by privatization."""

    locals_: list[F.Stmt] = field(default_factory=list)
    after_loop: list[F.Stmt] = field(default_factory=list)
    privatized: list[str] = field(default_factory=list)
    declined: list[str] = field(default_factory=list)


def _decl_for(name: str, symtab: SymbolTable | None) -> F.TypeDecl:
    sym = symtab.lookup(name) if symtab else None
    if sym is not None and sym.is_array:
        dims = [F.DimSpec(b.lower.clone() if b.lower else None,
                          b.upper.clone() if b.upper else None)
                for b in sym.dims]
        ent = F.EntityDecl(name, dims)
        base = sym.type
    else:
        ent = F.EntityDecl(name)
        base = sym.type if sym else (
            "integer" if name[0] in "ijklmn" else "real")
    return F.TypeDecl(type=F.TypeSpec(base), entities=[ent])


def _last_value_assign(loop: F.DoLoop, name: str) -> F.Stmt | None:
    """Synthesize the post-loop last-value assignment for a scalar.

    Supported when the scalar has exactly one unconditional top-level
    definition ``name = rhs`` whose RHS only uses the loop index and
    loop-invariant values: the last value is ``rhs[i → end]``.
    """
    from repro.analysis.refs import written_names
    from repro.restructurer.rename import substitute_reads

    defs = [s for s in loop.body
            if isinstance(s, F.Assign) and isinstance(s.target, F.Var)
            and s.target.name == name]
    all_defs = [s for s in F.stmts_walk(loop.body)
                if isinstance(s, F.Assign) and isinstance(s.target, F.Var)
                and s.target.name == name]
    if len(defs) != 1 or len(all_defs) != 1:
        return None
    rhs = defs[0].value.clone()
    written = written_names(loop.body) - {name, loop.var}
    for n in rhs.walk():
        if isinstance(n, F.Var) and n.name in written:
            return None
    holder = F.Assign(target=F.Var(name), value=rhs)
    substitute_reads([holder], loop.var, loop.end.clone())
    return holder


def privatize_for_loop(loop: F.DoLoop,
                       results: list[PrivatizationResult],
                       symtab: SymbolTable | None = None,
                       allow_arrays: bool = True,
                       sink=NULL_SINK, unit: str = "") -> PrivatizeOutcome:
    """Turn analysis verdicts into loop-local declarations.

    Variables needing a last value get one synthesized when possible;
    otherwise they are declined (stay shared — the loop then may not be
    parallelizable on their account, which the planner rechecks).
    Each take-or-decline decision is emitted to ``sink``.
    """
    def emit(action: str, name: str, reason: str) -> None:
        sink.emit(DecisionEvent(
            kind="pass", unit=unit, technique="privatize", action=action,
            loop=f"do {loop.var}", line=loop.line,
            reason=f"{name}: {reason}" if reason else name))

    out = PrivatizeOutcome()
    for r in results:
        if not r.privatizable:
            continue
        if r.is_array and not allow_arrays:
            out.declined.append(r.name)
            emit("declined", r.name, "array privatization disabled")
            continue
        if r.needs_last_value:
            if r.is_array:
                out.declined.append(r.name)
                emit("declined", r.name,
                     "live-out array needs a last-value copy")
                continue
            lv = _last_value_assign(loop, r.name)
            if lv is None:
                out.declined.append(r.name)
                emit("declined", r.name,
                     "no synthesizable last-value assignment")
                continue
            out.after_loop.append(lv)
            emit("applied", r.name, "privatized with last-value copy-out")
        else:
            emit("applied", r.name,
                 "array made loop-private" if r.is_array
                 else "scalar made loop-private")
        out.locals_.append(_decl_for(r.name, symtab))
        out.privatized.append(r.name)
    return out
