"""Two-version loops guarded by a run-time dependence test (paper §4.1.5).

``IF (independent) <parallel version> ELSE <serial original>`` — the
predicate comes from :mod:`repro.analysis.runtime_test`.
"""

from __future__ import annotations

from repro.analysis.runtime_test import RuntimeTest
from repro.fortran import ast_nodes as F


def build_two_version(test: RuntimeTest,
                      parallel_version: list[F.Stmt],
                      serial_version: list[F.Stmt]) -> F.IfBlock:
    """The guarded two-version form."""
    return F.IfBlock(arms=[
        (test.predicate, parallel_version),
        (None, serial_version),
    ])
