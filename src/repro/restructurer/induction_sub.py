"""Induction variable substitution (paper §4.1.4).

Replaces reads of a recognized induction variable by its closed form in
the loop indices, deletes the recursive update, and emits the final-value
assignment after the loop.  This removes the cross-iteration flow
dependence that otherwise serializes the loop (OCEAN's multiplicative
GIVs, TRFD's triangular GIVs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.expr import simplify
from repro.analysis.induction import InductionVar
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.restructurer.names import NamePool
from repro.restructurer.rename import substitute_reads


@dataclass
class InductionOutcome:
    """Result of substituting the IVs of one loop."""

    before_loop: list[F.Stmt] = field(default_factory=list)
    after_loop: list[F.Stmt] = field(default_factory=list)
    substituted: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)


class _DeleteStmt(F.Transformer):
    def __init__(self, target: F.Stmt):
        self.target = target

    def visit_Assign(self, node: F.Assign):
        if node is self.target:
            return []
        return None


def _final_trip_env(loop: F.DoLoop, ivs_closed: F.Expr,
                    nest_vars: list[tuple[str, F.Expr]]) -> F.Expr:
    """Closed form evaluated at the final iteration of every nest loop.

    Substitution runs innermost-first: a triangular inner bound mentions
    the outer index (``do j = 1, i``), which the outer substitution then
    resolves.
    """
    out = ivs_closed.clone()
    holder = F.Assign(target=F.Var("__h__"), value=out)
    for var, end in reversed(nest_vars):
        substitute_reads([holder], var, end.clone())
    return simplify(holder.value)


def _reads_follow_update(loop: F.DoLoop, iv: InductionVar) -> bool:
    """True if every read of the IV occurs textually after its update
    (pre-order position), so the post-update closed form is correct for
    all of them."""
    seen_update = False
    for node in F.stmts_walk(loop.body):
        if node is iv.update:
            seen_update = True
            continue
        if isinstance(node, F.Var) and node.name == iv.name:
            if not seen_update:
                # the update's own RHS read is visited under the update
                # statement; anything else before it disqualifies
                under_update = any(n is node for n in iv.update.walk())
                if not under_update:
                    return False
    return True


def substitute_inductions(loop: F.DoLoop, ivs: list[InductionVar],
                          pool: NamePool) -> InductionOutcome:
    """Substitute each closed-form IV in ``loop`` (body mutated in place).

    For each variable ``v``:

    1. ``v0 = v`` is emitted before the loop (captures the entry value);
    2. reads of ``v`` inside the loop become the closed form (which
       references ``v0`` and the loop indices);
    3. the update statement is deleted;
    4. ``v = <closed form at final iteration>`` is emitted after the loop.
    """
    out = InductionOutcome()
    for iv in ivs:
        if iv.closed_form is None:
            out.skipped.append(iv.name)
            continue
        if not _reads_follow_update(loop, iv):
            # a read before the update would need the previous-trip closed
            # form; decline rather than substitute incorrectly
            out.skipped.append(iv.name)
            continue
        v0 = pool.fresh(iv.name + "0")
        closed = iv.closed_form.clone()
        holder = F.Assign(target=F.Var("__h__"), value=closed)
        substitute_reads([holder], iv.name + "0", F.Var(v0))
        closed = holder.value

        # nest variables that the closed form mentions, with their ends
        nest_vars: list[tuple[str, F.Expr]] = [(loop.var, loop.end)]
        for s in F.stmts_walk(loop.body):
            if isinstance(s, F.DoLoop):
                nest_vars.append((s.var, s.end))

        out.before_loop.append(
            F.Assign(target=F.Var(v0), value=F.Var(iv.name)))

        # delete the update, then substitute the remaining reads
        deleter = _DeleteStmt(iv.update)
        for i, s in enumerate(list(loop.body)):
            res = deleter.visit(s)
            if isinstance(res, list):
                loop.body[i:i + 1] = res
        substitute_reads(loop.body, iv.name, closed)

        final = _final_trip_env(loop, closed, nest_vars)
        out.after_loop.append(F.Assign(target=F.Var(iv.name), value=final))
        out.substituted.append(iv.name)
    return out
