"""User-settable restructurer options.

The defaults correspond to the paper's *automatic* configuration (the 1991
KAP-derived restructurer).  The ``aggressive()`` preset switches on every
technique the paper applied *by hand* (§4.1) — array privatization,
generalized induction variables, run-time dependence tests, array
reductions, critical sections, interprocedural analysis — which is how the
"manually improved" columns of Table 2 are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class RestructurerOptions:
    """Knobs controlling which passes run and how loops are mapped."""

    # --- capability switches (baseline ≈ 1991 KAP) ---
    scalar_privatization: bool = True
    scalar_expansion: bool = True
    basic_induction: bool = True
    simple_reductions: bool = True          # s = s + a(i), single statement
    recurrence_recognition: bool = True     # library replacement
    doacross: bool = True
    if_to_where: bool = True
    stripmining: bool = True

    # --- advanced techniques (paper §4.1, off by default = "automatic") ---
    array_privatization: bool = False       # §4.1.2
    generalized_induction: bool = False     # §4.1.4 (GIVs)
    array_reductions: bool = False          # §4.1.3 (a(j) = a(j)+..., multi-stmt)
    multi_stmt_reductions: bool = False     # §4.1.3
    runtime_dependence_test: bool = False   # §4.1.5
    critical_sections: bool = False         # §4.1.6
    interprocedural: bool = False           # §4.1.1 (MOD/REF + const prop)
    inline_expansion: bool = False          # §3.2
    loop_fusion: bool = False               # §4.2.4
    loop_interchange: bool = True
    # The 1991 system mapped a single parallel loop to XDOALL+strip (§3.2);
    # choosing a cheap single-cluster CDOALL for small loops was part of
    # the manual loop-level/hardware-level matching the paper was still
    # studying (§3.4, §4.2.4)
    cluster_mapping: bool = False

    # --- planning ---
    max_versions: int = 50                  # candidate-version cap (§3.4)
    default_trip: int = 1000                # assumed trips for unknown bounds
    default_strip: int = 32                 # default vector strip length
    default_placement: str = "cluster"      # interface data default (§3.2)

    # --- target shape (used by the planner's cost model) ---
    clusters: int = 4
    processors_per_cluster: int = 8

    def aggressive(self) -> "RestructurerOptions":
        """The paper's hand-applied technique set (Table 2 'manual')."""
        return replace(
            self,
            array_privatization=True,
            generalized_induction=True,
            array_reductions=True,
            multi_stmt_reductions=True,
            runtime_dependence_test=True,
            critical_sections=True,
            interprocedural=True,
            inline_expansion=True,
            loop_fusion=True,
            cluster_mapping=True,
        )

    @staticmethod
    def automatic() -> "RestructurerOptions":
        """The baseline automatic configuration."""
        return RestructurerOptions()

    @staticmethod
    def manual() -> "RestructurerOptions":
        """Alias for ``automatic().aggressive()``."""
        return RestructurerOptions().aggressive()
