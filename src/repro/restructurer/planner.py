"""The central coordinator: loop-nest planning (paper §3.4).

For each outermost loop nest the planner

1. runs the scalar analyses (induction substitution, reduction
   recognition, privatization) to explain away removable dependences;
2. builds the dependence graph and determines which nest levels can run
   in parallel;
3. enumerates candidate execution versions — serial, inner-vector,
   XDOALL (+stripmined vector body), SDOALL/CDOALL nests, CDOACROSS with
   synchronization, optionally behind a run-time dependence test — up to
   the user-settable cap (default 50);
4. scores each with the compile-time cost model and materializes the
   cheapest.

"We believe that as the number of alternatives increases, so does the
number of near-optimal ones" — the heuristics here are deliberately
simple, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.depend.graph import DependenceGraph, build_dependence_graph
from repro.analysis.induction import find_induction_variables
from repro.analysis.privatization import PrivatizationResult, find_privatizable
from repro.analysis.reductions import Reduction, find_reductions
from repro.analysis.runtime_test import synthesize_runtime_test
from repro.cedar.nodes import ParallelDo
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable
from repro.restructurer.costmodel import CostModel, estimate_body_ops, trip_count
from repro.restructurer.criticals import (
    build_critical_loop,
    plan_critical_section,
)
from repro.restructurer.doacross import build_doacross, plan_doacross
from repro.restructurer.induction_sub import substitute_inductions
from repro.restructurer.names import NamePool
from repro.restructurer.options import RestructurerOptions
from repro.restructurer.privatize import privatize_for_loop
from repro.restructurer.recurrence import replace_with_library
from repro.restructurer.reduction_xform import transform_reductions
from repro.restructurer.scalar_expansion import plan_expansion
from repro.restructurer.stripmine import stripmine_vectorize, vectorize_inner
from repro.restructurer.versioning import build_two_version
from repro.trace.events import NULL_SINK, DecisionEvent


@dataclass
class NestPlan:
    """What the planner decided for one loop nest."""

    original: F.DoLoop
    replacement: list[F.Stmt]
    chosen: str                        # label of the winning version
    considered: list[tuple[str, float]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: source line of the DO statement — disambiguates several nests over
    #: the same index variable in one unit
    line: Optional[int] = None
    #: variables whose loop-carried dependences the planner explained
    #: away, and how ("privatized", "reduction", "induction-substituted",
    #: "monotonic-iv") — the claims the runtime race detector validates
    discharged: dict[str, str] = field(default_factory=dict)

    @property
    def loop_id(self) -> str:
        """Human-readable nest identifier, e.g. ``"do i @ line 12"``."""
        where = f" @ line {self.line}" if self.line is not None else ""
        return f"do {self.original.var}{where}"

    @property
    def parallelized(self) -> bool:
        from repro.cedar.nodes import contains_parallelism

        return (contains_parallelism(self.replacement)
                or self.chosen.startswith("library"))

    def to_dict(self) -> dict:
        return {
            "loop": f"do {self.original.var}",
            "line": self.line,
            "chosen": self.chosen,
            "parallelized": self.parallelized,
            "considered": [{"version": v, "predicted_cycles": s}
                           for v, s in self.considered],
            "notes": list(self.notes),
            "discharged": dict(self.discharged),
        }


def _monotonic_arrays(loop: F.DoLoop, ivs) -> dict[str, str]:
    """Arrays provably written at distinct addresses every iteration.

    An array qualifies for IV ``v`` when *every* reference to it in the
    loop is 1-D with the **identical** affine subscript ``v + c`` — the
    TRFD packed-triangle pattern ``xij(k)``.  Because ``v`` is strictly
    monotonic across iterations, no two iterations touch the same cell,
    so the (non-affine after substitution) dependences on the array can
    be discharged.  Returns {array name: iv name}.
    """
    from repro.analysis.expr import linearize
    from repro.analysis.refs import LoopInfo, RefCollector

    mono_ivs = {iv.name for iv in ivs if iv.strictly_monotonic}
    if not mono_ivs:
        return {}
    rc = RefCollector()
    rc.collect(loop.body, (LoopInfo.of(loop),))
    by_name: dict[str, list] = {}
    for r in rc.refs:
        if r.subscripts:
            by_name.setdefault(r.name, []).append(r)
    out: dict[str, str] = {}
    for name, refs in by_name.items():
        forms = []
        ok = True
        for r in refs:
            if r.in_call or len(r.subscripts) != 1:
                ok = False
                break
            le = linearize(r.subscripts[0])
            if le is None:
                ok = False
                break
            ivs_used = le.variables() & mono_ivs
            if len(ivs_used) != 1 or len(le.variables()) != 1 \
                    or abs(le.coeff(next(iter(ivs_used)))) != 1:
                ok = False
                break
            forms.append((next(iter(ivs_used)), le.const, le.coeffs))
        if ok and forms and len({f for f in forms}) == 1:
            out[name] = forms[0][0]
    return out


class LoopPlanner:
    """Plans and materializes one loop nest at a time."""

    def __init__(self, options: RestructurerOptions,
                 unit: F.ProgramUnit, symtab: SymbolTable,
                 params: dict[str, int] | None = None,
                 effects: Optional[Callable] = None,
                 sink=None):
        self.opt = options
        self.unit = unit
        self.symtab = symtab
        self.params = params or {}
        self.effects = effects
        self.sink = sink if sink is not None else NULL_SINK
        self.pool = NamePool(unit)
        self.cost = CostModel(options.clusters,
                              options.processors_per_cluster,
                              options.default_trip)

    # ------------------------------------------------------------------

    def _emit(self, loop: F.DoLoop, technique: str, action: str,
              reason: str = "", cost: Optional[float] = None) -> None:
        self.sink.emit(DecisionEvent(
            kind="plan", unit=self.unit.name, technique=technique,
            action=action, loop=f"do {loop.var}", line=loop.line,
            reason=reason, predicted_cycles=cost))

    def plan(self, loop: F.DoLoop) -> NestPlan:
        notes: list[str] = []
        before: list[F.Stmt] = []
        after: list[F.Stmt] = []
        discharged: dict[str, str] = {}

        # 1. induction variables
        substituted: list[str] = []
        mono_arrays: set[str] = set()
        if self.opt.basic_induction or self.opt.generalized_induction:
            ivs = find_induction_variables(loop, self.params)
            allowed = []
            for iv in ivs:
                if iv.kind == "basic" and self.opt.basic_induction:
                    allowed.append(iv)
                elif iv.kind in ("geometric", "polynomial") \
                        and self.opt.generalized_induction:
                    allowed.append(iv)
            if allowed:
                candidates = _monotonic_arrays(loop, allowed)
                outcome = substitute_inductions(loop, allowed, self.pool)
                before.extend(outcome.before_loop)
                after.extend(outcome.after_loop)
                substituted = outcome.substituted
                mono_arrays = {a for a, iv_name in candidates.items()
                               if iv_name in substituted}
                if substituted:
                    notes.append("induction substitution: "
                                 + ", ".join(substituted))
                    self._emit(loop, "induction-substitution", "applied",
                               reason=", ".join(substituted))
                if mono_arrays:
                    notes.append("monotonic-IV arrays independent: "
                                 + ", ".join(sorted(mono_arrays)))

        # 2. library idiom replacement
        if self.opt.recurrence_recognition:
            lib = replace_with_library(loop)
            if lib is not None:
                notes.append("replaced by Cedar library call")
                self._emit(loop, "library", "accepted",
                           reason="recurrence/idiom matched a Cedar "
                                  "library routine")
                return NestPlan(loop, before + lib + after,
                                chosen="library", notes=notes,
                                line=loop.line, discharged=discharged)

        # 3. reductions
        reductions = self._allowed_reductions(loop)

        # 4. privatization
        priv = find_privatizable(
            loop, self.unit, self.symtab, self.params,
            arrays=self.opt.array_privatization)
        priv_ok = [p for p in priv if p.privatizable]
        if not self.opt.scalar_privatization:
            priv_ok = [p for p in priv_ok if p.is_array]

        # 5. dependence graph + ignorable variables.  A variable counts as
        # explained only if the privatization transform will actually take
        # it: arrays needing a last value are declined there, and scalars
        # needing one must have a synthesizable final assignment.
        from repro.restructurer.privatize import _last_value_assign

        ignorable: set[str] = set()
        for p in priv_ok:
            if p.needs_last_value:
                if p.is_array:
                    continue
                if _last_value_assign(loop, p.name) is None:
                    continue
            ignorable.add(p.name)
        graph = build_dependence_graph(loop, self.params, self.effects)
        # a "reduction" whose accumulator carries no dependence (e.g. an
        # array element indexed by the parallel loop) needs no transform:
        # treating it as one would privatize/combine whole arrays for
        # nothing
        carried_vars = graph.variables_with_carried(0)
        reductions = [r for r in reductions if r.var in carried_vars]
        self._active_reduction_vars = {r.var for r in reductions}
        ignore = (ignorable
                  | {r.var for r in reductions}
                  | set(substituted)
                  | mono_arrays)
        discharged.update({n: "privatized" for n in ignorable})
        discharged.update({r.var: "reduction" for r in reductions})
        discharged.update({n: "induction-substituted" for n in substituted})
        discharged.update({a: "monotonic-iv" for a in mono_arrays})

        outer_parallel = graph.is_parallel(0, ignore)
        if not outer_parallel:
            blockers = sorted(graph.variables_with_carried(0) - ignore)
            self._emit(loop, "xdoall", "rejected",
                       reason="loop-carried dependence on "
                              + (", ".join(blockers) if blockers
                                 else "unanalyzable references"))
        inner = self._inner_loop(loop)
        inner_parallel = (inner is not None
                          and self._inner_is_parallel(loop, inner, graph))

        # 6. enumerate and score
        versions = self._versions(loop, graph, ignore, reductions, priv_ok,
                                  outer_parallel, inner, inner_parallel)
        versions = versions[: self.opt.max_versions]
        if not versions:
            return NestPlan(loop, before + [loop] + after, chosen="serial",
                            considered=[("serial", 0.0)], notes=notes,
                            line=loop.line, discharged=discharged)
        versions.sort(key=lambda v: v[1])
        considered = [(label, score) for label, score, _ in versions]

        # 7. materialize the winner (fall back down the list on failure)
        for label, score, builder in versions:
            try:
                stmts = builder()
            except TransformError as exc:
                notes.append(f"version {label} failed: {exc}")
                self._emit(loop, label, "failed", reason=str(exc),
                           cost=score)
                continue
            self._emit(loop, label, "accepted", cost=score)
            for other, oscore in considered:
                if other != label:
                    self._emit(loop, other, "rejected",
                               reason=f"predicted {oscore:.0f} cycles vs "
                                      f"{score:.0f} for {label}",
                               cost=oscore)
            # stamp the source line onto the materialized parallel loops
            # so runtime diagnostics (race reports) can name the nest
            for node in F.stmts_walk(stmts):
                if isinstance(node, ParallelDo) and node.line is None:
                    node.line = loop.line
            return NestPlan(loop, before + stmts + after, chosen=label,
                            considered=considered, notes=notes,
                            line=loop.line, discharged=discharged)
        self._emit(loop, "serial", "accepted",
                   reason="every candidate version failed to materialize")
        return NestPlan(loop, before + [loop] + after, chosen="serial",
                        considered=considered, notes=notes, line=loop.line,
                        discharged=discharged)

    # ------------------------------------------------------------------

    def _allowed_reductions(self, loop: F.DoLoop) -> list[Reduction]:
        if not self.opt.simple_reductions:
            return []
        reds = find_reductions(loop)
        out = []
        for r in reds:
            if r.kind == "array":
                if not self.opt.array_reductions:
                    continue
                sym = self.symtab.lookup(r.var)
                if sym is None or not sym.is_array \
                        or any(b.upper is None for b in sym.dims):
                    continue  # assumed-size: cannot build the private copy
            if len(r.stmts) > 1 and not self.opt.multi_stmt_reductions:
                continue
            out.append(r)
        return out

    def _inner_loop(self, loop: F.DoLoop) -> Optional[F.DoLoop]:
        body = [s for s in loop.body if not isinstance(s, F.ContinueStmt)]
        inners = [s for s in body if isinstance(s, F.DoLoop)]
        if len(inners) == 1:
            return inners[0]
        return None

    def _inner_is_parallel(self, outer: F.DoLoop, inner: F.DoLoop,
                           outer_graph: DependenceGraph) -> bool:
        sub = build_dependence_graph(inner, self.params, self.effects)
        priv = find_privatizable(inner, self.unit, self.symtab, self.params,
                                 arrays=self.opt.array_privatization)
        ignore = {p.name for p in priv if p.privatizable}
        # reductions are NOT ignorable here: the CDOALL built for the inner
        # loop has no reduction transform, so an accumulator would race
        return sub.is_parallel(0, ignore)

    # ------------------------------------------------------------------

    def _versions(self, loop, graph, ignore, reductions, priv_ok,
                  outer_parallel, inner, inner_parallel):
        """(label, score, builder) candidates, unsorted."""
        trips = trip_count(loop, self.opt.default_trip)
        body_ops = estimate_body_ops(loop.body, self.opt.default_trip)
        out: list[tuple[str, float, Callable[[], list[F.Stmt]]]] = []

        out.append(("serial", self.cost.serial(trips, body_ops),
                    lambda: [loop]))

        if inner is not None and inner_parallel and self.opt.stripmining:
            itrips = trip_count(inner, self.opt.default_trip)
            ibody = estimate_body_ops(inner.body, self.opt.default_trip)
            per_iter = (body_ops - self.cost.serial(itrips, ibody)
                        + self.cost.vectorized(itrips, ibody))
            out.append((
                "inner-vector",
                self.cost.serial(trips, max(per_iter, 1.0)),
                lambda: [self._with_inner_vectorized(loop)],
            ))

        if outer_parallel:
            if self.opt.stripmining:
                out.append((
                    "xdoall-vector",
                    self.cost.parallel("xdoall", trips,
                                       max(0.35 * body_ops, 1.0),
                                       self.cost.total_p),
                    lambda: self._build_xdoall(loop, reductions, priv_ok,
                                               vector=True),
                ))
                # single-cluster mapping: far cheaper startup, 8 procs —
                # wins for small loops (§3.4's DOALL-activation question)
                if self.opt.cluster_mapping:
                    out.append((
                        "cdoall-vector",
                        self.cost.parallel("cdoall", trips,
                                           max(0.35 * body_ops, 1.0),
                                           self.cost.ppc),
                        lambda: self._build_xdoall(loop, reductions, priv_ok,
                                                   vector=True, level="C"),
                    ))
            out.append((
                "xdoall",
                self.cost.parallel("xdoall", trips, body_ops,
                                   self.cost.total_p),
                lambda: self._build_xdoall(loop, reductions, priv_ok,
                                           vector=False),
            ))
            if self.opt.cluster_mapping:
                out.append((
                    "cdoall",
                    self.cost.parallel("cdoall", trips, body_ops,
                                       self.cost.ppc),
                    lambda: self._build_xdoall(loop, reductions, priv_ok,
                                               vector=False, level="C"),
                ))
            if inner is not None and inner_parallel:
                itrips = trip_count(inner, self.opt.default_trip)
                ibody = estimate_body_ops(inner.body, self.opt.default_trip)
                inner_cost = self.cost.parallel(
                    "cdoall", itrips, max(0.35 * ibody, 1.0), self.cost.ppc)
                rest = max(body_ops - self.cost.serial(itrips, ibody), 0.0)
                out.append((
                    "sdoall-cdoall",
                    self.cost.parallel("sdoall", trips, rest + inner_cost,
                                       self.cost.clusters),
                    lambda: self._build_sdoall_cdoall(loop, inner,
                                                      reductions, priv_ok),
                ))
        else:
            # DOACROSS alternative for carried-but-synchronizable loops
            if self.opt.doacross and not reductions:
                plan = plan_doacross(loop, graph, ignore)
                if plan is not None:
                    score = self.cost.doacross(
                        "cdoacross", trips, body_ops,
                        plan.region_ops, self.cost.ppc)
                    self._emit(loop, "cdoacross", "noted",
                               reason=plan.describe(), cost=score)
                    out.append((
                        "cdoacross", score,
                        lambda p=plan: self._build_doacross(p, priv_ok),
                    ))
                else:
                    self._emit(loop, "cdoacross", "rejected",
                               reason="carried dependences have no exact "
                                      "positive distance to synchronize on")
            elif not self.opt.doacross:
                self._emit(loop, "cdoacross", "rejected",
                           reason="doacross disabled by options")
            else:
                self._emit(loop, "cdoacross", "rejected",
                           reason="reduction accumulators preclude a "
                                  "synchronized ordered loop")
            # run-time dependence test: two-version loop
            if self.opt.runtime_dependence_test:
                test = synthesize_runtime_test(loop, self.params)
                if test is not None:
                    par_score = self.cost.parallel(
                        "xdoall", trips, body_ops, self.cost.total_p)
                    out.append((
                        "runtime-two-version",
                        par_score * 1.1 + 10.0,
                        lambda t=test: self._build_two_version(
                            loop, t, reductions, priv_ok),
                    ))
                else:
                    self._emit(loop, "runtime-two-version", "rejected",
                               reason="no run-time dependence test "
                                      "synthesizable for the subscripts")
            # unordered critical section (§4.1.6)
            if self.opt.critical_sections:
                cplan = plan_critical_section(loop, graph, ignore)
                if cplan is not None:
                    base = self.cost.parallel("xdoall", trips, body_ops,
                                              self.cost.total_p)
                    serialized = trips * (cplan.region_ops + 60.0)
                    out.append((
                        "critical-xdoall", max(base, serialized) * 1.05,
                        lambda cp=cplan: self._build_critical(cp, priv_ok),
                    ))
                else:
                    self._emit(loop, "critical-xdoall", "rejected",
                               reason="dependences are not confined to an "
                                      "order-insensitive region")
            # inner vectorization may still apply below a serial outer
        return out

    # -- builders ----------------------------------------------------------

    def _with_inner_vectorized(self, loop: F.DoLoop) -> F.Stmt:
        inner = self._inner_loop(loop)
        assert inner is not None
        new_body: list[F.Stmt] = []
        for s in loop.body:
            if s is inner:
                new_body.extend(vectorize_inner(inner))
            else:
                new_body.append(s)
        return F.DoLoop(var=loop.var, start=loop.start, end=loop.end,
                        step=loop.step, body=new_body)

    def _build_xdoall(self, loop: F.DoLoop, reductions: list[Reduction],
                      priv: list[PrivatizationResult],
                      vector: bool, level: str = "X") -> list[F.Stmt]:
        work = loop.clone()
        active = getattr(self, "_active_reduction_vars", None)
        reds = [r for r in self._allowed_reductions(work)
                if active is None or r.var in active]
        red_out = transform_reductions(work, reds, self.pool, self.symtab,
                                       sink=self.sink, unit=self.unit.name)
        priv_out = privatize_for_loop(
            work, priv, self.symtab,
            allow_arrays=self.opt.array_privatization,
            sink=self.sink, unit=self.unit.name)
        if vector:
            if red_out.transformed:
                raise TransformError(
                    "reduction loops are not stripmine-vectorized; the "
                    "partial accumulator stays scalar per processor")
            # analyze scalars on the original loop (still in the unit tree,
            # so liveness queries see the surrounding code)
            plan = plan_expansion(loop, self.pool, self.symtab, self.unit)
            if not plan.ok:
                raise TransformError(
                    f"scalars block vectorization: {plan.blocked}")
            pdo = stripmine_vectorize(
                work, self.pool, strip=self.opt.default_strip, level=level,
                expanded_scalars=plan.mapping, scalar_types=plan.types)
        else:
            # inner library idioms (dot products, sums) still pay off per
            # task: each processor runs the vectorized library kernel on
            # its own iteration's data
            if self.opt.recurrence_recognition:
                self._replace_inner_idioms(work.body)
            # remaining parallel inner loops vectorize per task — the
            # paper's third level ("SDOALL / CDOALL / vector", Figure 9)
            if self.opt.stripmining:
                self._vectorize_inner_loops(work.body)
            pdo = ParallelDo(level=level, order="doall", var=work.var,
                             start=work.start, end=work.end, step=work.step,
                             body=work.body)
            pdo.locals_ = priv_out.locals_
        pdo.locals_ = pdo.locals_ + red_out.locals_
        pdo.preamble = red_out.preamble
        pdo.postamble = red_out.postamble
        return [pdo] + priv_out.after_loop

    def _build_sdoall_cdoall(self, loop: F.DoLoop, inner: F.DoLoop,
                             reductions: list[Reduction],
                             priv: list[PrivatizationResult]) -> list[F.Stmt]:
        if reductions:
            raise TransformError(
                "reductions are mapped to single-level XDOALL loops")
        # analyze the inner loop while it still sits in the original tree
        inner_priv_results = find_privatizable(
            inner, self.unit, self.symtab, self.params,
            arrays=self.opt.array_privatization)
        work = loop.clone()
        w_inner = self._inner_loop(work)
        assert w_inner is not None
        priv_out = privatize_for_loop(
            work, priv, self.symtab,
            allow_arrays=self.opt.array_privatization,
            sink=self.sink, unit=self.unit.name)

        # inner loop: CDOALL; with only two parallel levels the paper also
        # stripmines the innermost to generate vector statements
        try:
            cdo = stripmine_vectorize(
                w_inner, self.pool, strip=self.opt.default_strip, level="C")
        except TransformError:
            inner_priv = privatize_for_loop(
                w_inner, inner_priv_results,
                self.symtab, allow_arrays=self.opt.array_privatization,
                sink=self.sink, unit=self.unit.name)
            cdo = ParallelDo(level="C", order="doall", var=w_inner.var,
                             start=w_inner.start, end=w_inner.end,
                             step=w_inner.step, locals_=inner_priv.locals_,
                             body=w_inner.body)

        new_body: list[F.Stmt] = []
        for s in work.body:
            if s is w_inner:
                new_body.append(cdo)
            else:
                new_body.append(s)
        sdo = ParallelDo(level="S", order="doall", var=work.var,
                         start=work.start, end=work.end, step=work.step,
                         locals_=priv_out.locals_, body=new_body)
        return [sdo] + priv_out.after_loop

    def _build_doacross(self, plan, priv: list[PrivatizationResult]
                        ) -> list[F.Stmt]:
        priv_out = privatize_for_loop(
            plan.loop, priv, self.symtab,
            allow_arrays=self.opt.array_privatization,
            sink=self.sink, unit=self.unit.name)
        pdo = build_doacross(plan, level="C", locals_=priv_out.locals_)
        return [pdo] + priv_out.after_loop

    def _build_two_version(self, loop: F.DoLoop, test,
                           reductions, priv) -> list[F.Stmt]:
        parallel = self._build_xdoall(loop, reductions, priv, vector=False)
        serial = [loop.clone()]
        return [build_two_version(test, parallel, serial)]

    def _vectorize_inner_loops(self, stmts: list[F.Stmt]) -> None:
        """Vectorize eligible inner loops in place (full-range sections)."""
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if isinstance(s, F.DoLoop):
                inner_has_loop = any(isinstance(x, F.DoLoop)
                                     for x in F.stmts_walk(s.body))
                if not inner_has_loop:
                    g = build_dependence_graph(s, self.params, self.effects)
                    priv = {p.name for p in
                            find_privatizable(s, arrays=False)
                            if p.privatizable and not p.is_array}
                    if g.is_parallel(0, priv):
                        try:
                            stmts[i:i + 1] = vectorize_inner(s)
                            i += 1
                            continue
                        except TransformError:
                            pass
                self._vectorize_inner_loops(s.body)
            elif isinstance(s, F.IfBlock):
                for _, body in s.arms:
                    self._vectorize_inner_loops(body)
            i += 1

    def _replace_inner_idioms(self, stmts: list[F.Stmt]) -> None:
        """Replace library idioms among nested loops (in place)."""
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if isinstance(s, F.DoLoop):
                rep = replace_with_library(s)
                if rep is not None:
                    stmts[i:i + 1] = rep
                    i += len(rep)
                    continue
                self._replace_inner_idioms(s.body)
            elif isinstance(s, F.IfBlock):
                for _, body in s.arms:
                    self._replace_inner_idioms(body)
            i += 1

    def _build_critical(self, cplan, priv: list[PrivatizationResult]
                        ) -> list[F.Stmt]:
        priv_out = privatize_for_loop(
            cplan.loop, priv, self.symtab,
            allow_arrays=self.opt.array_privatization,
            sink=self.sink, unit=self.unit.name)
        pdo = build_critical_loop(cplan, level="X",
                                  locals_=priv_out.locals_)
        return [pdo] + priv_out.after_loop
