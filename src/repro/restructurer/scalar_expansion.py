"""Scalar expansion (paper §3.2).

In vector loops a privatizable scalar cannot stay scalar — each strip
element needs its own cell — so the scalar is expanded into a
strip-length array (``t`` → ``t(strip)``).  In concurrent (non-vector)
loops privatization is used instead; the restructurer "creates temporary
storage using a combination of privatization and scalar expansion" (§3.2).

This pass only *plans* expansion: it decides which scalars need it for a
given loop and allocates names; the actual subscript rewriting happens in
:mod:`repro.restructurer.stripmine`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.privatization import analyze_scalar
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable
from repro.restructurer.names import NamePool


@dataclass
class ExpansionPlan:
    """Scalars to expand for one vector loop."""

    mapping: dict[str, str]       # scalar name → expanded array name
    types: dict[str, str]         # scalar name → Fortran type
    blocked: list[str]            # scalars that prevent vectorization

    @property
    def ok(self) -> bool:
        return not self.blocked


def plan_expansion(loop: F.DoLoop, pool: NamePool,
                   symtab: SymbolTable | None = None,
                   unit: F.ProgramUnit | None = None) -> ExpansionPlan:
    """Decide scalar expansion for vectorizing ``loop``.

    Every scalar assigned in the body must be privatizable (def before use
    each iteration, not live out); such scalars expand.  Anything else
    blocks vectorization of this loop.
    """
    assigned: set[str] = set()
    for s in F.stmts_walk(loop.body):
        if isinstance(s, F.Assign) and isinstance(s.target, F.Var):
            assigned.add(s.target.name)
        elif isinstance(s, F.DoLoop):
            assigned.add(s.var)

    mapping: dict[str, str] = {}
    types: dict[str, str] = {}
    blocked: list[str] = []
    for name in sorted(assigned):
        if name == loop.var:
            continue
        res = analyze_scalar(loop, name, unit, symtab)
        if not res.privatizable or res.needs_last_value:
            blocked.append(name)
            continue
        # the expanded array keeps the scalar's name, declared loop-local
        # (shadowing), exactly as in the paper's §3.2 example
        mapping[name] = name
        sym = symtab.lookup(name) if symtab else None
        types[name] = sym.type if sym else (
            "integer" if name[0] in "ijklmn" else "real")
    return ExpansionPlan(mapping, types, blocked)
