"""Globalization pass (paper §3.2).

Decides the memory placement of every variable of a unit:

- variables referenced inside S- or X-level parallel loops are visible to
  processors on *different clusters* → ``GLOBAL`` (one copy in global
  memory);
- everything else defaults to ``CLUSTER`` (one copy per cluster, fast
  cluster memory + cache);
- *interface data* (COMMON blocks, dummy arguments) follows the
  user-settable default placement, since its usage may cross routine
  boundaries the compiler cannot see; explicit GLOBAL/CLUSTER declarations
  win.

The pass emits :class:`GlobalDecl`/:class:`ClusterDecl` statements at the
top of the unit's specification part and records the placement on the
symbol table for the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cedar.nodes import ClusterDecl, GlobalDecl, ParallelDo
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable
from repro.trace.events import NULL_SINK, DecisionEvent


@dataclass
class PlacementResult:
    """Placement of every variable of one unit."""

    global_names: list[str] = field(default_factory=list)
    cluster_names: list[str] = field(default_factory=list)

    def placement_of(self, name: str) -> str:
        if name in self.global_names:
            return "global"
        return "cluster"


def _names_in(stmts: list[F.Stmt]) -> set[str]:
    out: set[str] = set()
    for node in F.stmts_walk(stmts):
        if isinstance(node, (F.Var, F.ArrayRef, F.Apply)):
            out.add(node.name)
        elif isinstance(node, F.DoLoop):
            out.add(node.var)
        elif isinstance(node, ParallelDo):
            out.add(node.var)
    return out


def _local_names(loop: ParallelDo) -> set[str]:
    out: set[str] = set()
    for decl in loop.locals_:
        for node in decl.walk():
            if isinstance(node, F.EntityDecl):
                out.add(node.name)
    return out


def globalize_unit(unit: F.ProgramUnit, symtab: SymbolTable,
                   default_placement: str = "cluster",
                   sink=NULL_SINK) -> PlacementResult:
    """Run the globalization pass over a (restructured) unit.

    Mutates ``unit.specs`` (prepends the declarations) and annotates
    ``symtab`` symbol placements.
    """
    cross_cluster: set[str] = set()
    for s in F.stmts_walk(unit.body):
        if isinstance(s, ParallelDo) and s.level in ("S", "X"):
            used = _names_in(s.body) | _names_in(s.preamble) \
                | _names_in(s.postamble) | {s.var}
            for e in (s.start, s.end, s.step):
                if e is not None:
                    for n in e.walk():
                        if isinstance(n, F.Var):
                            used.add(n.name)
            used -= _local_names(s)
            cross_cluster |= used

    result = PlacementResult()
    for name, sym in sorted(symtab.symbols.items()):
        if sym.is_function or sym.is_external or sym.is_parameter:
            continue
        interface = sym.is_dummy or sym.common_block is not None
        if name in cross_cluster:
            placement = "global"
        elif interface:
            placement = default_placement
        else:
            placement = "cluster"
        sym.placement = placement
        if placement == "global":
            result.global_names.append(name)
            sink.emit(DecisionEvent(
                kind="pass", unit=unit.name, technique="globalize",
                action="applied", loop=name,
                reason="referenced inside an S/X-level parallel loop: "
                       "processors on different clusters need one copy"
                if name in cross_cluster else
                f"interface data placed {default_placement} by option"))
        else:
            result.cluster_names.append(name)

    if result.global_names:
        unit.specs.append(GlobalDecl(names=list(result.global_names)))
    if result.cluster_names:
        unit.specs.append(ClusterDecl(names=list(result.cluster_names)))
    return result
