"""Stripmining and vectorization (paper §3.2).

``stripmine_vectorize`` rewrites a parallel loop into the paper's canonical
Cedar form — an XDOALL over strips whose body is vector (array-section)
statements::

    do i = 1, n                 XDOALL i = 1, n, strip
       a(i) = b(i)        →        integer i3, upper
    end do                         i3 = min(strip, n - i + 1)
                                   upper = i + i3 - 1
                                   a(i:upper) = b(i:upper)
                                END XDOALL

``vectorize_inner`` rewrites a whole innermost parallel loop into
full-range vector statements (used inside CDOALL bodies, where the Alliant
vector unit takes the complete range).

Scalars assigned inside a strip are *expanded* (the paper's ``t`` →
``t(strip)`` example in §3.2): callers obtain the mapping from
:mod:`repro.restructurer.scalar_expansion` and pass it in.

IF statements vectorize into WHERE (paper's IF-to-WHERE conversion).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.expr import linearize, simplify
from repro.cedar.nodes import ParallelDo, WhereStmt
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.restructurer.names import NamePool

#: Builds the section ``lo:hi`` replacing an occurrence of the loop index.
SectionBuilder = Callable[[F.Expr], Optional[F.Expr]]


def _make_section_builder(var: str, lo_ast: F.Expr, hi_ast: F.Expr) -> SectionBuilder:
    """Section builder mapping a subscript affine in ``var`` (coefficient 1)
    to ``subscript[var→lo] : subscript[var→hi]``."""
    lo_lin = linearize(lo_ast)
    hi_lin = linearize(hi_ast)

    def build(sub: F.Expr) -> Optional[F.Expr]:
        le = linearize(sub)
        if le is None:
            return None
        c = le.coeff(var)
        if c == 0:
            return sub  # strip-invariant subscript stays scalar
        if c != 1:
            return None  # non-unit stride sections are not generated
        rest = le - type(le).variable(var)
        if lo_lin is not None:
            lo = simplify((lo_lin + rest).to_ast())
        else:
            lo = simplify(F.BinOp("+", lo_ast.clone(), rest.to_ast()))
        if hi_lin is not None:
            hi = simplify((hi_lin + rest).to_ast())
        else:
            hi = simplify(F.BinOp("+", hi_ast.clone(), rest.to_ast()))
        return F.RangeExpr(lo, hi, None)

    return build


class VectorizeRewriter:
    """Rewrites loop-body statements into vector (section) form."""

    def __init__(self, var: str, section: SectionBuilder,
                 index_section: F.RangeExpr,
                 expanded: dict[str, str],
                 expanded_section: Optional[F.RangeExpr]):
        self.var = var
        self.section = section
        self.index_section = index_section
        self.expanded = expanded
        self.expanded_section = expanded_section

    # -- statements ---------------------------------------------------------

    def stmt(self, s: F.Stmt) -> F.Stmt:
        if isinstance(s, F.Assign):
            if isinstance(s.target, F.Var) and s.target.name not in self.expanded \
                    and self.invariant_scalar_assign(s):
                return s
            return F.Assign(target=self._target(s.target),
                            value=self._expr(s.value))
        if isinstance(s, F.LogicalIf):
            mask = self._expr(s.cond)
            inner = self.stmt(s.stmt)
            if not isinstance(inner, F.Assign):
                raise TransformError("cannot vectorize non-assignment under IF")
            return WhereStmt(mask=mask, body=[inner])
        if isinstance(s, F.IfBlock):
            if len(s.arms) > 2 or (len(s.arms) == 2 and s.arms[1][0] is not None):
                raise TransformError("cannot vectorize multi-arm IF")
            mask = self._expr(s.arms[0][0])
            body = [self.stmt(x) for x in s.arms[0][1]]
            elsewhere = ([self.stmt(x) for x in s.arms[1][1]]
                         if len(s.arms) == 2 else [])
            return WhereStmt(mask=mask, body=body, elsewhere=elsewhere)
        if isinstance(s, F.ContinueStmt):
            return s
        raise TransformError(f"cannot vectorize statement {type(s).__name__}")

    def _target(self, t: F.Expr) -> F.Expr:
        if isinstance(t, F.Var):
            if t.name in self.expanded and self.expanded_section is not None:
                return F.ArrayRef(self.expanded[t.name],
                                  [self.expanded_section.clone()])
            raise TransformError(
                f"scalar {t.name!r} assigned in vector loop but not expanded")
        return self._expr(t)

    def invariant_scalar_assign(self, s: F.Stmt) -> bool:
        """A scalar assignment whose RHS is free of the loop index can stay
        scalar in the vector body: it computes the same value for every
        element, so executing it once is equivalent."""
        if not (isinstance(s, F.Assign) and isinstance(s.target, F.Var)):
            return False
        for n in s.value.walk():
            if isinstance(n, F.Var) and n.name == self.var:
                return False
            if isinstance(n, F.Var) and n.name == s.target.name:
                return False
        return True

    # -- expressions --------------------------------------------------------

    def _expr(self, e: F.Expr) -> F.Expr:
        if isinstance(e, F.Var):
            if e.name == self.var:
                # the loop index as a *value* would need an iota vector,
                # which Cedar Fortran sections cannot express
                raise TransformError(
                    f"loop index {e.name!r} used as a value in vector body")
            if e.name in self.expanded and self.expanded_section is not None:
                return F.ArrayRef(self.expanded[e.name],
                                  [self.expanded_section.clone()])
            return e
        if isinstance(e, F.ArrayRef):
            subs = []
            for sub in e.subscripts:
                sec = self.section(sub)
                if sec is None:
                    raise TransformError(
                        f"non-vectorizable subscript of {e.name}")
                subs.append(sec)
            return F.ArrayRef(e.name, subs)
        if isinstance(e, F.BinOp):
            return F.BinOp(e.op, self._expr(e.left), self._expr(e.right))
        if isinstance(e, F.UnOp):
            return F.UnOp(e.op, self._expr(e.operand))
        if isinstance(e, F.FuncCall):
            return F.FuncCall(e.name, [self._expr(a) for a in e.args],
                              intrinsic=e.intrinsic)
        if isinstance(e, (F.IntLit, F.RealLit, F.LogicalLit, F.StrLit)):
            return e
        raise TransformError(f"cannot vectorize expression {type(e).__name__}")


def stripmine_vectorize(loop: F.DoLoop, pool: NamePool,
                        strip: int = 32,
                        level: str = "X",
                        expanded_scalars: dict[str, str] | None = None,
                        scalar_types: dict[str, str] | None = None,
                        ) -> ParallelDo:
    """Build the stripmined, vectorized parallel form of ``loop``.

    ``expanded_scalars`` maps privatized scalar names to their expanded
    array names; ``scalar_types`` supplies their Fortran types for the
    loop-local declarations.
    """
    if loop.step is not None and not F.is_const_int(loop.step, 1):
        raise TransformError("cannot stripmine a non-unit-stride loop")
    expanded = dict(expanded_scalars or {})
    types = dict(scalar_types or {})

    var = loop.var
    i3 = pool.fresh("i3")
    upper = pool.fresh("upper")
    strip_lit = F.IntLit(strip)

    count_rhs = F.FuncCall("min", [
        strip_lit,
        F.BinOp("+", F.BinOp("-", loop.end, F.Var(var)), F.IntLit(1)),
    ], intrinsic=True)
    prologue: list[F.Stmt] = [
        F.Assign(target=F.Var(i3), value=count_rhs),
        F.Assign(target=F.Var(upper),
                 value=F.BinOp("-", F.BinOp("+", F.Var(var), F.Var(i3)),
                               F.IntLit(1))),
    ]

    section = _make_section_builder(var, F.Var(var), F.Var(upper))
    rewriter = VectorizeRewriter(
        var, section,
        index_section=F.RangeExpr(F.Var(var), F.Var(upper), None),
        expanded=expanded,
        expanded_section=F.RangeExpr(F.IntLit(1), F.Var(i3), None),
    )
    body = prologue + [rewriter.stmt(s) for s in loop.body]

    locals_: list[F.Stmt] = [
        F.TypeDecl(type=F.TypeSpec("integer"),
                   entities=[F.EntityDecl(i3), F.EntityDecl(upper)]),
    ]
    for scalar, arr in expanded.items():
        t = types.get(scalar, "real")
        locals_.append(F.TypeDecl(
            type=F.TypeSpec(t),
            entities=[F.EntityDecl(arr, [F.DimSpec(None, strip_lit)])]))

    return ParallelDo(
        level=level, order="doall", var=var,
        start=loop.start, end=loop.end, step=strip_lit,
        locals_=locals_, body=body,
    )


def vectorize_inner(loop: F.DoLoop) -> list[F.Stmt]:
    """Rewrite a whole innermost parallel loop as full-range vector
    statements (used inside C-level loop bodies).

    Scalars assigned inside the loop are not supported here — expand or
    privatize them first.
    """
    if loop.step is not None and not F.is_const_int(loop.step, 1):
        raise TransformError("cannot vectorize a non-unit-stride loop")
    section = _make_section_builder(loop.var, loop.start, loop.end)
    rewriter = VectorizeRewriter(
        loop.var, section,
        index_section=F.RangeExpr(loop.start, loop.end, None),
        expanded={}, expanded_section=None,
    )
    return [rewriter.stmt(s) for s in loop.body]
