"""The Cedar restructurer: fortran77 → Cedar Fortran (paper §3).

The pipeline mirrors the paper's KAP-derived pass structure:

1. interprocedural summaries + optional inline expansion (§4.1.1, §3.2);
2. per-nest scalar analyses — induction variables (incl. GIVs, §4.1.4),
   reductions (§3.3, §4.1.3), scalar & array privatization (§3.2, §4.1.2);
3. dependence testing (§3) and run-time test synthesis (§4.1.5);
4. the planner: enumerate loop-nest execution alternatives (which level
   runs as SDOALL/CDOALL/XDOALL/DOACROSS, stripmining, interchange),
   score them with the machine cost model, keep the best of at most
   ``max_versions`` candidates (§3.4);
5. transformation passes that realize the chosen plan;
6. globalization: GLOBAL/CLUSTER placement of every variable (§3.2).

Entry point: :class:`repro.restructurer.pipeline.Restructurer`.
"""

from repro.restructurer.options import RestructurerOptions
from repro.restructurer.pipeline import Restructurer, RestructureReport

__all__ = ["RestructurerOptions", "Restructurer", "RestructureReport"]
