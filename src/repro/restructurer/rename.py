"""Variable renaming and substitution over statement subtrees."""

from __future__ import annotations

from typing import Mapping

from repro.fortran import ast_nodes as F


class RenameVars(F.Transformer):
    """Renames variable/array names per a mapping (in place)."""

    def __init__(self, mapping: Mapping[str, str]):
        self.mapping = dict(mapping)

    def visit_Var(self, node: F.Var):
        if node.name in self.mapping:
            return F.Var(self.mapping[node.name])
        return node

    def visit_ArrayRef(self, node: F.ArrayRef):
        subs = [self._sub(s) for s in node.subscripts]
        name = self.mapping.get(node.name, node.name)
        return F.ArrayRef(name, subs)

    def visit_Apply(self, node: F.Apply):
        args = [self._sub(a) for a in node.args]
        name = self.mapping.get(node.name, node.name)
        return F.Apply(name, args)

    def visit_DoLoop(self, node: F.DoLoop):
        node.var = self.mapping.get(node.var, node.var)
        return self.generic_transform(node)

    def visit_ParallelDo(self, node):
        node.var = self.mapping.get(node.var, node.var)
        return self.generic_transform(node)

    def visit_EntityDecl(self, node: F.EntityDecl):
        node.name = self.mapping.get(node.name, node.name)
        return self.generic_transform(node)

    def _sub(self, e: F.Expr) -> F.Expr:
        out = self.visit(e)
        assert isinstance(out, F.Expr)
        return out


def rename_in_stmts(stmts: list[F.Stmt], mapping: Mapping[str, str]) -> list[F.Stmt]:
    """Rename names throughout ``stmts`` (returns the same, mutated, list)."""
    r = RenameVars(mapping)
    for i, s in enumerate(stmts):
        out = r.visit(s)
        if isinstance(out, list):  # pragma: no cover - renames never splice
            raise TypeError("rename produced a statement list")
        stmts[i] = out
    return stmts


class SubstituteVar(F.Transformer):
    """Replaces reads of one scalar variable by an expression."""

    def __init__(self, name: str, replacement: F.Expr):
        self.name = name
        self.replacement = replacement

    def visit_Var(self, node: F.Var):
        if node.name == self.name:
            return self.replacement.clone()
        return node

    def visit_Assign(self, node: F.Assign):
        # do not substitute into the assignment target when it is the var
        value = self.visit(node.value)
        assert isinstance(value, F.Expr)
        node.value = value
        if isinstance(node.target, (F.ArrayRef, F.Apply)):
            target = self.visit(node.target)
            assert isinstance(target, F.Expr)
            node.target = target
        return node


def substitute_reads(stmts: list[F.Stmt], name: str,
                     replacement: F.Expr) -> list[F.Stmt]:
    """Replace every *read* of scalar ``name`` in ``stmts`` (mutating)."""
    t = SubstituteVar(name, replacement)
    for i, s in enumerate(stmts):
        out = t.visit(s)
        if isinstance(out, list):  # pragma: no cover
            raise TypeError("substitution produced a statement list")
        stmts[i] = out
    return stmts
