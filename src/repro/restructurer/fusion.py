"""Loop fusion (paper §4.2.4, Figure 9).

Fusing adjacent parallel loops with identical headers builds the large
concurrent loops Cedar needs — a single SDOALL start instead of many,
which is the 2× gain of Figure 9.  Legality: for each pair of fused
bodies, no *fusion-preventing* dependence — a dependence from an earlier
loop's iteration i to a later loop's iteration j < i would be reversed by
fusion.

The pass also implements the paper's trick for FLO52: replicating the
loop-invariant code that sits *between* two outer loops into the fused
body (adding redundant computation) so the whole region becomes one
parallel loop.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis.depend.graph import build_dependence_graph
from repro.analysis.expr import exprs_equal
from repro.analysis.refs import written_names
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.restructurer.rename import rename_in_stmts
from repro.trace.events import NULL_SINK, DecisionEvent


def same_header(a: F.DoLoop, b: F.DoLoop,
                params: Mapping[str, int] | None = None) -> bool:
    """Identical iteration spaces (index names may differ)."""
    step_a = a.step if a.step is not None else F.IntLit(1)
    step_b = b.step if b.step is not None else F.IntLit(1)
    return (exprs_equal(a.start, b.start, params)
            and exprs_equal(a.end, b.end, params)
            and exprs_equal(step_a, step_b, params))


def fusion_legal(a: F.DoLoop, b: F.DoLoop,
                 params: Mapping[str, int] | None = None,
                 ignore: frozenset[str] | set[str] = frozenset()) -> bool:
    """Can ``a`` and ``b`` (adjacent, same header) be fused?

    We fuse the bodies into a probe loop and check that no dependence from
    a ``b``-statement to an ``a``-statement is carried (backward across
    the fusion seam), and no loop-independent dependence from ``b`` to
    ``a`` exists.
    """
    if not same_header(a, b, params):
        return False
    body_b = [s.clone() for s in b.body]
    if b.var != a.var:
        rename_in_stmts(body_b, {b.var: a.var})
    probe = F.DoLoop(var=a.var, start=a.start, end=a.end, step=a.step,
                     body=[s.clone() for s in a.body] + body_b)
    a_stmts = set()
    for i, s in enumerate(probe.body):
        if i < len(a.body):
            for node in s.walk():
                a_stmts.add(id(node))
    g = build_dependence_graph(probe, params=params)
    for d in g.deps:
        if d.variable in ignore:
            continue  # replicated loop-invariant scalars: benign by design
        src_in_a = id(d.source.stmt) in a_stmts
        sink_in_a = id(d.sink.stmt) in a_stmts
        if src_in_a == sink_in_a:
            continue  # within one original loop: unchanged by fusion
        if not src_in_a and sink_in_a:
            # dependence b → a: fusion would reverse it
            return False
        # a → b dependence: legal unless it becomes backward-carried,
        # i.e. some direction vector has '>' in the fused loop position
        if any(dv and dv[0] == ">" for dv in d.directions):
            return False
    return True


def fuse(a: F.DoLoop, b: F.DoLoop) -> F.DoLoop:
    """Fuse ``b`` into ``a`` (headers must match; returns the fused loop)."""
    body_b = [s.clone() for s in b.body]
    if b.var != a.var:
        rename_in_stmts(body_b, {b.var: a.var})
    return F.DoLoop(var=a.var, start=a.start, end=a.end, step=a.step,
                    body=list(a.body) + body_b, line=a.line)


def fuse_everywhere(stmts: list[F.Stmt],
                    params: Mapping[str, int] | None = None,
                    replicate_between: bool = True,
                    sink=NULL_SINK, unit: str = "") -> int:
    """Apply :func:`fuse_adjacent_in` to this list and every nested body."""
    count = fuse_adjacent_in(stmts, params, replicate_between, sink, unit)
    for s in stmts:
        if isinstance(s, F.DoLoop):
            count += fuse_everywhere(s.body, params, replicate_between,
                                     sink, unit)
        elif isinstance(s, F.IfBlock):
            for _, body in s.arms:
                count += fuse_everywhere(body, params, replicate_between,
                                         sink, unit)
    return count


def fuse_adjacent_in(stmts: list[F.Stmt],
                     params: Mapping[str, int] | None = None,
                     replicate_between: bool = True,
                     sink=NULL_SINK, unit: str = "") -> int:
    """Fuse runs of adjacent fusable loops in a statement list (in place).

    With ``replicate_between``, loop-invariant straight-line code between
    two fusable loops is *replicated into* the fused loop body when it
    neither reads anything the first loop writes nor writes anything
    either loop touches — the paper's FLO52 replication trick (the code
    then executes redundantly on every cluster).  Returns the number of
    fusions performed.
    """
    fused = 0
    i = 0
    while i < len(stmts):
        a = stmts[i]
        if not isinstance(a, F.DoLoop):
            i += 1
            continue
        j = i + 1
        between: list[F.Stmt] = []
        while j < len(stmts):
            s = stmts[j]
            if isinstance(s, F.DoLoop):
                break
            if replicate_between and isinstance(s, F.Assign) \
                    and isinstance(s.target, F.Var):
                between.append(s)
                j += 1
                continue
            break
        if j >= len(stmts) or not isinstance(stmts[j], F.DoLoop):
            i += 1
            continue
        b = stmts[j]
        if between and not _replicable(between, a, b):
            i += 1
            continue
        probe_a = a
        replicated: set[str] = set()
        if between:
            probe_a = F.DoLoop(var=a.var, start=a.start, end=a.end,
                               step=a.step, body=list(a.body) + [
                                   s.clone() for s in between],
                               line=a.line)
            replicated = {s.target.name for s in between
                          if isinstance(s.target, F.Var)}
        if not fusion_legal(probe_a, b, params, ignore=replicated):
            i += 1
            continue
        # profitability: never fuse a parallelizable loop into a serial
        # one — the merged loop would inherit the serialization (QCD's
        # RNG loop must not swallow the measurement loop)
        merged = fuse(probe_a, b)
        if (_parallelish(a, params) or _parallelish(b, params)) \
                and not _parallelish(merged, params):
            sink.emit(DecisionEvent(
                kind="pass", unit=unit, technique="fusion", action="declined",
                loop=f"do {a.var}", line=a.line,
                reason=f"fusing do {b.var} @ line {b.line} would serialize "
                       f"a parallelizable loop"))
            i += 1
            continue
        why = f"fused with do {b.var} @ line {b.line}"
        if between:
            why += (f", replicating {len(between)} loop-invariant "
                    f"statement(s) between them")
        sink.emit(DecisionEvent(
            kind="pass", unit=unit, technique="fusion", action="applied",
            loop=f"do {a.var}", line=a.line, reason=why))
        stmts[i:j + 1] = [merged]
        fused += 1
        # stay at i: the merged loop may fuse with the next one too
    return fused


def _parallelish(loop: F.DoLoop,
                 params: Mapping[str, int] | None = None) -> bool:
    """Cheap parallelizability probe: carried deps modulo privatizable
    scalars/arrays and recognized reductions."""
    from repro.analysis.privatization import find_privatizable
    from repro.analysis.reductions import reduction_variables

    g = build_dependence_graph(loop, params=params)
    ignore = {p.name for p in find_privatizable(loop, arrays=True)
              if p.privatizable}
    ignore |= reduction_variables(loop)
    return g.is_parallel(0, ignore)


def _replicable(between: list[F.Stmt], a: F.DoLoop, b: F.DoLoop) -> bool:
    """Safe to replicate ``between`` into every iteration?

    The statements must be scalar assignments whose targets are not read
    or written by either loop body (they become redundant recomputation),
    and whose RHS reads nothing the first loop writes.
    """
    from repro.analysis.refs import read_names

    a_written = written_names(a.body)
    b_written = written_names(b.body)
    a_read = read_names(a.body)
    b_read = read_names(b.body)
    produced: set[str] = set()
    for s in between:
        assert isinstance(s.target, F.Var)
        t = s.target.name
        if t in a_written | b_written | a_read:
            return False
        for n in s.value.walk():
            name = None
            if isinstance(n, (F.Var, F.ArrayRef, F.Apply, F.FuncCall)):
                name = n.name
            if name is not None and name in (a_written - produced):
                return False
        produced.add(t)
    # targets may be read by the second loop — that is the point — but the
    # values must then be iteration-invariant: require RHS free of both
    # loop indices
    for s in between:
        for n in s.value.walk():
            if isinstance(n, F.Var) and n.name in (a.var, b.var):
                return False
    return True
