"""The fortran77 → Cedar Fortran restructuring pipeline (paper Figure 2).

:class:`Restructurer` drives the whole translation:

1. parse-level preparation: symbol tables, PARAMETER constants, optional
   interprocedural summaries and inline expansion;
2. per-unit, per-nest planning and transformation (the
   :class:`LoopPlanner`), optionally preceded by loop fusion;
3. globalization (GLOBAL/CLUSTER placement).

The :class:`RestructureReport` records, per unit and loop, which version
won, what the analyses found, and why loops stayed serial — the raw
material of the paper's hand-analysis methodology (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.expr import const_value
from repro.analysis.interproc.summaries import effects_oracle, summarize_source_file
from repro.cedar.nodes import ParallelDo
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable, build_symbol_table
from repro.restructurer.fusion import fuse_everywhere
from repro.restructurer.globalize import PlacementResult, globalize_unit
from repro.restructurer.inline import inline_calls
from repro.restructurer.options import RestructurerOptions
from repro.restructurer.planner import LoopPlanner, NestPlan
from repro.trace.events import DecisionEvent, TeeSink, TraceRecorder

#: The canonical, ordered list of restructurer passes: (stage label,
#: option fields that enable it).  Stage order follows the pipeline —
#: interprocedural preparation, then per-nest scalar analyses, then the
#: version builders.  ``repro.validate`` bisects over prefixes of this
#: list to name the pass that introduced an output divergence; keep new
#: passes registered here when adding option switches.
PASS_STAGES: list[tuple[str, tuple[str, ...]]] = [
    ("inline-expansion", ("inline_expansion",)),
    ("interprocedural", ("interprocedural",)),
    ("loop-fusion", ("loop_fusion",)),
    ("induction-substitution", ("basic_induction",)),
    ("generalized-induction", ("generalized_induction",)),
    ("recurrence-recognition", ("recurrence_recognition",)),
    ("reduction-recognition", ("simple_reductions",)),
    ("array-reductions", ("array_reductions", "multi_stmt_reductions")),
    ("scalar-privatization", ("scalar_privatization",)),
    ("array-privatization", ("array_privatization",)),
    ("scalar-expansion", ("scalar_expansion",)),
    ("stripmine-vectorize", ("stripmining",)),
    ("if-to-where", ("if_to_where",)),
    ("loop-interchange", ("loop_interchange",)),
    ("doacross", ("doacross",)),
    ("runtime-test", ("runtime_dependence_test",)),
    ("critical-sections", ("critical_sections",)),
    ("cluster-mapping", ("cluster_mapping",)),
]


def stages_for(options: RestructurerOptions) -> list[str]:
    """The ``PASS_STAGES`` labels enabled by an options object."""
    return [label for label, fields in PASS_STAGES
            if all(getattr(options, f) for f in fields)]


@dataclass
class UnitReport:
    """Restructuring outcome of one program unit."""

    name: str
    plans: list[NestPlan] = field(default_factory=list)
    fused_loops: int = 0
    inlined_calls: int = 0
    placement: Optional[PlacementResult] = None

    @property
    def parallelized_loops(self) -> int:
        return sum(1 for p in self.plans if p.parallelized)

    @property
    def total_loops(self) -> int:
        return len(self.plans)

    def to_dict(self) -> dict:
        return {
            "unit": self.name,
            "parallelized_loops": self.parallelized_loops,
            "total_loops": self.total_loops,
            "fused_loops": self.fused_loops,
            "inlined_calls": self.inlined_calls,
            "global_names": list(self.placement.global_names)
            if self.placement else [],
            "plans": [p.to_dict() for p in self.plans],
        }


@dataclass
class RestructureReport:
    """Whole-translation report."""

    units: dict[str, UnitReport] = field(default_factory=dict)
    #: every pass/planner decision, in emission order (the trace)
    events: list[DecisionEvent] = field(default_factory=list)

    def summary(self) -> str:
        lines = []
        for name, u in self.units.items():
            lines.append(f"{name}: {u.parallelized_loops}/{u.total_loops} "
                         f"loop nests parallelized"
                         + (f", {u.fused_loops} fused" if u.fused_loops else "")
                         + (f", {u.inlined_calls} calls inlined"
                            if u.inlined_calls else ""))
            for p in u.plans:
                lines.append(f"  {p.loop_id} -> {p.chosen}")
        return "\n".join(lines)

    def events_for(self, unit: str) -> list[DecisionEvent]:
        return [e for e in self.events if e.unit == unit]

    def rejections(self) -> list[DecisionEvent]:
        return [e for e in self.events
                if e.action in ("rejected", "declined", "failed")]

    def to_dict(self) -> dict:
        return {
            "units": {name: u.to_dict() for name, u in self.units.items()},
            "decisions": [e.to_dict() for e in self.events],
        }


class Restructurer:
    """Drives fortran77 → Cedar Fortran translation of a source file."""

    def __init__(self, options: RestructurerOptions | None = None,
                 trace=None):
        """``trace`` is an optional extra sink (any object with an
        ``emit(event)`` method) that sees every decision event live; the
        full trace always lands on ``RestructureReport.events``."""
        self.opt = options or RestructurerOptions()
        self._user_sink = trace

    def run(self, sf: F.SourceFile) -> tuple[F.SourceFile, RestructureReport]:
        """Restructure every unit of ``sf`` (the tree is transformed in
        place and also returned, with Cedar nodes spliced in)."""
        report = RestructureReport()
        self._recorder = TraceRecorder()
        self._sink = TeeSink(self._recorder, self._user_sink)

        effects = None
        if self.opt.interprocedural:
            summaries = summarize_source_file(sf)
            effects = effects_oracle(summaries)

        # inline expansion must see the *original* callees: units are
        # restructured in file order, and inlining an already-transformed
        # callee would splice Cedar nodes into a pre-translation tree
        pristine = F.SourceFile([u.clone() for u in sf.units]) \
            if self.opt.inline_expansion else sf

        for unit in sf.units:
            report.units[unit.name] = self._run_unit(unit, pristine, effects)
        report.events = list(self._recorder.events)
        return sf, report

    # ------------------------------------------------------------------

    def _run_unit(self, unit: F.ProgramUnit, sf: F.SourceFile,
                  effects) -> UnitReport:
        ur = UnitReport(unit.name)

        if self.opt.inline_expansion:
            res = inline_calls(unit, sf, sink=self._sink)
            ur.inlined_calls = res.expanded

        symtab = build_symbol_table(unit)
        params = self._parameter_values(symtab)

        if self.opt.loop_fusion:
            ur.fused_loops = fuse_everywhere(unit.body, params,
                                             sink=self._sink, unit=unit.name)

        planner = LoopPlanner(self.opt, unit, symtab, params, effects,
                              sink=self._sink)
        self._plan_region(unit.body, planner, ur)

        ur.placement = globalize_unit(unit, symtab,
                                      self.opt.default_placement,
                                      sink=self._sink)
        return ur

    def _plan_region(self, stmts: list[F.Stmt], planner: LoopPlanner,
                     ur: UnitReport) -> None:
        """Plan every outermost loop in a statement region (in place).

        Loops the planner leaves serial are descended into, so the nests
        inside a sequential time/convergence loop still parallelize —
        startup costs then recur per outer iteration, as on the machine.
        """
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if isinstance(s, F.DoLoop):
                plan = planner.plan(s)
                ur.plans.append(plan)
                stmts[i:i + 1] = plan.replacement
                for r in plan.replacement:
                    if isinstance(r, F.DoLoop) and not isinstance(r, ParallelDo):
                        self._plan_region(r.body, planner, ur)
                i += len(plan.replacement)
                continue
            if isinstance(s, F.IfBlock):
                for _, body in s.arms:
                    self._plan_region(body, planner, ur)
            i += 1

    @staticmethod
    def _parameter_values(symtab: SymbolTable) -> dict[str, int]:
        out: dict[str, int] = {}
        for name, sym in symtab.symbols.items():
            if sym.is_parameter and sym.param_value is not None:
                v = const_value(sym.param_value)
                if isinstance(v, (int, bool)):
                    out[name] = int(v)
        return out
