"""Recurrence and reduction *library replacement* (paper §3.3).

Loops that are nothing but a known recurrence/reduction idiom are replaced
by calls into the Cedar-optimized library: dot products, sums, min/max
searches, and first-order linear recurrences.  The paper reports the
parallel dot product halving Conjugate Gradient's run time.

Recognized whole-loop idioms (body must consist of the idiom alone):

- ``s = s + a(i) * b(i)``        → ``s = s + ces_dotproduct(a(l:u), b(l:u))``
- ``s = s + a(i)``               → ``s = s + ces_sum(a(l:u))``
- ``s = min(s, a(i))`` (or max)  → ``s = min(s, ces_minval(a(l:u)))``
- ``x(i) = x(i-1) * b(i) + c(i)`` → ``call ces_linrec(x(l:u), b(l:u), c(l:u))``
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.expr import exprs_equal, linearize
from repro.fortran import ast_nodes as F


def _indexed_ref(e: F.Expr, idx: str, offset: int = 0
                 ) -> Optional[tuple[str, list[F.Expr], int]]:
    """Match a reference with exactly one dimension equal to ``idx+offset``
    and every other dimension loop-invariant.

    Returns (array name, subscripts, position of the indexed dimension).
    Multi-dimensional accesses like ``a(i, j)`` (j the loop index) match —
    their replacement streams one row/column as a section.
    """
    if not isinstance(e, (F.ArrayRef, F.Apply)):
        return None
    subs = e.subscripts if isinstance(e, F.ArrayRef) else e.args
    pos = -1
    for d, s in enumerate(subs):
        if isinstance(s, F.RangeExpr):
            return None
        le = linearize(s)
        if le is None:
            return None
        if le.coeff(idx) != 0:
            if le.coeff(idx) != 1 or le.variables() != {idx} \
                    or le.const != offset or pos >= 0:
                return None
            pos = d
    if pos < 0:
        return None
    return e.name, list(subs), pos


def _plain_ref(e: F.Expr, idx: str, offset: int = 0) -> Optional[str]:
    """Match ``name(..., idx + offset, ...)``; returns the array name."""
    got = _indexed_ref(e, idx, offset)
    return got[0] if got is not None else None


def _section_of(ref: tuple[str, list[F.Expr], int],
                loop: F.DoLoop) -> F.ArrayRef:
    """Section covering the loop range in the indexed dimension."""
    name, subs, pos = ref
    out = [s.clone() for s in subs]
    out[pos] = F.RangeExpr(loop.start.clone(), loop.end.clone(), None)
    return F.ArrayRef(name, out)


def _section(name: str, loop: F.DoLoop) -> F.ArrayRef:
    return F.ArrayRef(name, [F.RangeExpr(loop.start.clone(),
                                         loop.end.clone(), None)])


def _single_stmt(loop: F.DoLoop) -> Optional[F.Stmt]:
    body = [s for s in loop.body if not isinstance(s, F.ContinueStmt)]
    if len(body) != 1:
        return None
    return body[0]


def replace_with_library(loop: F.DoLoop) -> Optional[list[F.Stmt]]:
    """If the loop is a recognized idiom, return its replacement statements.

    Returns None when the loop is not a pure library idiom.
    """
    if loop.step is not None and not F.is_const_int(loop.step, 1):
        return None
    s = _single_stmt(loop)
    if s is None or not isinstance(s, F.Assign):
        return None
    idx = loop.var

    # scalar accumulator forms: s = s + <contrib> / s = s - <contrib>
    if isinstance(s.target, F.Var):
        acc = s.target.name
        e = s.value
        if isinstance(e, F.BinOp) and e.op == "+":
            for self_side, contrib in ((e.left, e.right), (e.right, e.left)):
                if isinstance(self_side, F.Var) and self_side.name == acc:
                    rep = _accumulator_replacement(acc, contrib, loop, idx)
                    if rep is not None:
                        return rep
        if isinstance(e, F.BinOp) and e.op == "-" \
                and isinstance(e.left, F.Var) and e.left.name == acc:
            rep = _accumulator_replacement(acc, e.right, loop, idx)
            if rep is not None:
                # negate the library contribution: s = s - ces_*(...)
                inner = rep[0].value
                assert isinstance(inner, F.BinOp) and inner.op == "+"
                rep[0].value = F.BinOp("-", inner.left, inner.right)
                return rep
        if isinstance(e, (F.FuncCall, F.Apply)) and e.name in (
                "min", "max", "amin1", "amax1") and len(e.args) == 2:
            a, b = e.args
            op = "min" if e.name.startswith(("min", "amin")) else "max"
            for self_side, contrib in ((a, b), (b, a)):
                if isinstance(self_side, F.Var) and self_side.name == acc:
                    arr = _plain_ref(contrib, idx)
                    if arr is not None:
                        lib = "ces_minval" if op == "min" else "ces_maxval"
                        return [F.Assign(
                            target=F.Var(acc),
                            value=F.FuncCall(op, [
                                F.Var(acc),
                                F.FuncCall(lib, [_section(arr, loop)]),
                            ], intrinsic=True))]
        return None

    # linear recurrence: x(i) = x(i-1) * b(i) + c(i)
    if isinstance(s.target, (F.ArrayRef, F.Apply)):
        x = _plain_ref(s.target, idx)
        if x is None:
            return None
        e = s.value
        if isinstance(e, F.BinOp) and e.op == "+":
            for prod, addend in ((e.left, e.right), (e.right, e.left)):
                if isinstance(prod, F.BinOp) and prod.op == "*":
                    for xm1, bterm in ((prod.left, prod.right),
                                       (prod.right, prod.left)):
                        if _plain_ref(xm1, idx, -1) == x:
                            b = _plain_ref(bterm, idx)
                            c = _plain_ref(addend, idx)
                            if b is not None and c is not None:
                                return [F.CallStmt(name="ces_linrec", args=[
                                    _section(x, loop),
                                    _section(b, loop),
                                    _section(c, loop),
                                ])]
    return None


def _accumulator_replacement(acc: str, contrib: F.Expr, loop: F.DoLoop,
                             idx: str) -> Optional[list[F.Stmt]]:
    # dot product: contrib = a(.., i, ..) * b(.., i, ..)
    if isinstance(contrib, F.BinOp) and contrib.op == "*":
        a = _indexed_ref(contrib.left, idx)
        b = _indexed_ref(contrib.right, idx)
        if a is not None and b is not None:
            return [F.Assign(
                target=F.Var(acc),
                value=F.BinOp("+", F.Var(acc), F.FuncCall(
                    "ces_dotproduct",
                    [_section_of(a, loop), _section_of(b, loop)])))]
    # plain sum: contrib = a(.., i, ..)
    arr = _indexed_ref(contrib, idx)
    if arr is not None:
        return [F.Assign(
            target=F.Var(acc),
            value=F.BinOp("+", F.Var(acc),
                          F.FuncCall("ces_sum", [_section_of(arr, loop)])))]
    return None
