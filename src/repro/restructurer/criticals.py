"""Unordered critical sections (paper §4.1.6).

"Little has been published in the literature about compiler recognition
and protection of unordered critical sections.  However, in at least two
programs (TRACK, and MDG) we parallelized the most time-consuming loops
using unordered critical sections."

A loop qualifies when its carried dependences are confined to a small
contiguous statement region whose variables are touched *nowhere else* in
the loop, and the region's updates are order-insensitive in the
weak sense the paper used (index-list appends, accumulations): the region
is then bracketed with lock/unlock and the loop runs as a DOALL.
The transformation changes the *order* of the protected updates — users
opt in via the ``critical_sections`` option, exactly as the paper's
authors applied it by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.depend.graph import DependenceGraph
from repro.cedar.nodes import LockStmt, ParallelDo, UnlockStmt
from repro.fortran import ast_nodes as F
from repro.restructurer.costmodel import estimate_body_ops


@dataclass
class CriticalPlan:
    """A viable critical-section parallelization of one loop."""

    loop: F.DoLoop
    first: int
    last: int
    region_ops: float
    body_ops: float
    variables: set[str]


def _top_index(loop: F.DoLoop, stmt: F.Stmt) -> Optional[int]:
    for i, s in enumerate(loop.body):
        for node in s.walk():
            if node is stmt:
                return i
    return None


def plan_critical_section(loop: F.DoLoop, graph: DependenceGraph,
                          ignore: set[str] = frozenset(),
                          max_fraction: float = 0.5) -> Optional[CriticalPlan]:
    """Find a contiguous region covering all carried dependences.

    Returns None when no such region exists, when the region is most of
    the body (no parallelism left), or when a dependence variable is also
    referenced outside the region (the lock would not protect it).
    """
    carried = [d for d in graph.carried_at(0) if d.variable not in ignore]
    if not carried:
        return None
    first = len(loop.body)
    last = -1
    variables: set[str] = set()
    for d in carried:
        si = _top_index(loop, d.source.stmt)
        ti = _top_index(loop, d.sink.stmt)
        if si is None or ti is None:
            return None
        first = min(first, si, ti)
        last = max(last, si, ti)
        variables.add(d.variable)

    # dependence variables must not appear outside the region
    for i, s in enumerate(loop.body):
        if first <= i <= last:
            continue
        for node in s.walk():
            if isinstance(node, (F.Var, F.ArrayRef, F.Apply)) \
                    and node.name in variables:
                return None

    # Order sensitivity: an unordered critical section reorders the
    # protected updates across iterations, which is only acceptable when
    # every scalar update is a commutative accumulation (counters, sums,
    # min/max) — the paper's QCD footnote shows what happens otherwise
    # (the randon-number recurrence gives different, invalid results).
    if not _region_commutative(loop.body[first:last + 1], variables):
        return None

    region_ops = estimate_body_ops(loop.body[first:last + 1])
    body_ops = estimate_body_ops(loop.body)
    if body_ops <= 0 or region_ops / body_ops > max_fraction:
        return None
    return CriticalPlan(loop, first, last, region_ops, body_ops, variables)


def _region_commutative(stmts: list[F.Stmt], variables: set[str]) -> bool:
    """Every write to a dependence *scalar* inside the region must be a
    commutative accumulation (``v = v + e``, ``* e``, min/max forms).

    Array-element stores through such counters (the hits-list append) are
    accepted: the set of stored values is order-independent even though
    their placement is not — the paper's §4.1.6 usage.
    """
    from repro.analysis.reductions import _match_accumulation

    for s in stmts:
        for node in s.walk():
            if isinstance(node, F.Assign) and isinstance(node.target, F.Var) \
                    and node.target.name in variables:
                m = _match_accumulation(node)
                if m is None or m[1] not in ("+", "*", "min", "max"):
                    return False
    return True


def build_critical_loop(plan: CriticalPlan, level: str = "X",
                        locals_: list[F.Stmt] | None = None) -> ParallelDo:
    """Materialize the DOALL with the protected region."""
    loop = plan.loop
    body: list[F.Stmt] = []
    for i, s in enumerate(loop.body):
        if i == plan.first:
            body.append(LockStmt(name="crit"))
        body.append(s)
        if i == plan.last:
            body.append(UnlockStmt(name="crit"))
    return ParallelDo(level=level, order="doall", var=loop.var,
                      start=loop.start, end=loop.end, step=loop.step,
                      locals_=list(locals_ or []), body=body)
