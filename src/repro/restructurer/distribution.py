"""Loop distribution (paper §3.3).

Splits a loop's body into separately-loopable groups so that library
idioms (recurrences, reductions) can be isolated: "the restructurer must
often distribute an original loop to isolate those computations done by
library code".

Legality: statements are grouped by strongly connected components of the
statement-level dependence graph; groups are emitted in topological order.
Loop-independent dependences between groups are satisfied by order;
carried dependences within a group keep that group together.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.depend.graph import build_dependence_graph
from repro.fortran import ast_nodes as F


def _stmt_index(loop: F.DoLoop, node: F.Stmt) -> int | None:
    for i, s in enumerate(loop.body):
        for n in s.walk():
            if n is node:
                return i
    return None


def distribute(loop: F.DoLoop,
               params: Mapping[str, int] | None = None) -> list[F.DoLoop]:
    """Distribute ``loop`` into a list of loops (may return [loop]).

    Returns one loop per statement group, preserving semantics; when the
    body is a single dependence component the original loop is returned
    unchanged (as a single-element list).
    """
    n = len(loop.body)
    if n <= 1:
        return [loop]

    g = build_dependence_graph(loop, params=params)
    edges: dict[int, set[int]] = {i: set() for i in range(n)}
    for d in g.deps:
        si = _stmt_index(loop, d.source.stmt)
        ti = _stmt_index(loop, d.sink.stmt)
        if si is None or ti is None:
            return [loop]  # defensive: unmapped statement
        if si != ti:
            edges[si].add(ti)

    # Tarjan SCC over statement indices
    index_counter = [0]
    stack: list[int] = []
    lowlink = [0] * n
    index = [-1] * n
    on_stack = [False] * n
    comp_of = [-1] * n
    comps: list[list[int]] = []

    def strongconnect(v: int) -> None:
        index[v] = lowlink[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack[v] = True
        for w in edges[v]:
            if index[w] == -1:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif on_stack[w]:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack[w] = False
                comp_of[w] = len(comps)
                comp.append(w)
                if w == v:
                    break
            comps.append(sorted(comp))

    for v in range(n):
        if index[v] == -1:
            strongconnect(v)

    if len(comps) <= 1:
        return [loop]

    # topological order of the component DAG (Kahn), ties broken by the
    # smallest original statement index so untangled code keeps text order
    comp_edges: dict[int, set[int]] = {c: set() for c in range(len(comps))}
    indeg = [0] * len(comps)
    for v in range(n):
        for w in edges[v]:
            cv, cw = comp_of[v], comp_of[w]
            if cv != cw and cw not in comp_edges[cv]:
                comp_edges[cv].add(cw)
                indeg[cw] += 1
    import heapq

    ready = [(comps[c][0], c) for c in range(len(comps)) if indeg[c] == 0]
    heapq.heapify(ready)
    comp_sorted: list[int] = []
    while ready:
        _, c = heapq.heappop(ready)
        comp_sorted.append(c)
        for w in comp_edges[c]:
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(ready, (comps[w][0], w))

    loops: list[F.DoLoop] = []
    for c in comp_sorted:
        body = [loop.body[i] for i in comps[c]]
        loops.append(F.DoLoop(var=loop.var,
                              start=loop.start.clone(),
                              end=loop.end.clone(),
                              step=loop.step.clone() if loop.step else None,
                              body=body))
    return loops
