"""Fresh-name generation for compiler-introduced variables."""

from __future__ import annotations

from repro.fortran import ast_nodes as F


class NamePool:
    """Generates names not colliding with anything in a program unit."""

    def __init__(self, unit: F.ProgramUnit):
        self.used: set[str] = set(unit.args)
        for node in list(F.stmts_walk(unit.specs)) + list(F.stmts_walk(unit.body)):
            if isinstance(node, (F.Var, F.ArrayRef, F.Apply, F.FuncCall)):
                self.used.add(node.name)
            elif isinstance(node, F.DoLoop):
                self.used.add(node.var)
            elif isinstance(node, F.EntityDecl):
                self.used.add(node.name)
        for spec in unit.specs:
            for node in spec.walk():
                if isinstance(node, F.EntityDecl):
                    self.used.add(node.name)

    def fresh(self, base: str) -> str:
        """A new name derived from ``base`` (f77 style: ≤ 6 significant chars
        is not enforced — Cedar Fortran tools accepted longer names)."""
        if base not in self.used:
            self.used.add(base)
            return base
        for i in range(1, 10_000):
            cand = f"{base}{i}"
            if cand not in self.used:
                self.used.add(cand)
                return cand
        raise RuntimeError("name pool exhausted")  # pragma: no cover
