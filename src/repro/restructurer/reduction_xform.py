"""Reduction transformation (paper §3.3, §4.1.3).

A recognized reduction in a parallel loop becomes:

- a loop-local partial accumulator, initialized in the loop *preamble*
  (once per joining processor);
- the original accumulation statements, redirected to the partial;
- a *postamble* that folds the partial into the shared accumulator inside
  an unordered critical section (lock/unlock) — the two-step
  cluster/cross-cluster combining of the Cedar library is modelled by the
  machine layer's cost for this postamble.

Array reductions get a private copy of the whole array, vector-initialized
and vector-combined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reductions import Reduction
from repro.cedar.nodes import LockStmt, UnlockStmt
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable
from repro.restructurer.names import NamePool
from repro.restructurer.rename import rename_in_stmts
from repro.trace.events import NULL_SINK, DecisionEvent

#: neutral element literal per op and type class
def _neutral(op: str, ftype: str) -> F.Expr:
    real = ftype in ("real", "doubleprecision")
    if op == "+":
        return F.RealLit(0.0, double=(ftype == "doubleprecision")) if real \
            else F.IntLit(0)
    if op == "*":
        return F.RealLit(1.0) if real else F.IntLit(1)
    if op == "min":
        return F.RealLit(1e30) if real else F.IntLit(2**31 - 1)
    if op == "max":
        return F.RealLit(-1e30) if real else F.IntLit(-(2**31 - 1))
    raise TransformError(f"no neutral element for op {op!r}")


def _combine(op: str, target: F.Expr, partial: F.Expr) -> F.Expr:
    if op in ("+", "*"):
        return F.BinOp(op, target, partial)
    return F.FuncCall(op, [target, partial], intrinsic=True)


@dataclass
class ReductionOutcome:
    """Code pieces produced for the reductions of one loop."""

    locals_: list[F.Stmt] = field(default_factory=list)
    preamble: list[F.Stmt] = field(default_factory=list)
    postamble: list[F.Stmt] = field(default_factory=list)
    renames: dict[str, str] = field(default_factory=dict)
    transformed: list[str] = field(default_factory=list)


def transform_reductions(loop: F.DoLoop, reductions: list[Reduction],
                         pool: NamePool,
                         symtab: SymbolTable | None = None,
                         sink=NULL_SINK,
                         unit: str = "") -> ReductionOutcome:
    """Build preamble/postamble code for ``reductions`` and redirect the
    accumulation statements in ``loop.body`` (mutated in place)."""
    out = ReductionOutcome()
    for red in reductions:
        sink.emit(DecisionEvent(
            kind="pass", unit=unit, technique="reduction", action="applied",
            loop=f"do {loop.var}", line=loop.line,
            reason=f"{red.var}: {red.kind} {red.op}-reduction split into "
                   f"per-processor partials"))
        sym = symtab.lookup(red.var) if symtab else None
        ftype = sym.type if sym else (
            "integer" if red.var[0] in "ijklmn" else "real")
        partial = pool.fresh(red.var + "_p")
        out.renames[red.var] = partial
        out.transformed.append(red.var)

        if red.kind == "scalar":
            out.locals_.append(F.TypeDecl(type=F.TypeSpec(ftype),
                                          entities=[F.EntityDecl(partial)]))
            out.preamble.append(
                F.Assign(target=F.Var(partial),
                         value=_neutral(red.op, ftype)))
            out.postamble.extend([
                LockStmt(name="redlck"),
                F.Assign(target=F.Var(red.var),
                         value=_combine(red.op, F.Var(red.var),
                                        F.Var(partial))),
                UnlockStmt(name="redlck"),
            ])
        else:  # array
            if sym is None or not sym.is_array:
                raise TransformError(
                    f"array reduction on undeclared array {red.var!r}")
            dims = [F.DimSpec(b.lower.clone() if b.lower else None,
                              b.upper.clone() if b.upper else None)
                    for b in sym.dims]
            if any(d.upper is None for d in dims):
                raise TransformError(
                    f"cannot size private copy of assumed-size {red.var!r}")
            out.locals_.append(F.TypeDecl(type=F.TypeSpec(ftype),
                                          entities=[F.EntityDecl(partial, dims)]))
            full = [F.RangeExpr(d.lower.clone() if d.lower else F.IntLit(1),
                                d.upper.clone(), None) for d in dims]
            out.preamble.append(
                F.Assign(target=F.ArrayRef(partial, [s.clone() for s in full]),
                         value=_neutral(red.op, ftype)))
            out.postamble.extend([
                LockStmt(name="redlck"),
                F.Assign(
                    target=F.ArrayRef(red.var, [s.clone() for s in full]),
                    value=_combine(
                        red.op,
                        F.ArrayRef(red.var, [s.clone() for s in full]),
                        F.ArrayRef(partial, [s.clone() for s in full]))),
                UnlockStmt(name="redlck"),
            ])

        # redirect accumulation statements to the partial
        for s in red.stmts:
            rename_in_stmts([s], {red.var: partial})
    return out
