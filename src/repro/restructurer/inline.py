"""Inline subroutine expansion (paper §3.2, §4.1.1).

Replaces a CALL with the callee's body: dummy arguments are renamed to the
actual arguments (whole variables/arrays only; expression actuals go
through compiler temporaries), callee locals get fresh names, and the
callee's declarations are merged into the caller.

The paper notes inlining *fails* on deeply nested call chains (memory) and
on array reshaping across the boundary; we mirror both limits — a depth
cap and a same-rank requirement — so the automatic pipeline degrades the
same way KAP did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.fortran.symtab import SymbolTable, build_symbol_table
from repro.restructurer.names import NamePool
from repro.restructurer.rename import rename_in_stmts
from repro.trace.events import NULL_SINK, DecisionEvent


@dataclass
class InlineResult:
    """Summary of one inlining session over a unit."""

    expanded: int = 0
    failed: list[tuple[str, str]] = field(default_factory=list)  # (name, why)


def _rank_of(st: SymbolTable, name: str) -> int:
    sym = st.lookup(name)
    return sym.rank if sym is not None else 0


def inline_calls(unit: F.ProgramUnit, sf: F.SourceFile,
                 max_depth: int = 3, max_stmts: int = 400,
                 _depth: int = 0, sink=NULL_SINK) -> InlineResult:
    """Expand every call in ``unit`` to a routine defined in ``sf``.

    Recursive chains stop at ``max_depth``; units larger than
    ``max_stmts`` statements refuse further expansion (the paper's
    out-of-memory analogue).
    """
    result = InlineResult()
    callees = {u.name: u for u in sf.units if isinstance(u, F.Subroutine)}
    caller_st = build_symbol_table(unit)
    pool = NamePool(unit)

    def fail(s: F.CallStmt, why: str) -> None:
        result.failed.append((s.name, why))
        sink.emit(DecisionEvent(
            kind="pass", unit=unit.name, technique="inline", action="failed",
            loop=f"call {s.name}", line=s.line, reason=why))

    def expand_in(stmts: list[F.Stmt]) -> None:
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if isinstance(s, F.CallStmt) and s.name in callees:
                if _depth >= max_depth:
                    fail(s, "max inline depth")
                    i += 1
                    continue
                if _count_stmts(unit.body) > max_stmts:
                    fail(s, "unit too large")
                    i += 1
                    continue
                try:
                    replacement = _expand_one(s, callees[s.name],
                                              unit, caller_st, pool, sf,
                                              _depth)
                except TransformError as exc:
                    fail(s, str(exc))
                    i += 1
                    continue
                stmts[i:i + 1] = replacement
                result.expanded += 1
                sink.emit(DecisionEvent(
                    kind="pass", unit=unit.name, technique="inline",
                    action="applied", loop=f"call {s.name}", line=s.line,
                    reason=f"expanded body of {s.name} into {unit.name}"))
                continue  # re-examine spliced statements (nested calls)
            if isinstance(s, F.DoLoop):
                expand_in(s.body)
            elif isinstance(s, F.IfBlock):
                for _, body in s.arms:
                    expand_in(body)
            i += 1

    expand_in(unit.body)
    return result


def _count_stmts(stmts: list[F.Stmt]) -> int:
    return sum(1 for _ in F.stmts_walk(stmts))


def _expand_one(call: F.CallStmt, callee: F.Subroutine,
                caller: F.ProgramUnit, caller_st: SymbolTable,
                pool: NamePool, sf: F.SourceFile, depth: int) -> list[F.Stmt]:
    if len(call.args) != len(callee.args):
        raise TransformError("argument count mismatch")
    callee = callee.clone()
    callee_st = build_symbol_table(callee)

    pre: list[F.Stmt] = []
    mapping: dict[str, str] = {}

    for dummy, actual in zip(callee.args, call.args):
        d_sym = callee_st.lookup(dummy)
        d_rank = d_sym.rank if d_sym else 0
        if isinstance(actual, F.Var):
            a_rank = _rank_of(caller_st, actual.name)
            if d_rank != a_rank:
                raise TransformError(
                    f"array reshape across boundary for {dummy!r}")
            mapping[dummy] = actual.name
        elif isinstance(actual, (F.ArrayRef, F.Apply)) and d_rank == 0:
            # scalar dummy bound to an array element: copy in/out via temp
            tmp = pool.fresh(dummy)
            pre.append(F.Assign(target=F.Var(tmp), value=actual.clone()))
            mapping[dummy] = tmp
        elif d_rank == 0:
            # expression actual: read-only temp
            tmp = pool.fresh(dummy)
            pre.append(F.Assign(target=F.Var(tmp), value=actual.clone()))
            mapping[dummy] = tmp
        else:
            raise TransformError(
                f"cannot bind array dummy {dummy!r} to an expression")

    # fresh names for callee locals (everything that is not a dummy)
    for sym in callee_st.symbols.values():
        if sym.is_dummy or sym.is_function or sym.name in mapping:
            continue
        if sym.common_block is not None:
            continue  # COMMON names refer to the same storage
        mapping[sym.name] = pool.fresh(sym.name)

    body = [s.clone() for s in callee.body]
    rename_in_stmts(body, mapping)
    body = [s for s in body if not isinstance(s, F.ReturnStmt)]
    if any(isinstance(n, (F.Goto, F.ComputedGoto)) for s in body
           for n in s.walk()):
        # labels would clash with the caller's: decline (KAP did similar)
        raise TransformError("callee contains GOTO")

    # merge renamed declarations of callee *locals* into the caller
    # (dummies are bound to caller storage, which is already declared)
    dummies = set(callee.args)
    for spec in callee.specs:
        if isinstance(spec, (F.TypeDecl, F.DimensionStmt)):
            spec = spec.clone()
            kept = []
            for ent in spec.entities:
                if ent.name in dummies:
                    continue
                new_name = mapping.get(ent.name)
                if new_name is None:
                    continue
                ent.name = new_name
                for d in ent.dims:
                    holder = [F.Assign(target=F.Var("__h__"),
                                       value=d.upper.clone())] \
                        if d.upper is not None else []
                    if holder:
                        rename_in_stmts(holder, mapping)
                        d.upper = holder[0].value
                kept.append(ent)
            if kept:
                spec.entities = kept
                caller.specs.append(spec)
        elif isinstance(spec, F.CommonStmt):
            # replicate the COMMON declaration if absent in the caller
            blocks = {s.block for s in caller.specs
                      if isinstance(s, F.CommonStmt)}
            if spec.block not in blocks:
                caller.specs.append(spec.clone())

    # dummies copied through temps must be copied back when modified
    post: list[F.Stmt] = []
    from repro.analysis.refs import written_names

    written = written_names(body)
    for dummy, actual in zip(callee.args, call.args):
        if isinstance(actual, (F.ArrayRef, F.Apply)):
            tmp = mapping[dummy]
            if tmp != actual.name and tmp in written:
                post.append(F.Assign(target=actual.clone(),
                                     value=F.Var(tmp)))
    return pre + body + post
