"""Restructurer-side cost model for ranking candidate loop versions.

This is the *compile-time* estimate (paper §3.3-§3.4), deliberately much
coarser than the machine performance model in :mod:`repro.machine`: it uses
nominal per-level startup costs, an operation count per iteration, and the
paper's **synchronization delay factor** for DOACROSS loops — the size of
the synchronized region as a fraction of one iteration, divided by the
number of processors that may execute it concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.expr import const_value
from repro.fortran import ast_nodes as F

#: Nominal startup cost in "operation units" for entering each loop kind.
STARTUP = {
    "serial": 2.0,
    "vector": 12.0,      # pipeline fill
    "cdoall": 60.0,      # concurrency bus dispatch (fast, §4.2.4)
    "cdoacross": 80.0,
    "sdoall": 1200.0,    # cross-cluster via global memory (slow, §4.2.4)
    "xdoall": 1500.0,
    "xdoacross": 1800.0,
}

#: Per-iteration scheduling overhead (self-scheduling dispatch).
DISPATCH = {
    "serial": 0.0,
    "vector": 0.0,
    "cdoall": 3.0,
    "cdoacross": 4.0,
    "sdoall": 30.0,
    "xdoall": 12.0,
    "xdoacross": 16.0,
}

#: await/advance signalling cost per synchronized region execution.
SYNC_SIGNAL = 10.0


def estimate_body_ops(stmts: list[F.Stmt], default_trip: int = 100) -> float:
    """Rough operation count of one execution of ``stmts``."""
    total = 0.0
    for s in stmts:
        total += _stmt_ops(s, default_trip)
    return total


def _expr_ops(e: F.Expr) -> float:
    ops = 0.0
    for n in e.walk():
        if isinstance(n, F.BinOp):
            ops += 4.0 if n.op in ("/", "**") else 1.0
        elif isinstance(n, F.UnOp):
            ops += 0.5
        elif isinstance(n, (F.FuncCall, F.Apply)):
            ops += 8.0
        elif isinstance(n, F.ArrayRef):
            ops += 1.0 + 0.5 * (len(n.subscripts) - 1)  # addressing
        elif isinstance(n, F.Var):
            ops += 0.25
    return ops


def trip_count(loop: F.DoLoop, default_trip: int = 100) -> float:
    """Estimated iteration count (constant bounds, else the default)."""
    lo, hi = const_value(loop.start), const_value(loop.end)
    step = 1 if loop.step is None else const_value(loop.step)
    if lo is not None and hi is not None and step:
        n = (hi - lo + step) // step if step > 0 else (lo - hi - step) // (-step)
        return float(max(0, n))
    return float(default_trip)


def _stmt_ops(s: F.Stmt, default_trip: int) -> float:
    if isinstance(s, F.Assign):
        return 1.0 + _expr_ops(s.value) + _expr_ops(s.target)
    if isinstance(s, F.DoLoop):
        inner = estimate_body_ops(s.body, default_trip)
        return STARTUP["serial"] + trip_count(s, default_trip) * (inner + 1.0)
    if isinstance(s, F.IfBlock):
        arms = [estimate_body_ops(b, default_trip) for _, b in s.arms]
        conds = sum(_expr_ops(c) for c, _ in s.arms if c is not None)
        return conds + (max(arms) + min(arms)) / 2.0 if arms else conds
    if isinstance(s, F.LogicalIf):
        return _expr_ops(s.cond) + 0.5 * _stmt_ops(s.stmt, default_trip)
    if isinstance(s, F.CallStmt):
        return 20.0 + 2.0 * len(s.args)
    return 0.5


@dataclass
class VersionEstimate:
    """Scored candidate version of one loop nest."""

    label: str
    time: float
    kind: str            # headline loop kind ('xdoall', 'serial', ...)
    detail: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.label}: {self.time:.1f} ops ({self.kind})>"


class CostModel:
    """Scores loop-nest execution alternatives."""

    def __init__(self, clusters: int = 4, processors_per_cluster: int = 8,
                 default_trip: int = 100):
        self.clusters = clusters
        self.ppc = processors_per_cluster
        self.total_p = clusters * processors_per_cluster
        self.default_trip = default_trip

    # -- individual shapes -------------------------------------------------

    def serial(self, trips: float, body_ops: float) -> float:
        return STARTUP["serial"] + trips * (body_ops + 1.0)

    def vectorized(self, trips: float, body_ops: float) -> float:
        # vector pipeline: ~1 op/element after fill, per statement stream
        return STARTUP["vector"] + trips * max(0.35 * body_ops, 1.0)

    def parallel(self, kind: str, trips: float, body_ops: float,
                 processors: int) -> float:
        chunks = max(1.0, trips / processors)
        return (STARTUP[kind]
                + chunks * (body_ops + DISPATCH[kind]))

    def doacross(self, kind: str, trips: float, body_ops: float,
                 sync_region_ops: float, processors: int) -> float:
        """Paper §3.3: lower the parallel benefit by the sync delay factor.

        delay factor = (sync region size / iteration size) / processors.
        Effective parallelism shrinks accordingly; the serialized region
        also bounds the critical path (trips * region).
        """
        base = self.parallel(kind, trips, body_ops, processors)
        serial_path = trips * (sync_region_ops + SYNC_SIGNAL)
        delay_factor = (sync_region_ops / max(body_ops, 1.0)) / processors
        return max(base * (1.0 + delay_factor), serial_path)

    def processors_for(self, kind: str) -> int:
        if kind in ("serial", "vector"):
            return 1
        if kind.startswith("c"):
            return self.ppc
        if kind.startswith("s"):
            return self.clusters
        if kind.startswith("x"):
            return self.total_p
        return 1
