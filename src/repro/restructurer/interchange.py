"""Loop interchange (paper §3.4: "how loops in a nest might be interchanged").

Interchanging the two outer loops of a perfect nest is legal when no
dependence has direction vector ``(<, >)`` — that pair would reverse
execution order of the dependent iterations.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis.depend.graph import build_dependence_graph
from repro.errors import TransformError
from repro.fortran import ast_nodes as F


def perfectly_nested(loop: F.DoLoop) -> Optional[F.DoLoop]:
    """The inner loop if ``loop`` is a perfect 2-nest, else None."""
    body = [s for s in loop.body if not isinstance(s, F.ContinueStmt)]
    if len(body) == 1 and isinstance(body[0], F.DoLoop):
        return body[0]
    return None


def interchange_legal(loop: F.DoLoop,
                      params: Mapping[str, int] | None = None) -> bool:
    """Is interchanging ``loop`` with its (perfectly nested) inner legal?"""
    inner = perfectly_nested(loop)
    if inner is None:
        return False
    # inner loop bounds must not depend on the outer index (non-triangular)
    for e in (inner.start, inner.end, inner.step):
        if e is None:
            continue
        for n in e.walk():
            if isinstance(n, F.Var) and n.name == loop.var:
                return False
    g = build_dependence_graph(loop, params=params)
    for d in g.deps:
        for dv in d.directions:
            if len(dv) >= 2 and dv[0] == "<" and dv[1] == ">":
                return False
    return True


def interchange(loop: F.DoLoop) -> F.DoLoop:
    """Swap a perfect 2-nest in place (returns the new outer loop)."""
    inner = perfectly_nested(loop)
    if inner is None:
        raise TransformError("interchange requires a perfect 2-nest")
    outer_hdr = (loop.var, loop.start, loop.end, loop.step)
    loop.var, loop.start, loop.end, loop.step = (
        inner.var, inner.start, inner.end, inner.step)
    inner.var, inner.start, inner.end, inner.step = outer_hdr
    return loop
