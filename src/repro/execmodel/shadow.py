"""Dynamic race detection: a shadow-access recorder for the interpreter.

The restructurer's dependence analysis *claims* that the iterations of
every DOALL loop it emits are independent once the privatized scalars,
reduction accumulators and substituted induction variables are set
aside.  This module validates that claim at runtime, the way the paper's
run-time dependence tests do: while the interpreter executes a parallel
loop worker by worker, every read and write of *shared* storage (any
variable not declared loop-local) is logged per iteration, and on loop
exit the log is scanned for cross-iteration conflicts — two different
iterations touching the same scalar cell or the same array element with
at least one write.

Scope rules:

- accesses to loop-local storage (the ``locals_`` a privatization or
  reduction transform declared, and the loop index itself) are private
  and never recorded;
- accesses inside a loop's preamble/postamble are skipped *for that
  loop* — partial-accumulator initialization and the combine step are
  synchronized constructs on the machine — but still recorded for any
  enclosing parallel loop;
- accesses made while a lock is held carry the lock name; two accesses
  that share a lock never conflict (unordered critical sections, §4.1.6);
- ordered (DOACROSS) loops are not checked: their carried dependences
  are covered by await/advance synchronization by construction.

Array sections are expanded to element cells up to ``expand_cap``
elements per access; beyond that a whole-array supercell is used, which
conflicts with every other access to the same array (conservative).
WHERE-masked section writes are recorded for the full section, another
deliberate over-approximation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.execmodel.values import FArray, Scope

#: supercell marker: "every element of the array"
_ALL = "__all__"


@dataclass(frozen=True)
class RaceConflict:
    """One detected cross-iteration conflict in a DOALL loop."""

    loop: str                     # loop identifier, e.g. "do i @ line 12"
    var: str                      # variable (display name at first access)
    element: Optional[tuple]      # Fortran subscripts; None = scalar/whole
    kind: str                     # "write-write" | "read-write"
    iterations: tuple[int, int]   # the two conflicting iteration numbers

    def to_dict(self) -> dict:
        return {
            "loop": self.loop,
            "var": self.var,
            "element": list(self.element) if self.element is not None
            else None,
            "kind": self.kind,
            "iterations": list(self.iterations),
        }

    def describe(self) -> str:
        where = (f"{self.var}({', '.join(map(str, self.element))})"
                 if self.element else self.var)
        i, j = self.iterations
        return (f"{self.loop}: {self.kind} conflict on {where} between "
                f"iterations {i} and {j}")


class _LoopCtx:
    """Recording state of one active DOALL loop."""

    __slots__ = ("label", "wscope", "cur_iter", "suspended",
                 "private_data", "writes", "reads")

    def __init__(self, label: str):
        self.label = label
        self.wscope: Optional[Scope] = None
        self.cur_iter: Optional[int] = None
        self.suspended = False
        #: ids of ndarray storage allocated loop-locally (any worker)
        self.private_data: set[int] = set()
        #: cell -> set of (iteration, locks); cell is (token, element)
        self.writes: dict[tuple, set] = {}
        self.reads: dict[tuple, set] = {}


class ShadowRecorder:
    """Shared-access recorder threaded through the interpreter.

    Create one, pass it to :class:`repro.execmodel.interp.Interpreter`
    via ``shadow=``, run the program, then read ``conflicts``.
    """

    #: max elements one access record expands to before coarsening
    expand_cap = 4096
    #: max conflicts reported per loop execution (the scan short-circuits)
    max_conflicts_per_loop = 64

    def __init__(self):
        self.conflicts: list[RaceConflict] = []
        #: executions of parallel loops seen (doall only)
        self.loops_checked = 0
        self._ctxs: list[_LoopCtx] = []
        self._locks: frozenset = frozenset()
        #: strong refs to keyed objects so id() values stay unique
        self._pins: list[Any] = []
        self._tokens: dict[Any, int] = {}
        self._names: dict[int, str] = {}

    # -- identity ------------------------------------------------------

    def _token(self, obj: Any, name: str, *, per_name: bool = False) -> int:
        """Small stable token for a storage object (scope or ndarray).

        Scalars pass ``per_name=True``: the storage object is their
        *containing scope*, which holds many variables, so the cell key
        must include the name or every scalar in a scope would collapse
        into one cell (conflating, say, a read-only loop bound with a
        lock-protected counter).  Arrays key on the ndarray alone: two
        names aliasing the same storage (argument passing) must share a
        cell.
        """
        key = (id(obj), name) if per_name else id(obj)
        t = self._tokens.get(key)
        if t is None:
            t = len(self._pins)
            self._tokens[key] = t
            self._pins.append(obj)
            self._names[t] = name
        return t

    # -- loop lifecycle (called by the interpreter) --------------------

    @property
    def recording(self) -> bool:
        return any(c.cur_iter is not None and not c.suspended
                   for c in self._ctxs)

    def open_loop(self, label: str) -> _LoopCtx:
        ctx = _LoopCtx(label)
        self._ctxs.append(ctx)
        self.loops_checked += 1
        return ctx

    def begin_worker(self, ctx: _LoopCtx, wscope: Scope) -> None:
        """A worker joined: register its loop-local storage as private."""
        ctx.wscope = wscope
        ctx.cur_iter = None
        for v in wscope.vars.values():
            if isinstance(v, FArray):
                ctx.private_data.add(id(v.data))
                self._pins.append(v.data)

    def begin_iteration(self, ctx: _LoopCtx, iteration: int) -> None:
        ctx.cur_iter = int(iteration)

    def suspend(self, ctx: _LoopCtx) -> None:
        ctx.suspended = True

    def resume(self, ctx: _LoopCtx) -> None:
        ctx.suspended = False

    def close_loop(self, ctx: _LoopCtx) -> None:
        assert self._ctxs and self._ctxs[-1] is ctx
        self._ctxs.pop()
        self.conflicts.extend(self._analyze(ctx))

    # -- locks ---------------------------------------------------------

    def acquire(self, name: str) -> None:
        self._locks = self._locks | {name}

    def release(self, name: str) -> None:
        self._locks = self._locks - {name}

    # -- access recording (called by the interpreter) ------------------

    def record_scalar(self, containing: Optional[Scope], name: str,
                      kind: str) -> None:
        """A scalar variable access; ``containing`` is the scope that
        holds the variable (None is treated as global/shared)."""
        for ctx in self._ctxs:
            if ctx.cur_iter is None or ctx.suspended:
                continue
            if containing is not None and _scope_under(containing,
                                                       ctx.wscope):
                continue  # loop-local: private by construction
            tok = self._token(containing if containing is not None
                              else self, name, per_name=True)
            self._log(ctx, (tok, None), kind)

    def record_array(self, arr: FArray, name: str, kind: str,
                     idx: Optional[tuple] = None,
                     specs: Optional[list] = None) -> None:
        """An array access: one element (``idx``, Fortran subscripts),
        a section (``specs`` as passed to ``FArray.slice_of``), or the
        whole array (neither)."""
        ctxs = [c for c in self._ctxs
                if c.cur_iter is not None and not c.suspended
                and id(arr.data) not in c.private_data]
        if not ctxs:
            return
        tok = self._token(arr.data, name)
        if idx is not None:
            cells = [(tok, tuple(int(i) for i in idx))]
        else:
            elements = self._expand(arr, specs)
            cells = ([(tok, _ALL)] if elements is None
                     else [(tok, e) for e in elements])
        for ctx in ctxs:
            for cell in cells:
                self._log(ctx, cell, kind)

    def _log(self, ctx: _LoopCtx, cell: tuple, kind: str) -> None:
        store = ctx.writes if kind == "w" else ctx.reads
        store.setdefault(cell, set()).add((ctx.cur_iter, self._locks))

    def _expand(self, arr: FArray,
                specs: Optional[list]) -> Optional[list[tuple]]:
        """Element subscript tuples of a section, or None to coarsen."""
        if arr.data.ndim == 0:
            return [()]
        axes = []
        count = 1
        for dim in range(arr.data.ndim):
            lo_bound = arr.lowers[dim]
            extent = arr.data.shape[dim]
            spec = specs[dim] if specs is not None else None
            if spec is None:
                rng = range(lo_bound, lo_bound + extent)
            elif isinstance(spec, tuple):
                lo, hi, stride = spec
                lo = lo_bound if lo is None else int(lo)
                hi = lo_bound + extent - 1 if hi is None else int(hi)
                step = 1 if stride is None else int(stride)
                rng = range(lo, hi + (1 if step > 0 else -1), step)
            else:
                rng = (int(spec),)
            count *= max(len(rng), 1)
            if count > self.expand_cap:
                return None
            axes.append(rng)
        return [tuple(t) for t in itertools.product(*axes)]

    # -- analysis ------------------------------------------------------

    def _analyze(self, ctx: _LoopCtx) -> list[RaceConflict]:
        out: list[RaceConflict] = []
        supercells = [c for c in
                      itertools.chain(ctx.writes, ctx.reads)
                      if c[1] == _ALL]
        for cell, writers in ctx.writes.items():
            if len(out) >= self.max_conflicts_per_loop:
                break
            pair = _conflicting_pair(writers, writers)
            if pair is not None:
                out.append(self._conflict(ctx, cell, "write-write", pair))
                continue
            readers = set(ctx.reads.get(cell, ()))
            # a supercell access to the same array touches every element
            for sc in supercells:
                if sc[0] == cell[0] and sc != cell:
                    readers |= ctx.reads.get(sc, set())
                    wpair = _conflicting_pair(
                        writers, ctx.writes.get(sc, set()))
                    if wpair is not None:
                        out.append(self._conflict(ctx, cell,
                                                  "write-write", wpair))
                        break
            else:
                pair = _conflicting_pair(writers, readers)
                if pair is not None:
                    out.append(self._conflict(ctx, cell,
                                              "read-write", pair))
        return out

    def _conflict(self, ctx: _LoopCtx, cell: tuple, kind: str,
                  pair: tuple[int, int]) -> RaceConflict:
        tok, element = cell
        return RaceConflict(
            loop=ctx.label, var=self._names.get(tok, "?"),
            element=None if element in (None, _ALL) else element,
            kind=kind, iterations=pair)

    def to_dict(self) -> dict:
        return {
            "loops_checked": self.loops_checked,
            "conflicts": [c.to_dict() for c in self.conflicts],
        }


def _scope_under(scope: Scope, wscope: Optional[Scope]) -> bool:
    """True if ``scope`` is ``wscope`` or nested anywhere below it."""
    if wscope is None:
        return False
    s: Optional[Scope] = scope
    while s is not None:
        if s is wscope:
            return True
        s = s.parent
    return False


def _conflicting_pair(a: set, b: set) -> Optional[tuple[int, int]]:
    """First (iter, iter) pair from a×b with different iterations and no
    common lock, or None."""
    for (i, locks_i) in a:
        for (j, locks_j) in b:
            if i == j:
                continue
            if locks_i & locks_j:
                continue  # serialized by a shared critical section
            return (i, j) if i < j else (j, i)
    return None
