"""Closure compiler: lower statement lists to precompiled Python closures.

``Interpreter(engine="compiled")`` routes every ``exec_body`` through
this module.  Each statement list is compiled *once* into a flat list of
closures — one per statement — so the per-statement work drops to one
indirect call:

- statement dispatch (the ``isinstance`` ladder of ``exec_stmt``) is
  resolved at compile time;
- intrinsic tables (``INTRINSICS``/``_NP_FUNCS``), Cedar library
  routines, callee units, and symbol-table facts (declared types,
  implicit-rule integers) are looked up once and captured in the
  closures;
- DO-loop index cells are resolved to one dict slot before the loop
  body runs instead of a scope-chain walk per iteration;
- eligible innermost DOALL bodies take a vectorized numpy fast path
  (whole-loop evaluation over the iteration vector).

The compiled engine is **numerics-identical** to the tree-walking
interpreter: every closure replicates the exact operation sequence of
the corresponding ``exec_stmt``/``eval`` branch (same numpy calls, same
Python arithmetic, same truncation rules, same evaluation order), and
the vector fast path is restricted to statements whose elementwise numpy
evaluation is bit-equal to the scalar loop (plain ``var`` subscripts,
exactness-whitelisted intrinsics only).  Anything outside the compiled
subset falls back to the interpreter's own methods, so coverage is
total.

The compiler is only engaged when no :class:`ShadowRecorder` is
attached — dynamic race detection instruments the tree-walk path, which
stays authoritative for ``repro.validate``'s race checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cedar import nodes as C
from repro.cedar.library import CEDAR_LIBRARY
from repro.errors import InterpreterBudgetError, InterpreterError
from repro.execmodel.values import FArray, Scope
from repro.fortran import ast_nodes as F
from repro.fortran.intrinsics import INTRINSICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.execmodel.interp import Interpreter

StmtFn = Callable[[Scope], None]
ExprFn = Callable[[Scope], object]

#: intrinsics whose scalar callable and numpy equivalent are bit-equal
#: elementwise (correctly-rounded or pure integer/compare ops) — the
#: only ones the DOALL vector fast path may lower.  Transcendentals
#: (exp, log, sin, …) are excluded: libm and npymath may differ in the
#: last ulp, and the fast path promises bit-identity with the scalar
#: loop, not closeness.
_VEC_EXACT_INTRINSICS = frozenset({
    "sqrt", "dsqrt", "abs", "dabs", "iabs",
    "min", "max", "min0", "max0", "amin1", "amax1", "dmin1", "dmax1",
    "sign", "isign", "nint", "int", "ifix", "idint",
    "float", "real", "dble", "sngl",
})

_NOOP_STMTS = (F.ContinueStmt, F.TypeDecl, F.DimensionStmt, F.CommonStmt,
               F.ParameterStmt, F.DataStmt, F.EquivalenceStmt,
               F.ImplicitStmt, F.ExternalStmt, F.IntrinsicStmt, F.SaveStmt,
               C.GlobalDecl, C.ClusterDecl, C.ProcessCommonStmt,
               # sync statements are functional no-ops without a shadow
               C.AwaitStmt, C.AdvanceStmt, C.LockStmt, C.UnlockStmt,
               C.PostWaitStmt)


def _noop(scope: Scope) -> None:
    return None


class ClosureCompiler:
    """Per-interpreter statement-list compiler and executor."""

    def __init__(self, interp: "Interpreter"):
        self.interp = interp
        # id(stmts) -> (closures, label map, stmts) — the stmts reference
        # pins the list so its id cannot be recycled
        self._bodies: dict[int, tuple[list[StmtFn], dict, list]] = {}
        self.vectorized_loops = 0

    # ------------------------------------------------------------------
    # execution

    def exec_body(self, stmts: list[F.Stmt], scope: Scope,
                  unit_name: str) -> None:
        entry = self._bodies.get(id(stmts))
        if entry is None:
            entry = self._compile_entry(stmts, unit_name)
            self._bodies[id(stmts)] = entry
        fns, labels, _ = entry
        interp = self.interp
        budget = interp.step_budget
        from repro.execmodel.interp import _GotoSignal

        pc, n = 0, len(fns)
        while pc < n:
            interp._steps += 1
            if budget is not None and interp._steps > budget:
                raise InterpreterBudgetError(
                    f"statement budget of {budget} exceeded in "
                    f"{unit_name} (livelock?)",
                    line=getattr(stmts[pc], "line", None))
            try:
                fns[pc](scope)
            except _GotoSignal as g:
                if g.label in labels:
                    pc = labels[g.label]
                    continue
                raise
            pc += 1

    # ------------------------------------------------------------------
    # statement compilation

    def _compile_entry(self, stmts: list[F.Stmt],
                       unit_name: str) -> tuple[list[StmtFn], dict, list]:
        """Compile one statement list to its execution entry.

        The engine tiers hook in here: the source JIT subclass replaces
        this step (cached module emission) while inheriting the
        execution loop above unchanged.
        """
        from repro.telemetry import span

        with span("compile", unit=unit_name, stmts=len(stmts)):
            fns = [self._stmt(s, unit_name) for s in stmts]
            labels = {s.label: i for i, s in enumerate(stmts)
                      if s.label is not None}
        return (fns, labels, stmts)

    def _stmt(self, s: F.Stmt, unit: str) -> StmtFn:
        interp = self.interp
        if isinstance(s, F.Assign):
            return self._assign(s, unit)
        if isinstance(s, C.ParallelDo):
            vec = self._try_vectorize(s, unit)
            if vec is not None:
                return vec
            return lambda scope: interp._parallel_do(s, scope, unit)
        if isinstance(s, F.DoLoop):
            return self._do_loop(s, unit)
        if isinstance(s, F.IfBlock):
            arms = [(self._expr(c, unit) if c is not None else None, body)
                    for c, body in s.arms]
            exec_body = self.exec_body
            truth = interp._truth

            def fn(scope: Scope) -> None:
                for cond, body in arms:
                    if cond is None or truth(cond(scope)):
                        exec_body(body, scope, unit)
                        return
            return fn
        if isinstance(s, F.LogicalIf):
            cond = self._expr(s.cond, unit)
            sub = self._stmt(s.stmt, unit)
            truth = interp._truth

            def fn(scope: Scope) -> None:
                if truth(cond(scope)):
                    sub(scope)
            return fn
        if isinstance(s, F.Goto):
            from repro.execmodel.interp import _GotoSignal
            target = s.target

            def fn(scope: Scope) -> None:
                raise _GotoSignal(target)
            return fn
        if isinstance(s, F.ComputedGoto):
            from repro.execmodel.interp import _GotoSignal
            index = self._expr(s.index, unit)
            targets = list(s.targets)

            def fn(scope: Scope) -> None:
                k = int(index(scope))
                if 1 <= k <= len(targets):
                    raise _GotoSignal(targets[k - 1])
            return fn
        if isinstance(s, _NOOP_STMTS):
            return _noop
        if isinstance(s, F.CallStmt):
            return lambda scope: interp._call_stmt(s, scope, unit)
        if isinstance(s, F.ReturnStmt):
            from repro.execmodel.interp import _ReturnSignal

            def fn(scope: Scope) -> None:
                raise _ReturnSignal()
            return fn
        if isinstance(s, F.StopStmt):
            from repro.execmodel.interp import _StopSignal
            message = s.message

            def fn(scope: Scope) -> None:
                raise _StopSignal(message)
            return fn
        if isinstance(s, F.PrintStmt):
            item_fns = [self._expr(i, unit) for i in s.items]
            outputs = interp.outputs
            scalarize = interp._scalarize

            def fn(scope: Scope) -> None:
                outputs.append([scalarize(f(scope)) for f in item_fns])
            return fn
        # WHERE, READ, and anything new: the interpreter's own dispatch
        return lambda scope: interp.exec_stmt(s, scope, unit)

    # -- assignment ----------------------------------------------------

    def _assign(self, s: F.Assign, unit: str) -> StmtFn:
        value = self._expr(s.value, unit)
        target = s.target
        if isinstance(target, F.Var):
            return self._assign_var(target.name, value, unit)
        if isinstance(target, (F.ArrayRef, F.Apply)):
            name = target.name
            subs = (target.subscripts if isinstance(target, F.ArrayRef)
                    else target.args)
            if any(isinstance(x, F.RangeExpr) for x in subs):
                spec_fns = [self._spec(x, unit) for x in subs]

                def fn(scope: Scope) -> None:
                    v = value(scope)
                    arr = scope.get(name)
                    if not isinstance(arr, FArray):
                        raise InterpreterError(f"{name!r} is not an array")
                    view = arr.slice_of([f(scope) for f in spec_fns])
                    view[...] = v
                return fn
            sub_fns = [self._expr(x, unit) for x in subs]

            def fn(scope: Scope) -> None:
                v = value(scope)
                arr = scope.get(name)
                if not isinstance(arr, FArray):
                    raise InterpreterError(f"{name!r} is not an array")
                arr.set(tuple(int(f(scope)) for f in sub_fns), v)
            return fn
        interp = self.interp
        return lambda scope: interp._assign(
            s.target, value(scope), scope, unit)

    def _assign_var(self, name: str, value: ExprFn, unit: str) -> StmtFn:
        # symbol-table facts are static: resolve the declared-integer /
        # implicit-integer branch of Interpreter._assign at compile time
        st = self.interp.tables.get(unit)
        sym = st.lookup(name) if st else None
        declared_int = sym is not None and sym.type == "integer"
        implicit_int = sym is None and name[0] in "ijklmn"
        coerce_int = declared_int or implicit_int

        def fn(scope: Scope) -> None:
            v = value(scope)
            sc = scope.lookup_scope(name)
            cur = sc.vars[name] if sc is not None else None
            if isinstance(cur, FArray):
                cur.data[...] = v
                return
            if sc is None:
                sc = scope._root()
            if isinstance(cur, (int, np.integer)) and not isinstance(
                    cur, (bool, np.bool_)):
                sc.vars[name] = int(np.trunc(v))
                return
            if isinstance(v, np.ndarray):
                raise InterpreterError(
                    f"array value assigned to scalar {name!r}")
            if coerce_int and not isinstance(v, (bool, np.bool_)):
                sc.vars[name] = int(np.trunc(v))
            else:
                sc.vars[name] = v
        return fn

    # -- loops ---------------------------------------------------------

    def _do_loop(self, s: F.DoLoop, unit: str) -> StmtFn:
        var = s.var
        body = s.body
        lo_f = self._expr(s.start, unit)
        hi_f = self._expr(s.end, unit)
        step_f = self._expr(s.step, unit) if s.step is not None else None
        exec_body = self.exec_body

        def fn(scope: Scope) -> None:
            lo = int(lo_f(scope))
            hi = int(hi_f(scope))
            step = int(step_f(scope)) if step_f is not None else 1
            if step == 0:
                raise InterpreterError("zero DO step")
            sc = scope.lookup_scope(var)
            if sc is None:
                sc = scope._root()
            cell = sc.vars
            for v in range(lo, hi + (1 if step > 0 else -1), step):
                cell[var] = v
                exec_body(body, scope, unit)
        return fn

    # ------------------------------------------------------------------
    # expression compilation

    def _expr(self, e: F.Expr, unit: str) -> ExprFn:
        if isinstance(e, (F.IntLit, F.RealLit, F.LogicalLit, F.StrLit)):
            v = e.value
            return lambda scope: v
        if isinstance(e, F.Var):
            name = e.name

            def fn(scope: Scope):
                sc = scope.lookup_scope(name)
                if sc is None:
                    raise InterpreterError(f"undefined variable {name!r}")
                v = sc.vars[name]
                if isinstance(v, FArray):
                    d = v.data
                    if d.ndim == 0:  # COMMON scalar box
                        return d.item()
                    return d
                return v
            return fn
        if isinstance(e, (F.ArrayRef, F.Apply)):
            return self._ref_or_call(e, unit)
        if isinstance(e, F.FuncCall):
            return self._func_call(e.name, e.args, unit)
        if isinstance(e, F.BinOp):
            return self._binop(e, unit)
        if isinstance(e, F.UnOp):
            operand = self._expr(e.operand, unit)
            if e.op == "-":
                return lambda scope: -operand(scope)
            if e.op == "+":
                return operand
            if e.op == ".not.":
                def fn(scope: Scope):
                    v = operand(scope)
                    return ~np.asarray(v) if isinstance(v, np.ndarray) \
                        else not v
                return fn
        node = e
        return lambda scope: (_ for _ in ()).throw(InterpreterError(
            f"cannot evaluate {type(node).__name__}"))

    def _ref_or_call(self, e, unit: str) -> ExprFn:
        name = e.name
        subs = e.subscripts if isinstance(e, F.ArrayRef) else e.args
        call = self._func_call(name, list(subs), unit)
        if any(isinstance(x, F.RangeExpr) for x in subs):
            spec_fns = [self._spec(x, unit) for x in subs]

            def fn(scope: Scope):
                sc = scope.lookup_scope(name)
                v = sc.vars[name] if sc is not None else None
                if isinstance(v, FArray):
                    return v.slice_of([f(scope) for f in spec_fns])
                return call(scope)
            return fn
        sub_fns = [self._expr(x, unit) for x in subs]

        def fn(scope: Scope):
            sc = scope.lookup_scope(name)
            v = sc.vars[name] if sc is not None else None
            if isinstance(v, FArray):
                return v.get(tuple(int(f(scope)) for f in sub_fns))
            return call(scope)
        return fn

    def _spec(self, x: F.Expr, unit: str) -> ExprFn:
        if isinstance(x, F.RangeExpr):
            lo = self._expr(x.lo, unit) if x.lo is not None else None
            hi = self._expr(x.hi, unit) if x.hi is not None else None
            st = self._expr(x.stride, unit) if x.stride is not None else None

            def fn(scope: Scope):
                return (lo(scope) if lo is not None else None,
                        hi(scope) if hi is not None else None,
                        st(scope) if st is not None else None)
            return fn
        sub = self._expr(x, unit)
        return lambda scope: int(sub(scope))

    def _func_call(self, name: str, args: list[F.Expr], unit: str) -> ExprFn:
        interp = self.interp
        if name in CEDAR_LIBRARY:
            routine_fn = CEDAR_LIBRARY[name].fn
            arg_fns = [self._expr(a, unit) for a in args]
            return lambda scope: routine_fn(*[f(scope) for f in arg_fns])
        if name in interp.units:
            callee = interp.units[name]
            args_ast = list(args)
            return lambda scope: interp._invoke(callee, args_ast, scope, unit)
        info = INTRINSICS.get(name)
        if info is not None:
            from repro.execmodel.interp import _NP_FUNCS
            scalar_fn = info.fn
            np_fn = _NP_FUNCS.get(name)
            arg_fns = [self._expr(a, unit) for a in args]

            def fn(scope: Scope):
                vals = [f(scope) for f in arg_fns]
                for v in vals:
                    if isinstance(v, np.ndarray):
                        if np_fn is None:
                            raise InterpreterError(
                                f"intrinsic {name!r} not vectorized")
                        return np_fn(*vals)
                return scalar_fn(*vals)
            return fn

        def fn(scope: Scope):
            raise InterpreterError(f"unknown function {name!r}")
        return fn

    def _binop(self, e: F.BinOp, unit: str) -> ExprFn:
        lf = self._expr(e.left, unit)
        rf = self._expr(e.right, unit)
        op = e.op
        # note: like the tree-walk, .and./.or. evaluate BOTH operands
        # (Fortran does not promise short-circuiting; keeping eager
        # evaluation preserves operation order and side-effect parity)
        if op == "+":
            return lambda scope: lf(scope) + rf(scope)
        if op == "-":
            return lambda scope: lf(scope) - rf(scope)
        if op == "*":
            return lambda scope: lf(scope) * rf(scope)
        if op == "/":
            is_int = self.interp._is_int

            def fn(scope: Scope):
                l = lf(scope)
                r = rf(scope)
                if is_int(l) and is_int(r):
                    return np.trunc(np.divide(l, r)).astype(np.int64) \
                        if isinstance(l, np.ndarray) \
                        or isinstance(r, np.ndarray) else int(l / r)
                return l / r
            return fn
        if op == "**":
            return lambda scope: lf(scope) ** rf(scope)
        if op == ".lt.":
            return lambda scope: lf(scope) < rf(scope)
        if op == ".le.":
            return lambda scope: lf(scope) <= rf(scope)
        if op == ".eq.":
            return lambda scope: lf(scope) == rf(scope)
        if op == ".ne.":
            return lambda scope: lf(scope) != rf(scope)
        if op == ".gt.":
            return lambda scope: lf(scope) > rf(scope)
        if op == ".ge.":
            return lambda scope: lf(scope) >= rf(scope)
        any_arr = self.interp._any_arr
        if op == ".and.":
            def fn(scope: Scope):
                l, r = lf(scope), rf(scope)
                return np.logical_and(l, r) if any_arr(l, r) else (l and r)
            return fn
        if op == ".or.":
            def fn(scope: Scope):
                l, r = lf(scope), rf(scope)
                return np.logical_or(l, r) if any_arr(l, r) else (l or r)
            return fn
        if op == ".eqv.":
            def fn(scope: Scope):
                l, r = lf(scope), rf(scope)
                return np.equal(l, r) if any_arr(l, r) \
                    else (bool(l) == bool(r))
            return fn
        if op == ".neqv.":
            def fn(scope: Scope):
                l, r = lf(scope), rf(scope)
                return np.not_equal(l, r) if any_arr(l, r) \
                    else (bool(l) != bool(r))
            return fn

        def fn(scope: Scope):
            raise InterpreterError(f"unknown operator {op!r}")
        return fn

    # ------------------------------------------------------------------
    # DOALL vector fast path

    def _try_vectorize(self, s: C.ParallelDo,
                       unit: str) -> Optional[StmtFn]:
        """Whole-loop numpy evaluation of an eligible DOALL body.

        Eligible means: a ``doall`` with no preamble/postamble/locals
        whose body is exclusively assignments to array elements indexed
        by the plain loop variable (plus loop-invariant subscripts), with
        right-hand sides built from literals, loop-invariant scalars, the
        loop variable, conforming array reads, arithmetic/relational
        operators, and exactness-whitelisted intrinsics.  Each iteration
        then writes a distinct element per statement, so per-statement
        vectorization executes the same operations on the same values as
        the scalar worker loop — bit-identically — in one numpy call.
        """
        if s.order != "doall" or s.preamble or s.postamble or s.locals_:
            return None
        if not s.body:
            return None
        var = s.var
        symtab = self.interp.tables.get(unit)
        if symtab is None:
            return None

        writes: dict[str, tuple[int, ...]] = {}   # name -> var-dim mask
        for st in s.body:
            if not isinstance(st, F.Assign):
                return None
            t = st.target
            if not isinstance(t, (F.ArrayRef, F.Apply)):
                return None
            subs = (t.subscripts if isinstance(t, F.ArrayRef) else t.args)
            mask = self._var_dims(subs, var)
            if mask is None or not any(mask):
                return None
            prev = writes.get(t.name)
            if prev is not None and prev != mask:
                return None   # two write shapes for one array: bail
            writes[t.name] = mask
        for st in s.body:
            t = st.target
            subs = (t.subscripts if isinstance(t, F.ArrayRef) else t.args)
            for sub, is_var in zip(subs, writes[t.name]):
                if not is_var and not self._vec_invariant_ok(
                        sub, var, writes, unit):
                    return None
            if not self._vec_expr_ok(st.value, var, writes, unit):
                return None

        compiled = [self._vec_stmt(st, var, unit) for st in s.body]
        lo_f = self._expr(s.start, unit)
        hi_f = self._expr(s.end, unit)
        step_f = self._expr(s.step, unit) if s.step is not None else None
        self.vectorized_loops += 1

        def fn(scope: Scope) -> None:
            lo = int(lo_f(scope))
            hi = int(hi_f(scope))
            step = int(step_f(scope)) if step_f is not None else 1
            if step == 0:
                raise InterpreterError("zero DO step")
            count = len(range(lo, hi + (1 if step > 0 else -1), step))
            if count == 0:
                return
            iv = np.arange(lo, lo + step * count, step, dtype=np.int64)
            for stmt in compiled:
                stmt(scope, iv)
        return fn

    @staticmethod
    def _var_dims(subs, var: str) -> Optional[tuple[int, ...]]:
        """Per-dimension loop-variable mask, or None if ineligible."""
        mask = []
        for sub in subs:
            if isinstance(sub, F.RangeExpr):
                return None
            if isinstance(sub, F.Var) and sub.name == var:
                mask.append(1)
            elif any(isinstance(n, F.Var) and n.name == var
                     for n in sub.walk()):
                return None   # var inside arithmetic: not plain indexing
            else:
                mask.append(0)
        return tuple(mask)

    def _vec_invariant_ok(self, e: F.Expr, var: str, writes: dict,
                          unit: str) -> bool:
        """A loop-invariant subexpression: no loop var, no written names."""
        for n in e.walk():
            if isinstance(n, F.Var) and (n.name == var or n.name in writes):
                return False
            if isinstance(n, (F.ArrayRef, F.Apply, F.FuncCall)) \
                    and n.name in writes:
                return False
            if isinstance(n, F.RangeExpr):
                return False
        return True

    def _vec_expr_ok(self, e: F.Expr, var: str, writes: dict,
                     unit: str) -> bool:
        symtab = self.interp.tables.get(unit)
        if isinstance(e, (F.IntLit, F.RealLit, F.LogicalLit)):
            return True
        if isinstance(e, F.Var):
            if e.name == var:
                return True
            sym = symtab.lookup(e.name)
            # whole-array reads broadcast wrongly; written scalars are
            # impossible here (all targets are arrays) but stay safe
            return not (sym is not None and sym.is_array) \
                and e.name not in writes
        if isinstance(e, (F.ArrayRef, F.Apply)):
            sym = symtab.lookup(e.name)
            if sym is not None and sym.is_array:
                subs = (e.subscripts if isinstance(e, F.ArrayRef)
                        else e.args)
                mask = self._var_dims(subs, var)
                if mask is None:
                    return False
                if e.name in writes and mask != writes[e.name]:
                    # a read whose var-dims differ from the write's could
                    # cross iterations; the scalar order would matter
                    return False
                for sub, is_var in zip(subs, mask):
                    if not is_var and not self._vec_invariant_ok(
                            sub, var, writes, unit):
                        return False
                return True
            # not an array: an intrinsic spelled as Apply
            return self._vec_intrinsic_ok(e.name, list(subs), var, writes,
                                          unit)
        if isinstance(e, F.FuncCall):
            return self._vec_intrinsic_ok(e.name, e.args, var, writes, unit)
        if isinstance(e, F.BinOp):
            return (self._vec_expr_ok(e.left, var, writes, unit)
                    and self._vec_expr_ok(e.right, var, writes, unit))
        if isinstance(e, F.UnOp):
            return e.op in ("-", "+", ".not.") \
                and self._vec_expr_ok(e.operand, var, writes, unit)
        return False

    def _vec_intrinsic_ok(self, name: str, args, var: str, writes: dict,
                          unit: str) -> bool:
        if name not in _VEC_EXACT_INTRINSICS:
            return False
        from repro.execmodel.interp import _NP_FUNCS
        if name not in _NP_FUNCS:
            return False
        return all(self._vec_expr_ok(a, var, writes, unit) for a in args)

    # -- vector code generation ---------------------------------------

    def _vec_stmt(self, st: F.Assign, var: str,
                  unit: str) -> Callable[[Scope, np.ndarray], None]:
        value = self._vec_expr(st.value, var, unit)
        t = st.target
        name = t.name
        subs = (t.subscripts if isinstance(t, F.ArrayRef) else t.args)
        key_fns = self._vec_index(subs, var, unit)

        def fn(scope: Scope, iv: np.ndarray) -> None:
            arr = scope.get(name)
            if not isinstance(arr, FArray):
                raise InterpreterError(f"{name!r} is not an array")
            arr.data[self._vec_key(arr, key_fns, scope, iv, name)] = \
                value(scope, iv)
        return fn

    def _vec_index(self, subs, var: str, unit: str):
        """Per-dimension index builders: the loop vector or an invariant."""
        out = []
        for sub in subs:
            if isinstance(sub, F.Var) and sub.name == var:
                out.append(None)           # the iteration vector
            else:
                out.append(self._expr(sub, unit))
        return out

    @staticmethod
    def _vec_key(arr: FArray, key_fns, scope: Scope, iv: np.ndarray,
                 name: str):
        key = []
        for dim, kf in enumerate(key_fns):
            lo = arr.lowers[dim]
            n = arr.data.shape[dim]
            if kf is None:
                j = iv - lo
                if len(j) and (int(j.min()) < 0 or int(j.max()) >= n):
                    bad = int(iv.min()) if int(j.min()) < 0 else int(iv.max())
                    raise InterpreterError(
                        f"subscript {bad} out of bounds in dimension "
                        f"{dim + 1} [{lo}, {lo + n - 1}]")
                key.append(j)
            else:
                j = int(kf(scope)) - lo
                if not (0 <= j < n):
                    raise InterpreterError(
                        f"subscript {j + lo} out of bounds in dimension "
                        f"{dim + 1} [{lo}, {lo + n - 1}]")
                key.append(j)
        return tuple(key)

    def _vec_expr(self, e: F.Expr, var: str, unit: str,
                  ) -> Callable[[Scope, np.ndarray], object]:
        if isinstance(e, (F.IntLit, F.RealLit, F.LogicalLit)):
            v = e.value
            return lambda scope, iv: v
        if isinstance(e, F.Var):
            if e.name == var:
                return lambda scope, iv: iv
            scalar = self._expr(e, unit)
            return lambda scope, iv: scalar(scope)
        if isinstance(e, (F.ArrayRef, F.Apply)):
            symtab = self.interp.tables.get(unit)
            sym = symtab.lookup(e.name)
            subs = (e.subscripts if isinstance(e, F.ArrayRef) else e.args)
            if sym is not None and sym.is_array:
                name = e.name
                key_fns = self._vec_index(subs, var, unit)
                vec_key = self._vec_key

                def fn(scope: Scope, iv: np.ndarray):
                    arr = scope.get(name)
                    if not isinstance(arr, FArray):
                        raise InterpreterError(f"{name!r} is not an array")
                    return arr.data[vec_key(arr, key_fns, scope, iv, name)]
                return fn
            return self._vec_call(e.name, list(subs), var, unit)
        if isinstance(e, F.FuncCall):
            return self._vec_call(e.name, e.args, var, unit)
        if isinstance(e, F.BinOp):
            lf = self._vec_expr(e.left, var, unit)
            rf = self._vec_expr(e.right, var, unit)
            return self._vec_binop(e.op, lf, rf)
        if isinstance(e, F.UnOp):
            f = self._vec_expr(e.operand, var, unit)
            if e.op == "-":
                return lambda scope, iv: -f(scope, iv)
            if e.op == "+":
                return f
            if e.op == ".not.":
                return lambda scope, iv: ~np.asarray(f(scope, iv))
        raise InterpreterError(
            f"cannot vectorize {type(e).__name__}")  # pragma: no cover

    def _vec_call(self, name: str, args, var: str, unit: str):
        from repro.execmodel.interp import _NP_FUNCS
        np_fn = _NP_FUNCS[name]
        arg_fns = [self._vec_expr(a, var, unit) for a in args]
        return lambda scope, iv: np_fn(*[f(scope, iv) for f in arg_fns])

    def _vec_binop(self, op: str, lf, rf):
        if op == "+":
            return lambda scope, iv: lf(scope, iv) + rf(scope, iv)
        if op == "-":
            return lambda scope, iv: lf(scope, iv) - rf(scope, iv)
        if op == "*":
            return lambda scope, iv: lf(scope, iv) * rf(scope, iv)
        if op == "/":
            is_int = self.interp._is_int

            def fn(scope: Scope, iv: np.ndarray):
                l = lf(scope, iv)
                r = rf(scope, iv)
                if is_int(l) and is_int(r):
                    return np.trunc(np.divide(l, r)).astype(np.int64) \
                        if isinstance(l, np.ndarray) \
                        or isinstance(r, np.ndarray) else int(l / r)
                return l / r
            return fn
        if op == "**":
            return lambda scope, iv: lf(scope, iv) ** rf(scope, iv)
        if op == ".lt.":
            return lambda scope, iv: lf(scope, iv) < rf(scope, iv)
        if op == ".le.":
            return lambda scope, iv: lf(scope, iv) <= rf(scope, iv)
        if op == ".eq.":
            return lambda scope, iv: lf(scope, iv) == rf(scope, iv)
        if op == ".ne.":
            return lambda scope, iv: lf(scope, iv) != rf(scope, iv)
        if op == ".gt.":
            return lambda scope, iv: lf(scope, iv) > rf(scope, iv)
        if op == ".ge.":
            return lambda scope, iv: lf(scope, iv) >= rf(scope, iv)
        if op == ".and.":
            return lambda scope, iv: np.logical_and(lf(scope, iv),
                                                    rf(scope, iv))
        if op == ".or.":
            return lambda scope, iv: np.logical_or(lf(scope, iv),
                                                   rf(scope, iv))
        if op == ".eqv.":
            return lambda scope, iv: np.equal(lf(scope, iv), rf(scope, iv))
        if op == ".neqv.":
            return lambda scope, iv: np.not_equal(lf(scope, iv),
                                                  rf(scope, iv))
        raise InterpreterError(f"unknown operator {op!r}")  # pragma: no cover
