"""Performance estimator: prices an AST on a machine configuration.

Walks a (serial or restructured) program unit with concrete integer
bindings for its symbolic sizes, charging every operation, memory access,
vector stream, parallel-loop startup/dispatch, synchronization, library
call and page fault through the :mod:`repro.machine` models.  Results are
cycle counts; experiment harnesses report ratios (speedups), which is what
the paper's tables and figures show.

Placement matters: scalars/arrays are priced per their GLOBAL/CLUSTER
placement (set by the globalization pass, or overridden per experiment),
loop-local data is private (cache-speed).  Global *vector* streams use the
prefetch unit when enabled (Figure 6); aggregate global traffic is capped
by the machine's bandwidth (Figure 8); working sets beyond physical memory
page (Table 1's mprove).

Every estimate also attributes its cycles into a
:class:`repro.trace.CycleLedger` (compute / vector / startup / dispatch /
sync / per-tier memory / prefetch / page faults).  The ledger composes
exactly as the cycle totals do, so the category sums always equal the
aggregate — the estimate itself is unchanged by tracing.  Construct with
``trace=False`` to skip the bookkeeping (a shared null ledger absorbs all
charges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cedar import nodes as C
from repro.cedar.library import CEDAR_LIBRARY
from repro.errors import MachineModelError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan
from repro.fortran import ast_nodes as F
from repro.fortran.intrinsics import INTRINSICS
from repro.fortran.symtab import SymbolTable, build_symbol_table
from repro.machine.config import MachineConfig
from repro.machine.memory import AccessProfile, MemorySystem
from repro.machine.paging import PagingModel
from repro.machine.scheduler import LoopScheduler
from repro.machine.sync import SyncModel
from repro.machine.vector import VectorUnit
from repro.prof.counters import HwCounters, ProfLedger
from repro.prof.timeline import TimelineRecorder
from repro.trace.ledger import NULL_LEDGER, CycleLedger

_HEAVY_OPS = {"/", "**"}

#: (cost, traffic profile, cycle attribution) — the walk's return triple
_Costed = "tuple[float, AccessProfile, CycleLedger]"


@dataclass
class PerfResult:
    """Estimated execution of one unit call."""

    cycles: float
    compute_cycles: float
    page_overhead: float
    profile: AccessProfile
    notes: list[str] = field(default_factory=list)
    #: per-category attribution; ``ledger.total() == total`` (within fp
    #: rounding) when the estimator ran with ``trace=True``
    ledger: Optional[CycleLedger] = None
    #: hardware-style event counters, populated when the estimator ran
    #: with ``profile=True`` (counter×latency reconciles with the
    #: ledger's memory categories — see :mod:`repro.prof.counters`)
    counters: Optional[HwCounters] = None

    @property
    def total(self) -> float:
        return self.cycles + self.page_overhead

    def breakdown(self) -> dict:
        """JSON-ready hierarchical cycle attribution (empty if untraced)."""
        return self.ledger.to_dict() if self.ledger is not None else {}


@dataclass
class _Ctx:
    """Walk context: value environment and active placement scopes."""

    env: dict[str, float]
    private: frozenset[str] = frozenset()
    level: Optional[str] = None     # innermost parallel level, if any
    depth: int = 0


class PerfEstimator:
    def __init__(self, sf: F.SourceFile, config: MachineConfig,
                 prefetch: bool = True,
                 placements: Mapping[str, str] | None = None,
                 serial_data_placement: str = "cluster",
                 trace: bool = True,
                 profile: bool = False,
                 timeline: Optional[TimelineRecorder] = None,
                 faults: Optional[FaultPlan] = None):
        self.sf = sf
        self.cfg = config
        self.units = {u.name: u for u in sf.units}
        self.tables: dict[str, SymbolTable] = {
            u.name: build_symbol_table(u) for u in sf.units}
        # one injector per estimator: the machine models share its
        # deterministic signal stream and injected-fault bookkeeping.
        # An inactive plan injects nothing — estimates stay bit-identical
        # to an estimator constructed without one.
        self.fault_plan = faults
        self.fault_injector = (FaultInjector(faults)
                               if faults is not None and faults.active
                               else None)
        inj = self.fault_injector
        self.memory = MemorySystem(config, faults=inj)
        self.vector = VectorUnit(config)
        self.scheduler = LoopScheduler(config, faults=inj)
        self.sync = SyncModel(config, faults=inj)
        self.paging = PagingModel(config)
        self.prefetch = prefetch
        self.profile = profile or timeline is not None
        self.trace = trace or self.profile
        self.timeline = timeline
        self.placement_override = dict(placements or {})
        self.serial_default = serial_data_placement
        # honor the globalization pass's GLOBAL/CLUSTER declarations
        self.declared_placement: dict[str, dict[str, str]] = {}
        for u in sf.units:
            decl: dict[str, str] = {}
            for spec in u.specs:
                if isinstance(spec, C.GlobalDecl):
                    for n in spec.names:
                        decl[n] = "global"
                elif isinstance(spec, C.ClusterDecl):
                    for n in spec.names:
                        decl[n] = "cluster"
            self.declared_placement[u.name] = decl

    def _ledger(self) -> CycleLedger:
        """A fresh ledger, or the shared null sink when tracing is off.

        Profiling estimates get a :class:`ProfLedger`, which charges
        cycles identically (totals stay bit-identical) while also
        accumulating hardware counters through ``ledger.count``.
        """
        if self.profile:
            return ProfLedger()
        return CycleLedger() if self.trace else NULL_LEDGER

    # ------------------------------------------------------------------

    def estimate(self, unit_name: str,
                 bindings: Mapping[str, float]) -> PerfResult:
        unit = self.units[unit_name]
        st = self.tables[unit_name]
        env: dict[str, float] = {}
        for sym in st.symbols.values():
            if sym.is_parameter and sym.param_value is not None:
                from repro.analysis.expr import const_value

                v = const_value(sym.param_value)
                if v is not None:
                    env[sym.name] = float(v)
        env.update({k: float(v) for k, v in bindings.items()})

        from repro.telemetry import span

        self._unit_stack = [unit_name]
        ctx = _Ctx(env=env)
        with span("estimate", entry=unit_name):
            cycles, prof, led = self._body(unit.body, ctx, unit_name)
            page = self._paging_overhead(unit_name, env, prof, led)
        return PerfResult(cycles=cycles, compute_cycles=cycles,
                          page_overhead=page, profile=prof,
                          ledger=led if self.trace else None,
                          counters=(led.counters
                                    if isinstance(led, ProfLedger) else None))

    # ------------------------------------------------------------------
    # placement

    def _placement(self, name: str, ctx: _Ctx, unit: str) -> str:
        if name in ctx.private:
            return "private"
        if name in self.placement_override:
            return self.placement_override[name]
        declared = self.declared_placement.get(unit, {})
        if name in declared:
            return declared[name]
        st = self.tables.get(unit)
        sym = st.lookup(name) if st else None
        if sym is not None and sym.placement:
            return sym.placement
        return self.serial_default

    # ------------------------------------------------------------------
    # numeric evaluation over the walk environment

    def _num(self, e: Optional[F.Expr], ctx: _Ctx,
             default: Optional[float] = None) -> Optional[float]:
        if e is None:
            return default
        if isinstance(e, F.IntLit):
            return float(e.value)
        if isinstance(e, F.RealLit):
            return e.value
        if isinstance(e, F.Var):
            return ctx.env.get(e.name, default)
        if isinstance(e, F.UnOp):
            v = self._num(e.operand, ctx, None)
            if v is None:
                return default
            return -v if e.op == "-" else v
        if isinstance(e, F.BinOp):
            l = self._num(e.left, ctx, None)
            r = self._num(e.right, ctx, None)
            if l is None or r is None:
                return default
            try:
                if e.op == "+":
                    return l + r
                if e.op == "-":
                    return l - r
                if e.op == "*":
                    return l * r
                if e.op == "/":
                    return l / r if r else default
                if e.op == "**":
                    return l ** r
            except (OverflowError, ValueError):
                return default
            return default
        if isinstance(e, (F.FuncCall, F.Apply)) and e.name in ("min", "max") \
                and len(e.args) == 2:
            l = self._num(e.args[0], ctx, None)
            r = self._num(e.args[1], ctx, None)
            if l is None or r is None:
                return default
            return min(l, r) if e.name == "min" else max(l, r)
        return default

    def _bool(self, e: F.Expr, ctx: _Ctx) -> Optional[bool]:
        """Evaluate a condition against the bindings, or None."""
        if isinstance(e, F.LogicalLit):
            return e.value
        if isinstance(e, F.UnOp) and e.op == ".not.":
            v = self._bool(e.operand, ctx)
            return None if v is None else not v
        if isinstance(e, F.BinOp):
            if e.op in (".and.", ".or."):
                l, r = self._bool(e.left, ctx), self._bool(e.right, ctx)
                if l is None or r is None:
                    return None
                return (l and r) if e.op == ".and." else (l or r)
            if e.op in (".lt.", ".le.", ".eq.", ".ne.", ".gt.", ".ge."):
                l = self._num(e.left, ctx, None)
                r = self._num(e.right, ctx, None)
                if l is None or r is None:
                    return None
                return {".lt.": l < r, ".le.": l <= r, ".eq.": l == r,
                        ".ne.": l != r, ".gt.": l > r, ".ge.": l >= r}[e.op]
        return None

    def _trips(self, s, ctx: _Ctx) -> float:
        lo = self._num(s.start, ctx, 1.0)
        hi = self._num(s.end, ctx, float(lo) + 99.0)
        step = self._num(s.step, ctx, 1.0) or 1.0
        n = (hi - lo + step) // step if step > 0 else (lo - hi - step) // (-step)
        return max(0.0, float(n))

    # ------------------------------------------------------------------
    # statement costing

    def _body(self, stmts: list[F.Stmt], ctx: _Ctx, unit: str):
        total = 0.0
        prof = AccessProfile()
        led = self._ledger()
        for s in stmts:
            c, p, l = self._stmt(s, ctx, unit)
            total += c
            prof.add(p)
            led.add(l)
        return total, prof, led

    def _stmt(self, s: F.Stmt, ctx: _Ctx, unit: str):
        if isinstance(s, F.Assign):
            return self._assign(s, ctx, unit)
        if isinstance(s, C.ParallelDo):
            return self._parallel_do(s, ctx, unit)
        if isinstance(s, F.DoLoop):
            return self._do_loop(s, ctx, unit)
        if isinstance(s, F.IfBlock):
            # decide the branch when the condition is computable from the
            # bindings (e.g. the run-time dependence test of a two-version
            # loop); otherwise charge the average of the arms
            for cond, body in s.arms:
                verdict = True if cond is None else self._bool(cond, ctx)
                if verdict is None:
                    break
                if verdict:
                    if cond is not None:
                        c0, p0, l0 = self._expr(cond, ctx, unit, None)
                    else:
                        c0, p0, l0 = 0.0, AccessProfile(), self._ledger()
                    c, p, l = self._body(body, ctx, unit)
                    p0.add(p)
                    l0.charge("compute", self.cfg.cost_branch)
                    l0.add(l)
                    return c0 + self.cfg.cost_branch + c, p0, l0
            prof = AccessProfile()
            led = self._ledger()
            total = 0.0
            arm_costs = []
            for cond, body in s.arms:
                if cond is not None:
                    c, p, l = self._expr(cond, ctx, unit, vector_len=None)
                    total += c + self.cfg.cost_branch
                    prof.add(p)
                    led.add(l)
                    led.charge("compute", self.cfg.cost_branch)
                c, p, l = self._body(body, ctx, unit)
                arm_costs.append(c)
                prof.add(p.scaled(1.0 / max(len(s.arms), 1)))
                led.add(l.scaled(1.0 / max(len(s.arms), 1)))
            if arm_costs:
                total += sum(arm_costs) / len(arm_costs)
            return total, prof, led
        if isinstance(s, F.LogicalIf):
            c1, p1, l1 = self._expr(s.cond, ctx, unit, vector_len=None)
            c2, p2, l2 = self._stmt(s.stmt, ctx, unit)
            p1.add(p2.scaled(0.5))
            l1.charge("compute", self.cfg.cost_branch)
            l1.add(l2.scaled(0.5))
            return c1 + self.cfg.cost_branch + 0.5 * c2, p1, l1
        if isinstance(s, C.WhereStmt):
            return self._where(s, ctx, unit)
        if isinstance(s, F.CallStmt):
            return self._call(s, ctx, unit)
        if isinstance(s, C.AwaitStmt):
            return self._fixed(self.cfg.cost_await, "sync")
        if isinstance(s, C.AdvanceStmt):
            return self._fixed(self.cfg.cost_advance, "sync")
        if isinstance(s, (C.LockStmt,)):
            return self._fixed(self.cfg.cost_lock, "sync")
        if isinstance(s, (C.UnlockStmt,)):
            return self._fixed(self.cfg.cost_unlock, "sync")
        if isinstance(s, (F.Goto, F.ComputedGoto, F.ContinueStmt,
                          F.ReturnStmt, F.StopStmt)):
            return self._fixed(self.cfg.cost_branch, "compute")
        if isinstance(s, (F.PrintStmt, F.ReadStmt)):
            return self._fixed(100.0, "compute")
        # declarations
        return 0.0, AccessProfile(), self._ledger()

    def _fixed(self, cost: float, category: str):
        led = self._ledger()
        led.charge(category, cost)
        if category == "sync":
            led.count("sync_ops")
        return cost, AccessProfile(), led

    # -- assignment ----------------------------------------------------------

    def _section_len(self, e: F.Expr, ctx: _Ctx) -> Optional[float]:
        """Length of the first section found in the expression, if any."""
        for n in e.walk():
            if isinstance(n, F.RangeExpr):
                lo = self._num(n.lo, ctx, 1.0)
                hi = self._num(n.hi, ctx, lo + float(self.cfg.prefetch_block) - 1)
                st = self._num(n.stride, ctx, 1.0) or 1.0
                return max(1.0, (hi - lo + st) // st)
        return None

    def _assign(self, s: F.Assign, ctx: _Ctx, unit: str):
        length = self._section_len(s.target, ctx)
        if length is None:
            length = self._section_len(s.value, ctx)
        cost, prof, led = self._expr(s.value, ctx, unit, vector_len=length)
        c2, p2, l2 = self._store(s.target, ctx, unit, vector_len=length)
        prof.add(p2)
        led.add(l2)
        return cost + c2, prof, led

    def _store(self, t: F.Expr, ctx: _Ctx, unit: str,
               vector_len: Optional[float]):
        prof = AccessProfile()
        led = self._ledger()

        def note_scalar(pl: str) -> None:
            if pl == "global":
                prof.global_elems += 1.0
            elif pl == "cluster":
                prof.cluster_elems += 1.0
            else:
                prof.cache_elems += 1.0

        if isinstance(t, F.Var):
            pl = self._placement(t.name, ctx, unit)
            note_scalar(pl)
            return self.memory.scalar_access(pl, ledger=led), prof, led
        if isinstance(t, (F.ArrayRef, F.Apply)):
            pl = self._placement(t.name, ctx, unit)
            subs = t.subscripts if isinstance(t, F.ArrayRef) else t.args
            sub_cost = 0.0
            for x in subs:
                if not isinstance(x, F.RangeExpr):
                    c, p, l = self._expr(x, ctx, unit, vector_len=None)
                    sub_cost += c * 0.25  # address arithmetic overlaps
                    led.add(l.scaled(0.25))
            if vector_len is not None and any(
                    isinstance(x, F.RangeExpr) for x in subs):
                # stores do not use the (read) prefetch unit
                tmp = self._ledger()
                c, p = self.memory.vector_access(pl, vector_len,
                                                 prefetch=False, ledger=tmp)
                if pl == "global":
                    clamped = min(c, vector_len * 0.55 * self.cfg.lat_global)
                    if c > 0 and clamped != c:
                        tmp = tmp.scaled(clamped / c)
                    c = clamped
                prof.add(p)
                led.add(tmp)
                return sub_cost + c, prof, led
            note_scalar(pl)
            return sub_cost + self.memory.scalar_access(pl, ledger=led), \
                prof, led
        return 0.0, prof, led

    # -- expressions ----------------------------------------------------------

    def _expr(self, e: F.Expr, ctx: _Ctx, unit: str,
              vector_len: Optional[float]):
        prof = AccessProfile()
        led = self._ledger()
        L = vector_len

        def note_scalar(pl: str) -> None:
            if pl == "global":
                prof.global_elems += 1.0
            elif pl == "cluster":
                prof.cluster_elems += 1.0
            else:
                prof.cache_elems += 1.0

        def rec(x: F.Expr, led: CycleLedger) -> float:
            if isinstance(x, (F.IntLit, F.RealLit, F.LogicalLit, F.StrLit)):
                return 0.0
            if isinstance(x, F.Var):
                pl = self._placement(x.name, ctx, unit)
                note_scalar(pl)
                return self.memory.scalar_access(pl, ledger=led)
            if isinstance(x, F.RangeExpr):
                return 0.0
            if isinstance(x, (F.ArrayRef, F.Apply)):
                subs = (x.subscripts if isinstance(x, F.ArrayRef) else x.args)
                pl = self._placement(x.name, ctx, unit)
                cost = 0.0
                for sub in subs:
                    if not isinstance(sub, F.RangeExpr):
                        tmp = self._ledger()
                        cost += rec(sub, tmp) * 0.25
                        led.add(tmp.scaled(0.25))
                if L is not None and any(isinstance(sub, F.RangeExpr)
                                         for sub in subs):
                    c, p = self.memory.vector_access(
                        pl, L, prefetch=self.prefetch, ledger=led)
                    prof.add(p)
                    return cost + c
                note_scalar(pl)
                return cost + self.memory.scalar_access(pl, ledger=led)
            if isinstance(x, F.FuncCall):
                if x.name in CEDAR_LIBRARY:
                    c, p, l = self._library(x.name, x.args, ctx, unit)
                    prof.add(p)
                    led.add(l)
                    return c
                if x.name in self.units:
                    c, p, l = self._user_call(x.name, x.args, ctx, unit)
                    prof.add(p)
                    led.add(l)
                    return c
                arg_cost = sum(rec(a, led) for a in x.args)
                info = INTRINSICS.get(x.name)
                if L is not None:
                    return arg_cost + self.vector.op_cost(
                        L, heavy=(info is not None and
                                  info.cost_class == "heavy"), ledger=led)
                if info is None or info.cost_class == "func":
                    led.charge("compute", self.cfg.cost_func)
                    return arg_cost + self.cfg.cost_func
                if info.cost_class == "heavy":
                    led.charge("compute", self.cfg.cost_div)
                    return arg_cost + self.cfg.cost_div
                led.charge("compute", self.cfg.cost_alu)
                return arg_cost + self.cfg.cost_alu
            if isinstance(x, F.BinOp):
                c = rec(x.left, led) + rec(x.right, led)
                if L is not None:
                    return c + self.vector.op_cost(L, heavy=x.op in _HEAVY_OPS,
                                                   ledger=led)
                if x.op in _HEAVY_OPS:
                    led.charge("compute", self.cfg.cost_div)
                    return c + self.cfg.cost_div
                if x.op == "*":
                    led.charge("compute", self.cfg.cost_mul)
                    return c + self.cfg.cost_mul
                led.charge("compute", self.cfg.cost_alu)
                return c + self.cfg.cost_alu
            if isinstance(x, F.UnOp):
                c = rec(x.operand, led)
                if L is None:
                    led.charge("compute", self.cfg.cost_alu)
                    return c + self.cfg.cost_alu
                v = self.vector.op_cost(L) * 0.25
                led.charge("vector", v)
                return c + v
            raise MachineModelError(f"cannot price {type(x).__name__}")

        return rec(e, led), prof, led

    # -- loops ----------------------------------------------------------------

    def _do_loop(self, s: F.DoLoop, ctx: _Ctx, unit: str):
        trips = self._trips(s, ctx)
        mid_env = dict(ctx.env)
        lo = self._num(s.start, ctx, 1.0)
        mid_env[s.var] = lo + max(trips - 1, 0) / 2.0
        inner = _Ctx(env=mid_env, private=ctx.private, level=ctx.level,
                     depth=ctx.depth)
        body_c, body_p, body_l = self._body(s.body, inner, unit)
        overhead = self.cfg.cost_branch + self.cfg.cost_alu
        led = body_l.scaled(trips)
        led.charge("compute", trips * overhead)
        return trips * (body_c + overhead), body_p.scaled(trips), led

    def _parallel_do(self, s: C.ParallelDo, ctx: _Ctx, unit: str):
        trips = int(self._trips(s, ctx))
        private = set(ctx.private)
        for decl in s.locals_:
            for node in decl.walk():
                if isinstance(node, F.EntityDecl):
                    private.add(node.name)
        private.add(s.var)
        mid_env = dict(ctx.env)
        lo = self._num(s.start, ctx, 1.0)
        mid_env[s.var] = lo + max(trips - 1, 0) / 2.0
        inner = _Ctx(env=mid_env, private=frozenset(private),
                     level=s.level, depth=ctx.depth + 1)

        body_c, body_p, body_l = self._body(s.body, inner, unit)
        pre_c, pre_p, pre_l = self._body(s.preamble, inner, unit)
        post_c, post_p, post_l = self._body(s.postamble, inner, unit)

        level = s.level
        if not self.cfg.has_global_memory and level in ("S", "X"):
            # FX/80: spread/cross loops collapse onto the single cluster
            pass  # startup costs already encode this in the config

        led = self._ledger()
        label = f"{unit}:do {s.var}" + (f"@{s.line}" if s.line else "")
        if s.order == "doacross":
            region = self._sync_region_cost(s, inner, unit)
            timing = self.scheduler.doacross(
                level, max(trips, 1), body_c, region, pre_c, post_c,
                ledger=led, timeline=self.timeline, label=label)
        else:
            timing = self.scheduler.run(level, "doall", max(trips, 1),
                                        body_c, pre_c, post_c, ledger=led,
                                        timeline=self.timeline, label=label)
        workers = timing.workers
        prof = body_p.scaled(trips)
        prof.add(pre_p.scaled(workers))
        prof.add(post_p.scaled(workers))
        # critical-path attribution: the scheduler charged its overhead;
        # body/preamble/postamble cycles carry the body's category mix
        if body_c > 0:
            led.add(body_l.scaled(timing.body_cycles / body_c))
        elif timing.body_cycles:
            led.charge("compute", timing.body_cycles)
        led.add(pre_l)
        led.add(post_l)

        total = timing.total_time
        # postambles with locks serialize across workers
        if any(isinstance(x, C.LockStmt) for x in s.postamble):
            extra = self.sync.critical_section(post_c, workers) - post_c
            led.charge("sync", extra)
            total += extra
        # a critical section inside the body serializes its region across
        # all iterations: the lock chain is a hard floor on completion time
        region_c = self._lock_region_cost(s.body, inner, unit)
        if region_c > 0:
            lock_chain = trips * (region_c + self.cfg.cost_lock
                                  + self.cfg.cost_unlock)
            if lock_chain > total:
                led.charge("sync", lock_chain - total)
                total = lock_chain

        # global bandwidth saturation across active clusters
        active_clusters = (self.cfg.clusters if level in ("S", "X") else 1)
        factor = self.memory.saturation_factor(
            prof.global_elems, total * 1.0, active_clusters)
        if factor > 1.0:
            led.charge("mem_global", (factor - 1.0) * total)
            led.count("bank_stall_cycles", (factor - 1.0) * total)
        return total * factor, prof, led

    def _lock_region_cost(self, body: list[F.Stmt], ctx: _Ctx,
                          unit: str) -> float:
        """Cost of statements between LOCK and UNLOCK at body top level."""
        inside = False
        cost = 0.0
        for st in body:
            if isinstance(st, C.LockStmt):
                inside = True
                continue
            if isinstance(st, C.UnlockStmt):
                inside = False
                continue
            if inside:
                c, _, _ = self._stmt(st, ctx, unit)
                cost += c
        return cost

    def _sync_region_cost(self, s: C.ParallelDo, ctx: _Ctx,
                          unit: str) -> float:
        inside = False
        cost = 0.0
        for st in s.body:
            if isinstance(st, C.AwaitStmt):
                inside = True
                continue
            if isinstance(st, C.AdvanceStmt):
                inside = False
                continue
            if inside:
                c, _, _ = self._stmt(st, ctx, unit)
                cost += c
        return cost

    def _where(self, s: C.WhereStmt, ctx: _Ctx, unit: str):
        L = self._section_len(s.mask, ctx)
        if L is None:
            for st in s.body + s.elsewhere:
                if isinstance(st, F.Assign):
                    L = self._section_len(st.target, ctx)
                    if L is not None:
                        break
        L = L if L is not None else float(self.cfg.prefetch_block)
        cost, prof, led = self._expr(s.mask, ctx, unit, vector_len=L)
        for st in s.body + s.elsewhere:
            c, p, l = self._stmt(st, ctx, unit)
            cost += c
            prof.add(p)
            led.add(l)
        return cost, prof, led

    # -- calls ------------------------------------------------------------------

    def _call(self, s: F.CallStmt, ctx: _Ctx, unit: str):
        if s.name in CEDAR_LIBRARY:
            return self._library(s.name, s.args, ctx, unit)
        if s.name in ("await",):
            return self._fixed(self.cfg.cost_await, "sync")
        if s.name in ("advance",):
            return self._fixed(self.cfg.cost_advance, "sync")
        if s.name in ("lock",):
            return self._fixed(self.cfg.cost_lock, "sync")
        if s.name in ("unlock",):
            return self._fixed(self.cfg.cost_unlock, "sync")
        if s.name in self.units:
            return self._user_call(s.name, s.args, ctx, unit)
        return self._fixed(self.cfg.cost_func, "compute")

    def _user_call(self, name: str, actuals: list[F.Expr], ctx: _Ctx,
                   unit: str):
        if len(self._unit_stack) > 12 or name in self._unit_stack[-3:]:
            # recursion guard
            return self._fixed(self.cfg.cost_func * 10, "compute")
        callee = self.units[name]
        env: dict[str, float] = {}
        st = self.tables[name]
        for sym in st.symbols.values():
            if sym.is_parameter and sym.param_value is not None:
                from repro.analysis.expr import const_value

                v = const_value(sym.param_value)
                if v is not None:
                    env[sym.name] = float(v)
        for dummy, actual in zip(callee.args, actuals):
            v = self._num(actual, ctx, None)
            if v is not None:
                env[dummy] = v
        arg_cost = 4.0 * len(actuals) + 30.0  # call linkage
        self._unit_stack.append(name)
        try:
            cctx = _Ctx(env=env, private=frozenset(), level=ctx.level,
                        depth=ctx.depth)
            c, p, l = self._body(callee.body, cctx, name)
        finally:
            self._unit_stack.pop()
        l.charge("compute", arg_cost)
        return arg_cost + c, p, l

    def _library(self, name: str, args: list[F.Expr], ctx: _Ctx,
                 unit: str):
        lib = CEDAR_LIBRARY[name]
        # section length of the first array argument
        L = None
        for a in args:
            L = self._section_len(a, ctx)
            if L is not None:
                break
        L = L if L is not None else 100.0
        prof = AccessProfile()
        led = self._ledger()

        if ctx.level is not None:
            # called from inside a parallel loop: the calling processor
            # runs the vectorized kernel locally on its own data
            compute = self.vector.reduction_cost(
                L * lib.serial_ops_per_elem, ledger=led)
            stream_time = 0.0
            for a in args:
                if isinstance(a, (F.ArrayRef, F.Apply, F.Var)):
                    pl = self._placement(a.name, ctx, unit)
                    c, pr = self.memory.vector_access(
                        pl, L, prefetch=self.prefetch, ledger=led)
                    stream_time += c
                    prof.add(pr)
            led.charge("compute", 30.0)
            return 30.0 + compute + stream_time, prof, led

        # whole-machine distributed execution (§3.3 two-step combining)
        p = self.cfg.total_processors
        compute = lib.parallel_ops(int(L), p) * self.cfg.cost_alu
        led.charge("compute", compute)
        stream_time = 0.0
        stream_led = self._ledger()
        for a in args:
            if isinstance(a, (F.ArrayRef, F.Apply, F.Var)):
                pl = self._placement(a.name, ctx, unit)
                tmp = self._ledger()
                c, pr = self.memory.vector_access(pl, L / p,
                                                  prefetch=self.prefetch,
                                                  ledger=tmp)
                if c > stream_time:
                    stream_time, stream_led = c, tmp
                prof.add(pr.scaled(p))
        led.add(stream_led)
        startup = self.cfg.start_xdoall if p > self.cfg.processors_per_cluster \
            else self.cfg.start_cdoall
        led.charge("startup", startup)
        combine = self.sync.reduction_combine("X" if p > 8 else "C",
                                              ledger=led)
        total = startup + compute + stream_time + combine
        factor = self.memory.saturation_factor(prof.global_elems, total,
                                               self.cfg.clusters)
        if factor > 1.0:
            led.charge("mem_global", (factor - 1.0) * total)
            led.count("bank_stall_cycles", (factor - 1.0) * total)
        return total * factor, prof, led

    # ------------------------------------------------------------------
    # paging

    def _paging_overhead(self, unit: str, env: Mapping[str, float],
                         prof: AccessProfile,
                         ledger: CycleLedger = NULL_LEDGER) -> float:
        st = self.tables[unit]
        ws = {"global": 0.0, "cluster": 0.0}
        ctx = _Ctx(env=dict(env))
        for sym in st.symbols.values():
            if not sym.is_array:
                continue
            elems = 1.0
            ok = True
            for b in sym.dims:
                lo = self._num(b.lower, ctx, 1.0)
                hi = self._num(b.upper, ctx, None) if b.upper is not None else None
                if hi is None:
                    ok = False
                    break
                elems *= max(hi - lo + 1.0, 0.0)
            if not ok:
                continue
            pl = self._placement(sym.name, ctx, unit)
            key = "global" if pl == "global" else "cluster"
            ws[key] += elems * 8.0
        overhead = 0.0
        for placement, bytes_ in ws.items():
            if bytes_ <= 0:
                continue
            touched = {"global": prof.global_elems,
                       "cluster": prof.cluster_elems + prof.cache_elems}[placement]
            touches = max(touched * 8.0 / bytes_, 1.0)
            overhead += self.paging.fault_overhead(bytes_, placement, touches,
                                                   ledger=ledger)
        return overhead
